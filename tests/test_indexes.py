"""Unit tests for secondary indexes and indexed local evaluation."""

import pytest

from repro.core.query import Op, Path, Predicate
from repro.errors import ObjectStoreError
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.indexes import HashIndex, IndexManager, SortedIndex
from repro.objectdb.local_query import LocalQuery
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, primitive
from repro.objectdb.values import MultiValue, NULL


def obj(name, **values):
    return LocalObject(LOid("DB", name), "C", values)


class TestHashIndex:
    def make(self):
        index = HashIndex("C", "a")
        index.add(obj("x", a=1))
        index.add(obj("y", a=2))
        index.add(obj("z", a=1))
        index.add(obj("n"))  # a missing -> null bucket
        return index

    def test_probe_matches_and_nulls(self):
        index = self.make()
        matches, nulls = index.probe(Op.EQ, 1)
        assert {l.value for l in matches} == {"x", "z"}
        assert {l.value for l in nulls} == {"n"}

    def test_probe_no_match_still_returns_nulls(self):
        index = self.make()
        matches, nulls = index.probe(Op.EQ, 99)
        assert matches == []
        assert len(nulls) == 1

    def test_supports(self):
        index = self.make()
        assert index.supports(Op.EQ)
        assert not index.supports(Op.LT)
        with pytest.raises(ObjectStoreError):
            index.probe(Op.LT, 1)

    def test_counts(self):
        index = self.make()
        assert index.entries == 4
        assert index.null_count == 1

    def test_multivalue_members_indexed(self):
        index = HashIndex("C", "a")
        index.add(obj("m", a=MultiValue([1, 2])))
        assert index.probe(Op.EQ, 1)[0] == [LOid("DB", "m")]
        assert index.probe(Op.EQ, 2)[0] == [LOid("DB", "m")]


class TestSortedIndex:
    def make(self):
        index = SortedIndex("C", "a")
        for name, value in (("x", 10), ("y", 20), ("z", 30), ("w", 20)):
            index.add(obj(name, a=value))
        index.add(obj("n", a=NULL))
        return index

    def test_eq(self):
        matches, nulls = self.make().probe(Op.EQ, 20)
        assert {l.value for l in matches} == {"y", "w"}
        assert len(nulls) == 1

    def test_lt_le(self):
        index = self.make()
        assert {l.value for l in index.probe(Op.LT, 20)[0]} == {"x"}
        assert {l.value for l in index.probe(Op.LE, 20)[0]} == {"x", "y", "w"}

    def test_gt_ge(self):
        index = self.make()
        assert {l.value for l in index.probe(Op.GT, 20)[0]} == {"z"}
        assert {l.value for l in index.probe(Op.GE, 20)[0]} == {"y", "w", "z"}

    def test_incremental_adds_resorted(self):
        index = self.make()
        index.probe(Op.EQ, 10)      # settle once
        index.add(obj("late", a=15))
        assert {l.value for l in index.probe(Op.LT, 20)[0]} == {"x", "late"}

    def test_unsupported_op(self):
        with pytest.raises(ObjectStoreError):
            self.make().probe(Op.CONTAINS, 1)

    def test_mixed_types_rejected(self):
        index = SortedIndex("C", "a")
        index.add(obj("x", a=1))
        index.add(obj("y", a="str"))
        with pytest.raises(ObjectStoreError):
            index.probe(Op.LT, 5)


class TestIndexManager:
    def test_create_and_lookup(self):
        manager = IndexManager()
        manager.create("C", "a", [obj("x", a=1)], kind="hash")
        assert manager.get("C", "a") is not None
        assert manager.get("C", "b") is None
        assert len(manager) == 1

    def test_best_for_respects_op(self):
        manager = IndexManager()
        manager.create("C", "a", [], kind="hash")
        assert manager.best_for("C", "a", Op.EQ) is not None
        assert manager.best_for("C", "a", Op.LT) is None

    def test_unknown_kind(self):
        with pytest.raises(ObjectStoreError):
            IndexManager().create("C", "a", [], kind="btree")

    def test_maintain_on_insert(self):
        manager = IndexManager()
        manager.create("C", "a", [], kind="hash")
        manager.maintain(obj("x", a=5))
        index = manager.get("C", "a")
        assert index.probe(Op.EQ, 5)[0] == [LOid("DB", "x")]


def make_db(index_kind=None):
    schema = ComponentSchema.of(
        "DB", [ClassDef.of("C", [primitive("a"), primitive("b")])]
    )
    db = ComponentDatabase(schema)
    for i in range(20):
        db.insert(LocalObject(LOid("DB", f"o{i}"), "C",
                              {"a": i % 5, "b": i}))
    db.insert(LocalObject(LOid("DB", "null"), "C", {"a": NULL, "b": 99}))
    if index_kind:
        db.create_index("C", "a", kind=index_kind)
    return db


def query(op, operand):
    pred = Predicate(path=Path.of("a"), op=op, operand=operand)
    return LocalQuery(
        db_name="DB", range_class="C", targets=(Path.of("b"),),
        where=((pred,),),
    )


class TestIndexedExecution:
    @pytest.mark.parametrize("kind", ["hash", "sorted"])
    def test_answers_identical_to_scan(self, kind):
        scan_result = make_db().execute_local(query(Op.EQ, 3))
        indexed_result = make_db(kind).execute_local(query(Op.EQ, 3))
        assert {r.loid for r in scan_result.rows} == {
            r.loid for r in indexed_result.rows
        }
        assert {r.loid for r in scan_result.maybe_rows} == {
            r.loid for r in indexed_result.maybe_rows
        }

    def test_scan_restricted(self):
        scan_result = make_db().execute_local(query(Op.EQ, 3))
        indexed_result = make_db("hash").execute_local(query(Op.EQ, 3))
        assert scan_result.objects_scanned == 21
        assert indexed_result.objects_scanned == 5  # 4 matches + 1 null
        assert indexed_result.index_probe is not None
        assert indexed_result.index_probe.index_kind == "hash"

    def test_range_uses_sorted_index(self):
        result = make_db("sorted").execute_local(query(Op.LT, 2))
        assert result.index_probe is not None
        # values 0,1 -> 8 objects, + 1 null candidate
        assert result.objects_scanned == 9

    def test_null_candidate_stays_maybe(self):
        result = make_db("hash").execute_local(query(Op.EQ, 3))
        maybe_loids = {r.loid.value for r in result.maybe_rows}
        assert maybe_loids == {"null"}

    def test_index_ignored_for_dnf(self):
        pred_a = Predicate(path=Path.of("a"), op=Op.EQ, operand=3)
        pred_b = Predicate(path=Path.of("b"), op=Op.EQ, operand=0)
        dnf_query = LocalQuery(
            db_name="DB", range_class="C", targets=(Path.of("b"),),
            where=((pred_a,), (pred_b,)),
        )
        result = make_db("hash").execute_local(dnf_query)
        assert result.index_probe is None
        assert result.objects_scanned == 21

    def test_create_index_validates(self):
        db = make_db()
        with pytest.raises(ObjectStoreError):
            db.create_index("C", "ghost")
        from repro.errors import UnknownClassError

        with pytest.raises(UnknownClassError):
            db.create_index("Ghost", "a")

    def test_insert_after_create_is_indexed(self):
        db = make_db("hash")
        db.insert(LocalObject(LOid("DB", "new"), "C", {"a": 3, "b": 1}))
        result = db.execute_local(query(Op.EQ, 3))
        assert LOid("DB", "new") in {r.loid for r in result.rows}


class TestStaleIndexRegression:
    """In-place mutation must never leave a built index serving stale
    buckets — the bug :meth:`ComponentDatabase.note_mutation` fixes."""

    def test_mutation_without_hook_serves_stale_bucket(self):
        # Pin the bug's mechanics: a bare values mutation leaves the old
        # bucket in place (this is why the hook has to exist).
        db = make_db("hash")
        target = db.extent("C")[LOid("DB", "o3")]  # a == 3
        target.values["a"] = 4
        index = db.indexes.get("C", "a")
        assert LOid("DB", "o3") in index.probe(Op.EQ, 3)[0]  # stale!

    def test_note_mutation_refreshes_index(self):
        db = make_db("hash")
        target = db.extent("C")[LOid("DB", "o3")]
        target.values["a"] = 4
        db.note_mutation("C")
        index = db.indexes.get("C", "a")
        assert LOid("DB", "o3") not in index.probe(Op.EQ, 3)[0]
        assert LOid("DB", "o3") in index.probe(Op.EQ, 4)[0]

    def test_note_mutation_keeps_indexed_answers_correct(self):
        mutated = make_db("hash")
        obj = mutated.extent("C")[LOid("DB", "o3")]
        obj.values["a"] = 4
        mutated.note_mutation("C")
        # Reference: a fresh unindexed db holding the post-mutation data.
        reference = make_db()
        reference.extent("C")[LOid("DB", "o3")].values["a"] = 4
        reference.note_mutation("C")
        for operand in (3, 4):
            a = mutated.execute_local(query(Op.EQ, operand))
            b = reference.execute_local(query(Op.EQ, operand))
            assert {r.loid for r in a.rows} == {r.loid for r in b.rows}

    def test_note_mutation_without_class_refreshes_everything(self):
        db = make_db("hash")
        db.extent("C")[LOid("DB", "o3")].values["a"] = 4
        db.note_mutation()  # class unknown: rebuild all
        index = db.indexes.get("C", "a")
        assert LOid("DB", "o3") not in index.probe(Op.EQ, 3)[0]

    def test_note_mutation_invalidates_columnar_view(self):
        db = make_db()
        before = db.columnar_extent("C")
        db.extent("C")[LOid("DB", "o3")].values["a"] = 4
        db.note_mutation("C")
        after = db.columnar_extent("C")
        assert after is not before
        assert after.objects[3].values["a"] == 4

    def test_system_note_mutation_resigns_and_bumps(self):
        from repro.workload.paper_example import build_school_federation

        system = build_school_federation()
        system.build_signatures()
        db1 = system.db("DB1")
        student = next(iter(db1.extent("Student").values()))
        old_signature = system.signatures.lookup("Student", student.loid)
        version = system.schema_version
        student.values["age"] = 99
        system.note_mutation("DB1", student)
        assert system.schema_version > version
        new_signature = system.signatures.lookup("Student", student.loid)
        assert new_signature != old_signature

    def test_index_manager_drop(self):
        manager = IndexManager()
        manager.create("C", "a", [obj("x", a=1)], kind="hash")
        assert manager.drop("C", "a")
        assert manager.get("C", "a") is None
        assert not manager.drop("C", "a")  # already gone


class TestIndexedStrategies:
    def test_equivalence_with_indexes_everywhere(self):
        """Indexing every site must not change any strategy's answer."""
        from helpers import make_workload
        from repro.core.engine import GlobalQueryEngine

        plain = make_workload(seed=61, scale=0.03)
        indexed = make_workload(seed=61, scale=0.03)
        for db in indexed.system.databases.values():
            for class_name in db.schema.class_names:
                for attr in db.schema.cls(class_name).primitive_attributes():
                    db.create_index(class_name, attr.name, kind="sorted")
        a = GlobalQueryEngine(plain.system).compare(plain.query)
        b = GlobalQueryEngine(indexed.system).compare(indexed.query)
        from repro.core.results import same_answers

        for name in ("CA", "BL", "PL"):
            assert same_answers(a[name].results, b[name].results)
