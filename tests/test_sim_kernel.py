"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import (
    Acquire,
    AllOf,
    Release,
    Simulator,
    Timeout,
)


class TestEventLoop:
    def test_time_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.schedule(1.0, lambda: seen.append(sim.now))
        assert sim.run() == 2.0
        assert seen == [1.0, 2.0]

    def test_fifo_ties(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(1.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        assert sim.run(until=2.0) == 2.0
        assert seen == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1


class TestEvents:
    def test_trigger_resumes_waiters(self):
        sim = Simulator()
        evt = sim.event("e")
        seen = []
        evt.on_trigger(lambda e: seen.append(e.value))
        sim.schedule(1.0, lambda: evt.trigger(42))
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        evt = sim.event("e")
        evt.trigger()
        with pytest.raises(SimulationError):
            evt.trigger()

    def test_late_waiter_fires_immediately(self):
        sim = Simulator()
        evt = sim.event("e")
        evt.trigger(7)
        seen = []
        evt.on_trigger(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]


class TestProcesses:
    def test_timeout_sequence(self):
        sim = Simulator()
        marks = []

        def body():
            yield Timeout(1.0)
            marks.append(sim.now)
            yield Timeout(2.0)
            marks.append(sim.now)

        sim.process(body())
        sim.run()
        assert marks == [1.0, 3.0]

    def test_negative_timeout_rejected(self):
        sim = Simulator()

        def body():
            yield Timeout(-1.0)

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_done_event_carries_return(self):
        sim = Simulator()

        def body():
            yield Timeout(1.0)
            return "finished"

        proc = sim.process(body())
        sim.run()
        assert proc.done.triggered
        assert proc.done.value == "finished"

    def test_wait_on_event(self):
        sim = Simulator()
        evt = sim.event()
        order = []

        def waiter():
            value = yield evt
            order.append(("woke", sim.now, value))

        def trigger():
            yield Timeout(3.0)
            evt.trigger("go")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert order == [("woke", 3.0, "go")]

    def test_all_of(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        done = []

        def waiter():
            yield AllOf((e1, e2))
            done.append(sim.now)

        def t1():
            yield Timeout(1.0)
            e1.trigger()

        def t2():
            yield Timeout(4.0)
            e2.trigger()

        sim.process(waiter())
        sim.process(t1())
        sim.process(t2())
        sim.run()
        assert done == [4.0]

    def test_all_of_already_triggered(self):
        sim = Simulator()
        e1 = sim.event()
        e1.trigger()
        done = []

        def waiter():
            yield AllOf((e1,))
            done.append(True)

        sim.process(waiter())
        sim.run()
        assert done == [True]

    def test_unknown_directive_rejected(self):
        sim = Simulator()

        def body():
            yield "junk"

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_finishing_while_holding_resource_rejected(self):
        sim = Simulator()
        res = sim.resource("r")

        def body():
            yield Acquire(res)
            # never releases

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_release_without_hold_rejected(self):
        sim = Simulator()
        res = sim.resource("r")

        def body():
            yield Release(res)

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()


class TestResources:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = sim.resource("disk")
        spans = []

        def worker(name):
            yield Acquire(res)
            start = sim.now
            yield Timeout(2.0)
            yield Release(res)
            spans.append((name, start, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = sim.resource("cpu", capacity=2)
        finishes = []

        def worker():
            yield Acquire(res)
            yield Timeout(2.0)
            yield Release(res)
            finishes.append(sim.now)

        for _ in range(2):
            sim.process(worker())
        sim.run()
        assert finishes == [2.0, 2.0]

    def test_queue_length(self):
        sim = Simulator()
        res = sim.resource("r")
        grabbed = res.acquire()
        assert grabbed.triggered
        waiting = res.acquire()
        assert not waiting.triggered
        assert res.queued == 1
        res.release()
        sim.run()
        assert waiting.triggered

    def test_busy_time_accounting(self):
        sim = Simulator()
        res = sim.resource("r")

        def worker():
            yield Acquire(res)
            yield Timeout(3.0)
            yield Release(res)

        sim.process(worker())
        sim.run()
        assert res.busy_time == pytest.approx(3.0)

    def test_release_idle_rejected(self):
        sim = Simulator()
        res = sim.resource("r")
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.resource("r", capacity=0)


class TestWaitAccounting:
    def test_fifo_wait_time_sums_per_grant(self):
        sim = Simulator()
        res = sim.resource("r")

        def worker(hold):
            yield Acquire(res)
            yield Timeout(hold)
            yield Release(res)

        sim.process(worker(2.0))
        sim.process(worker(1.0))
        sim.process(worker(1.0))
        sim.run()
        # Second grant waits 2.0 (behind the first), third waits 3.0.
        assert res.wait_time == pytest.approx(5.0)
        assert res.grants == 3
        assert res.grants_queued == 2

    def test_uncontended_grants_accrue_no_wait(self):
        sim = Simulator()
        res = sim.resource("r", capacity=2)

        def worker():
            yield Acquire(res)
            yield Timeout(1.0)
            yield Release(res)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert res.wait_time == 0.0
        assert res.grants_queued == 0


class TestDowntime:
    def test_acquire_during_window_queues_until_recovery(self):
        sim = Simulator()
        res = sim.resource("r")
        res.add_downtime(0.0, 5.0)
        granted_at = []

        def worker():
            yield Acquire(res)
            granted_at.append(sim.now)
            yield Release(res)

        sim.process(worker())
        sim.run()
        assert granted_at == [5.0]
        # Downtime queueing counts as ordinary wait time.
        assert res.wait_time == pytest.approx(5.0)
        assert res.grants_queued == 1

    def test_holder_is_not_preempted(self):
        sim = Simulator()
        res = sim.resource("r")
        res.add_downtime(1.0, 2.0)

        def worker():
            yield Acquire(res)  # granted at t=0, before the window
            yield Timeout(3.0)
            yield Release(res)

        sim.process(worker())
        assert sim.run() == pytest.approx(3.0)
        assert res.busy_time == pytest.approx(3.0)

    def test_release_inside_window_stalls_successor(self):
        sim = Simulator()
        res = sim.resource("r")
        res.add_downtime(2.0, 4.0)
        granted_at = []

        def holder():
            yield Acquire(res)
            yield Timeout(3.0)  # releases at t=3, inside the window
            yield Release(res)

        def waiter():
            yield Acquire(res)
            granted_at.append(sim.now)
            yield Release(res)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert granted_at == [4.0]  # drained at the window end
        assert res.wait_time == pytest.approx(4.0)

    def test_chained_windows_drain_in_fifo_order(self):
        sim = Simulator()
        res = sim.resource("r")
        res.add_downtime(0.0, 1.0)
        res.add_downtime(1.0, 2.0)
        order = []

        def worker(tag):
            yield Acquire(res)
            order.append((tag, sim.now))
            yield Release(res)

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert order == [("a", 2.0), ("b", 2.0)]

    def test_down_until(self):
        res = Simulator().resource("r")
        res.add_downtime(1.0, 2.0)
        res.add_downtime(3.0, 4.0)
        assert res.down_until(0.5) is None
        assert res.down_until(1.0) == 2.0
        assert res.down_until(2.5) is None
        assert res.down_until(3.5) == 4.0
        assert res.down_until(4.0) is None

    def test_window_validation(self):
        res = Simulator().resource("r")
        with pytest.raises(SimulationError):
            res.add_downtime(1.0, 1.0)  # empty
        with pytest.raises(SimulationError):
            res.add_downtime(-1.0, 2.0)  # starts in the past
