"""Unit and property tests for Kleene three-valued logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tvl import TV, all3, any3, from_bool

TVS = [TV.TRUE, TV.FALSE, TV.UNKNOWN]
tv_strategy = st.sampled_from(TVS)


class TestTruthTables:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (TV.TRUE, TV.TRUE, TV.TRUE),
            (TV.TRUE, TV.FALSE, TV.FALSE),
            (TV.TRUE, TV.UNKNOWN, TV.UNKNOWN),
            (TV.FALSE, TV.FALSE, TV.FALSE),
            (TV.FALSE, TV.UNKNOWN, TV.FALSE),
            (TV.UNKNOWN, TV.UNKNOWN, TV.UNKNOWN),
        ],
    )
    def test_and(self, a, b, expected):
        assert a.and_(b) is expected
        assert b.and_(a) is expected

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (TV.TRUE, TV.TRUE, TV.TRUE),
            (TV.TRUE, TV.FALSE, TV.TRUE),
            (TV.TRUE, TV.UNKNOWN, TV.TRUE),
            (TV.FALSE, TV.FALSE, TV.FALSE),
            (TV.FALSE, TV.UNKNOWN, TV.UNKNOWN),
            (TV.UNKNOWN, TV.UNKNOWN, TV.UNKNOWN),
        ],
    )
    def test_or(self, a, b, expected):
        assert a.or_(b) is expected
        assert b.or_(a) is expected

    def test_not(self):
        assert TV.TRUE.not_() is TV.FALSE
        assert TV.FALSE.not_() is TV.TRUE
        assert TV.UNKNOWN.not_() is TV.UNKNOWN

    def test_flags(self):
        assert TV.TRUE.is_true and not TV.TRUE.is_false
        assert TV.FALSE.is_false and not TV.FALSE.is_unknown
        assert TV.UNKNOWN.is_unknown and not TV.UNKNOWN.is_true


class TestBoolGuard:
    def test_bool_raises(self):
        with pytest.raises(TypeError):
            bool(TV.UNKNOWN)

    def test_if_raises(self):
        with pytest.raises(TypeError):
            if TV.TRUE:  # pragma: no cover - raises before body
                pass

    @pytest.mark.parametrize("tv", TVS)
    def test_not_raises(self, tv):
        # `not tv` silently maps UNKNOWN to True; the guard forbids it.
        with pytest.raises(TypeError):
            not tv

    @pytest.mark.parametrize("tv", TVS)
    def test_python_and_raises(self, tv):
        # `a and b` would coerce the left operand; and_() is the API.
        with pytest.raises(TypeError):
            tv and TV.TRUE

    @pytest.mark.parametrize("tv", TVS)
    def test_python_or_raises(self, tv):
        with pytest.raises(TypeError):
            tv or TV.FALSE

    def test_guard_message_names_the_fix(self):
        with pytest.raises(TypeError, match="explicitly"):
            bool(TV.TRUE)


class TestAggregates:
    def test_all3_empty_is_true(self):
        assert all3([]) is TV.TRUE

    def test_any3_empty_is_false(self):
        assert any3([]) is TV.FALSE

    def test_all3_false_dominates(self):
        assert all3([TV.TRUE, TV.UNKNOWN, TV.FALSE]) is TV.FALSE

    def test_all3_unknown(self):
        assert all3([TV.TRUE, TV.UNKNOWN]) is TV.UNKNOWN

    def test_any3_true_dominates(self):
        assert any3([TV.FALSE, TV.UNKNOWN, TV.TRUE]) is TV.TRUE

    def test_any3_unknown(self):
        assert any3([TV.FALSE, TV.UNKNOWN]) is TV.UNKNOWN

    def test_from_bool(self):
        assert from_bool(True) is TV.TRUE
        assert from_bool(False) is TV.FALSE


class TestShortCircuit:
    """all3/any3 stop consuming once the result is decided.

    This matters beyond efficiency: predicate evaluation may be lazily
    generated (e.g. remote checks), and a FALSE conjunct must suppress
    the rest exactly like Python's ``all``.
    """

    @staticmethod
    def _poisoned(prefix, sentinel):
        yield from prefix
        yield sentinel
        raise AssertionError("consumed past the deciding value")

    def test_all3_stops_at_false(self):
        gen = self._poisoned([TV.TRUE, TV.UNKNOWN], TV.FALSE)
        assert all3(gen) is TV.FALSE

    def test_any3_stops_at_true(self):
        gen = self._poisoned([TV.FALSE, TV.UNKNOWN], TV.TRUE)
        assert any3(gen) is TV.TRUE

    def test_all3_consumes_everything_without_false(self):
        seen = []

        def recording():
            for tv in (TV.TRUE, TV.UNKNOWN, TV.TRUE):
                seen.append(tv)
                yield tv

        assert all3(recording()) is TV.UNKNOWN
        assert len(seen) == 3

    def test_any3_consumes_everything_without_true(self):
        seen = []

        def recording():
            for tv in (TV.FALSE, TV.UNKNOWN, TV.FALSE):
                seen.append(tv)
                yield tv

        assert any3(recording()) is TV.UNKNOWN
        assert len(seen) == 3


class TestAlgebraicLaws:
    @given(tv_strategy, tv_strategy)
    def test_de_morgan_and(self, a, b):
        assert a.and_(b).not_() is a.not_().or_(b.not_())

    @given(tv_strategy, tv_strategy)
    def test_de_morgan_or(self, a, b):
        assert a.or_(b).not_() is a.not_().and_(b.not_())

    @given(tv_strategy, tv_strategy, tv_strategy)
    def test_and_associative(self, a, b, c):
        assert a.and_(b).and_(c) is a.and_(b.and_(c))

    @given(tv_strategy, tv_strategy, tv_strategy)
    def test_or_distributes_over_and(self, a, b, c):
        assert a.or_(b.and_(c)) is a.or_(b).and_(a.or_(c))

    @given(tv_strategy)
    def test_double_negation(self, a):
        assert a.not_().not_() is a

    @given(st.lists(tv_strategy, max_size=6))
    def test_all3_matches_fold(self, values):
        folded = TV.TRUE
        for value in values:
            folded = folded.and_(value)
        assert all3(values) is folded

    @given(st.lists(tv_strategy, max_size=6))
    def test_any3_matches_fold(self, values):
        folded = TV.FALSE
        for value in values:
            folded = folded.or_(value)
        assert any3(values) is folded
