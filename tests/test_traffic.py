"""The concurrent traffic engine: templates, mixes, seeds, driver.

The load-bearing guarantees:

* seed derivation is a pure function (same scope → same seed, distinct
  scopes → distinct streams);
* template instantiation is deterministic in the RNG and never mutates
  shared state;
* two runs with the same root seed are byte-identical end to end
  (records, latencies, report JSON);
* per-worker cache deltas sum to the federation-wide delta even under
  interleaving;
* every interleaved answer equals its serial re-execution (0
  violations), with and without an active fault plan;
* admission control sheds deterministically under overload and the
  shed count matches the gate's rejection counter.
"""

from __future__ import annotations

import json
import random

import pytest

from helpers import make_workload
from repro.core.query import Op
from repro.errors import WorkloadError
from repro.faults.plan import FaultPlan
from repro.traffic import (
    AdmissionControl,
    ParamSpec,
    PredicateTemplate,
    QueryMix,
    MixEntry,
    QueryTemplate,
    TrafficEngine,
    default_mix,
    derive_seed,
)
from repro.core.options import ExecutionOptions


@pytest.fixture(scope="module")
def workload():
    return make_workload(1996)


def small_engine(workload, **overrides):
    kwargs = dict(workers=3, queries=8, seed=42, strategy="BL")
    kwargs.update(overrides)
    return TrafficEngine(workload.system, default_mix(workload), **kwargs)


class TestSeeds:
    def test_stable_and_scoped(self):
        assert derive_seed(1996, "worker", 3) == derive_seed(1996, "worker", 3)
        assert derive_seed(1996, "worker", 3) != derive_seed(1996, "worker", 4)
        assert derive_seed(1996, "worker", 3) != derive_seed(1997, "worker", 3)
        assert derive_seed(1996, "fault", 3) != derive_seed(1996, "worker", 3)

    def test_no_concatenation_collisions(self):
        # "1:23" vs "12:3" style collisions must not happen.
        assert derive_seed(1, "w", 23) != derive_seed(1, "w2", 3)


class TestTemplates:
    def test_param_spec_kinds(self):
        rng = random.Random(1)
        assert 0 <= ParamSpec("a", low=0, high=5).draw(rng) < 5
        assert ParamSpec("b", kind="choice", choices=(7,)).draw(rng) == 7
        assert ParamSpec("c", kind="const", value=9).draw(rng) == 9

    def test_param_spec_validation(self):
        with pytest.raises(WorkloadError):
            ParamSpec("a", low=5, high=5)
        with pytest.raises(WorkloadError):
            ParamSpec("a", kind="choice")
        with pytest.raises(WorkloadError):
            ParamSpec("a", kind="bogus")

    def test_instantiate_is_deterministic(self, workload):
        template = default_mix(workload).entries[0].template
        one = template.instantiate(random.Random(3))
        two = template.instantiate(random.Random(3))
        assert one == two
        assert one.query == two.query

    def test_unknown_predicate_param_rejected(self):
        with pytest.raises(WorkloadError, match="unknown param"):
            QueryTemplate(
                name="bad", range_class="K1", targets=("key",),
                predicates=(
                    PredicateTemplate(path="key", op=Op.EQ, param="nope"),
                ),
                params=(),
            )

    def test_from_query_consts_and_vary(self, workload):
        query = workload.query
        template = QueryTemplate.from_query("paper", query)
        bound = template.instantiate(random.Random(0))
        assert bound.query == query  # all-const: reproduces verbatim
        with pytest.raises(WorkloadError, match="unknown predicate paths"):
            QueryTemplate.from_query(
                "bad", query, vary={"no.such.path": ParamSpec("x", high=2)}
            )

    def test_const_params_consume_no_rng(self, workload):
        template = QueryTemplate.from_query("paper", workload.query)
        rng = random.Random(5)
        template.instantiate(rng)
        probe = random.Random(5).random()
        assert rng.random() == probe  # stream untouched


class TestMix:
    def test_default_mix_names_and_weights(self, workload):
        mix = default_mix(workload)
        assert mix.names == ("point", "scan", "paper")
        assert "point" in mix.describe()

    def test_choose_is_weighted_and_deterministic(self, workload):
        mix = default_mix(workload)
        counts = {}
        rng = random.Random(9)
        for _ in range(700):
            name = mix.choose(rng).name
            counts[name] = counts.get(name, 0) + 1
        assert counts["point"] > counts["scan"] > counts["paper"]
        again = random.Random(9)
        assert mix.choose(again).name == mix.choose(random.Random(9)).name

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            QueryMix(entries=())

    def test_duplicate_template_rejected(self, workload):
        entry = default_mix(workload).entries[0]
        with pytest.raises(WorkloadError, match="duplicate"):
            QueryMix(entries=(entry, entry))


class TestDriverDeterminism:
    def test_two_runs_byte_identical(self, workload):
        first = small_engine(workload).run()
        w2 = make_workload(1996)
        second = TrafficEngine(
            w2.system, default_mix(w2), workers=3, queries=8, seed=42,
            strategy="BL",
        ).run()
        assert first.records == second.records
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_seed_changes_workload(self, workload):
        one = small_engine(workload, seed=1).run()
        two = small_engine(make_workload(1996), seed=2).run()
        assert one.records != two.records

    def test_replay_matches_executed_templates(self, workload):
        engine = small_engine(workload)
        report = engine.run()
        for worker_id in range(engine.workers):
            replayed = engine.replay_worker(worker_id)
            mine = [r for r in report.records if r.worker == worker_id]
            assert [r.template for r in mine] == [
                b.template for b in replayed
            ]

    def test_total_queries_distribution(self, workload):
        engine = TrafficEngine(
            workload.system, default_mix(workload),
            workers=4, total_queries=10, seed=1,
        )
        assert engine._counts == (3, 3, 2, 2)
        report = engine.run()
        assert report.queries_total == 10
        assert report.completed + report.shed == 10


class TestDriverAccounting:
    def test_per_worker_deltas_sum_to_global(self, workload):
        system = workload.system
        engine = small_engine(workload)
        before = system.cache_stats()
        report = engine.run()
        delta = system.cache_stats().delta(before)
        assert sum(w.cache_hits for w in report.per_worker) == delta.hits
        assert sum(w.cache_misses for w in report.per_worker) == (
            delta.misses
        )
        assert report.cache_hits == delta.hits
        assert report.cache_misses == delta.misses

    def test_latency_decomposes(self, workload):
        report = small_engine(workload).run()
        for record in report.records:
            if record.shed:
                continue
            assert record.latency_s == pytest.approx(
                record.wait_s + record.service_s
            )
            assert record.service_s > 0

    def test_report_json_shape(self, workload):
        data = small_engine(workload).run().to_dict()
        assert data["workers"] == 3
        assert data["completed"] + data["shed"] == data["queries_total"]
        assert set(data["template_counts"]) <= {"point", "scan", "paper"}
        json.dumps(data)  # serializable


class TestSerialVerification:
    def test_zero_violations_fault_free(self, workload):
        report = small_engine(workload).run(verify=True)
        assert report.verified == report.completed > 0
        assert report.violations == []

    def test_zero_violations_under_faults(self, workload):
        options = ExecutionOptions(
            fault_plan=FaultPlan.from_spec("DB2@0:0.5,link:*>DB1:loss0.2"),
        )
        report = small_engine(workload, options=options).run(verify=True)
        assert report.violations == []
        # Per-query fault seeds were derived and recorded.
        seeds = {r.fault_seed for r in report.records if not r.shed}
        assert None not in seeds
        assert len(seeds) > 1

    def test_detects_divergence(self, workload):
        engine = small_engine(workload)
        report = engine.run()
        broken = report.records[0]
        report.records[0] = type(broken)(
            worker=broken.worker, seq=broken.seq, template=broken.template,
            submitted_s=broken.submitted_s, started_s=broken.started_s,
            finished_s=broken.finished_s, service_s=broken.service_s,
            digest="bogus0bogus0", fault_seed=broken.fault_seed,
        )
        engine._verify_serial(report)
        assert any("bogus0bogus0" in v for v in report.violations)


class TestAdmissionControl:
    def test_sheds_deterministically_under_overload(self, workload):
        admission = AdmissionControl(
            max_in_flight=1, queue_depth=1, shed_backoff_s=0.01
        )
        one = small_engine(workload, workers=6, admission=admission).run()
        two = small_engine(workload, workers=6, admission=admission).run()
        assert one.shed > 0
        assert one.shed == two.shed
        assert one.gate_rejected == one.shed
        shed_records = [r for r in one.records if r.shed]
        assert all(
            r.digest == "" and r.service_s == 0 for r in shed_records
        )

    def test_no_shedding_with_room(self, workload):
        report = small_engine(
            workload,
            admission=AdmissionControl(max_in_flight=8, queue_depth=64),
        ).run()
        assert report.shed == 0
        assert report.completed == 3 * 8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AdmissionControl(max_in_flight=0)
        with pytest.raises(WorkloadError):
            AdmissionControl(queue_depth=-1)

    def test_kernel_admit_counter(self):
        from repro.sim.kernel import Resource, Simulator

        sim = Simulator()
        gate = Resource(sim, "gate", capacity=1)
        assert gate.admit(0)  # nothing queued yet
        gate.acquire()
        gate.acquire()  # queues (capacity held)
        assert not gate.admit(1)
        assert gate.rejected == 1

    def test_signature_strategy_builds_catalog_once(self, workload):
        system = make_workload(304).system
        assert system.signatures is None
        engine = TrafficEngine(
            system, default_mix(make_workload(304)),
            workers=2, queries=3, seed=5, strategy="BL-S",
        )
        assert system.signatures is not None
        report = engine.run(verify=True)
        assert report.violations == []


class TestPercentile:
    """Nearest-rank percentile: the 0/1/2-sample edge cases.

    The old scale-by-100-then-truncate formulation floored any rank
    whose fractional part was under a hundredth: q=0.501 over two
    samples picked the *first* sample (rank ceil(1.002)=2 collapsed
    to 1).
    """

    def test_empty(self):
        from repro.traffic.driver import _percentile

        assert _percentile([], 0.5) == 0.0
        assert _percentile([], 0.99) == 0.0

    def test_single_sample_every_quantile(self):
        from repro.traffic.driver import _percentile

        for q in (0.0, 0.01, 0.5, 0.95, 0.99, 1.0):
            assert _percentile([7.5], q) == 7.5

    def test_two_samples(self):
        from repro.traffic.driver import _percentile

        values = [1.0, 2.0]
        assert _percentile(values, 0.5) == 1.0    # rank ceil(1.0) = 1
        assert _percentile(values, 0.501) == 2.0  # the old bug: returned 1.0
        assert _percentile(values, 0.51) == 2.0
        assert _percentile(values, 0.99) == 2.0
        assert _percentile(values, 1.0) == 2.0

    def test_exact_products_do_not_drift(self):
        from repro.traffic.driver import _percentile

        # 0.95 * 20 is 19.000000000000004 in floats; the rank must stay
        # 19, not ceil up to 20.
        values = [float(i) for i in range(1, 21)]
        assert _percentile(values, 0.95) == 19.0
        assert _percentile(values, 0.5) == 10.0

    def test_q_zero_clamps_to_first(self):
        from repro.traffic.driver import _percentile

        assert _percentile([3.0, 4.0, 5.0], 0.0) == 3.0
