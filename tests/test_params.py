"""Unit tests for Table 2 parameter modelling and sampling."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.params import (
    ClassParams,
    DbClassParams,
    WorkloadParams,
    combined_predicate_selectivity,
    isomerism_ratio_for,
    sample_params,
    table2_rows,
)


class TestSelectivityLaws:
    def test_r_ps_law(self):
        assert combined_predicate_selectivity(0) == 1.0
        assert combined_predicate_selectivity(1) == pytest.approx(0.45)
        assert combined_predicate_selectivity(4) == pytest.approx(0.45 ** 2)

    def test_r_iso_law(self):
        assert isomerism_ratio_for(1) == 0.0
        assert isomerism_ratio_for(3) == pytest.approx(1 - 0.9 ** 2)
        assert isomerism_ratio_for(8) == pytest.approx(1 - 0.9 ** 7)

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            combined_predicate_selectivity(-1)
        with pytest.raises(WorkloadError):
            isomerism_ratio_for(0)

    @given(st.integers(min_value=1, max_value=10))
    def test_r_ps_decreasing(self, n):
        assert combined_predicate_selectivity(n + 1) < combined_predicate_selectivity(n)

    @given(st.integers(min_value=2, max_value=12))
    def test_r_iso_increasing(self, n):
        assert isomerism_ratio_for(n) > isomerism_ratio_for(n - 1)


def tiny_params(n_dbs=2, n_pa=(1, 0), n_p=1):
    db_names = tuple(f"DB{i+1}" for i in range(n_dbs))
    per_db = {
        name: DbClassParams(
            n_objects=100,
            n_local_pred_attrs=n_pa[i % len(n_pa)],
            n_target_attrs=1,
            r_missing=0.1 if n_pa[i % len(n_pa)] == n_p else 1.0,
        )
        for i, name in enumerate(db_names)
    }
    return WorkloadParams(
        db_names=db_names,
        classes=[ClassParams(n_predicates=n_p, r_referenced=0.8, per_db=per_db)],
    )


class TestParamsStructure:
    def test_derived_quantities(self):
        params = tiny_params()
        assert params.n_dbs == 2
        assert params.n_classes == 1
        assert params.r_iso == pytest.approx(0.1)
        assert params.total_predicates() == 1
        cls = params.classes[0]
        assert cls.predicate_selectivity == pytest.approx(0.45)
        assert cls.local_selectivity("DB1") == pytest.approx(0.45)
        assert cls.local_selectivity("DB2") == 1.0
        assert cls.unsolved_count("DB2") == 1
        assert cls.assistant_selectivity("DB2") == pytest.approx(0.55)
        assert cls.signature_selectivity("DB2") == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(db_names=(), classes=[])
        with pytest.raises(WorkloadError):
            WorkloadParams(db_names=("DB1",), classes=[])
        with pytest.raises(WorkloadError):
            DbClassParams(n_objects=-1, n_local_pred_attrs=0,
                          n_target_attrs=0, r_missing=0.1)
        with pytest.raises(WorkloadError):
            DbClassParams(n_objects=1, n_local_pred_attrs=0,
                          n_target_attrs=0, r_missing=1.5)
        with pytest.raises(WorkloadError):
            ClassParams(n_predicates=0, r_referenced=0.0, per_db={})

    def test_missing_db_params_rejected(self):
        params = tiny_params()
        with pytest.raises(WorkloadError):
            WorkloadParams(
                db_names=("DB1", "DB2", "DB3"), classes=params.classes
            )


class TestSampling:
    def test_defaults_in_table2_ranges(self):
        rng = random.Random(0)
        for _ in range(50):
            params = sample_params(rng)
            assert params.n_dbs == 3
            assert 1 <= params.n_classes <= 4
            for cls in params.classes:
                assert 0 <= cls.n_predicates <= 3
                assert 0.5 <= cls.r_referenced <= 1.0
                for db_params in cls.per_db.values():
                    assert 5000 <= db_params.n_objects <= 6000
                    assert 0 <= db_params.n_local_pred_attrs <= cls.n_predicates
                    assert 0 <= db_params.n_target_attrs <= 2
                    if cls.n_predicates > db_params.n_local_pred_attrs:
                        assert db_params.r_missing <= 0.2  # clamped for generation
                    else:
                        assert 0.0 <= db_params.r_missing <= 0.2

    def test_at_least_one_predicate(self):
        rng = random.Random(1)
        for _ in range(50):
            assert sample_params(rng).total_predicates() >= 1

    def test_deterministic_given_rng(self):
        a = sample_params(random.Random(42))
        b = sample_params(random.Random(42))
        assert a.db_names == b.db_names
        assert [c.n_predicates for c in a.classes] == [
            c.n_predicates for c in b.classes
        ]

    def test_local_pred_attr_bias(self):
        rng = random.Random(2)
        params = sample_params(rng, local_pred_attr_bias=1.0)
        for cls in params.classes:
            for db_params in cls.per_db.values():
                assert db_params.n_local_pred_attrs == cls.n_predicates

    def test_custom_ranges(self):
        rng = random.Random(3)
        params = sample_params(rng, n_dbs=5, n_objects_range=(10, 20))
        assert params.n_dbs == 5
        for cls in params.classes:
            for db_params in cls.per_db.values():
                assert 10 <= db_params.n_objects <= 20


class TestTable2Rows:
    def test_row_names(self):
        names = [row[0] for row in table2_rows()]
        assert "N_db" in names
        assert "R_ps^k" in names
        assert "R_ss^{i,k}" in names
        assert len(names) == 14
