"""Unit tests for outerjoin materialization, incl. Figure 6 reproduction."""

import pytest

from repro.core.decompose import attributes_needed
from repro.errors import MappingError
from repro.integration.mapping import MappingCatalog
from repro.integration.outerjoin import IntegrationStats, integrate_class, materialize
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.values import MultiValue, NULL
from repro.sqlx import parse_query
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def full_exports(system, class_names):
    """Ship whole extents (all attributes) from every site."""
    exports = {}
    for class_name in class_names:
        per_db = {}
        for db_name, db in system.databases.items():
            local = system.global_schema.constituent_class(db_name, class_name)
            if local is None:
                continue
            per_db[db_name] = list(db.extent(local).values())
        exports[class_name] = per_db
    return exports


@pytest.fixture()
def school_extent(school):
    classes = ("Student", "Teacher", "Department", "Address")
    exports = full_exports(school, classes)
    return materialize(
        classes, school.global_schema, school.catalog, exports
    )


class TestFigure6:
    """The materialized global classes match the paper's Figure 6."""

    def test_john_merges_age_and_address(self, school_extent):
        john = school_extent.extent("Student")[GOid("gs1")]
        assert john.get("s-no") == 804301
        assert john.get("name") == "John"
        assert john.get("age") == 31            # from DB1
        assert john.get("sex") == "male"        # DB1 null, DB2 provides
        assert john.get("address") == GOid("ga2")  # LOid a2' translated
        assert john.get("advisor") == GOid("gt1")

    def test_tony_keeps_missing_address(self, school_extent):
        tony = school_extent.extent("Student")[GOid("gs2")]
        assert tony.get("address") is NULL
        assert tony.get("advisor") == GOid("gt3")

    def test_hedy(self, school_extent):
        hedy = school_extent.extent("Student")[GOid("gs4")]
        assert hedy.get("address") == GOid("ga1")
        assert hedy.get("advisor") == GOid("gt4")
        assert hedy.get("age") is NULL  # nobody stores Hedy's age

    def test_teachers(self, school_extent):
        teachers = school_extent.extent("Teacher")
        jeffery = teachers[GOid("gt1")]
        assert jeffery.get("department") == GOid("gd1")
        assert jeffery.get("speciality") == "network"
        abel = teachers[GOid("gt2")]
        assert abel.get("department") == GOid("gd2")  # from DB3 (EE)
        assert abel.get("speciality") is NULL
        haley = teachers[GOid("gt3")]
        assert haley.get("speciality") is NULL
        kelly = teachers[GOid("gt4")]
        assert kelly.get("department") == GOid("gd1")  # CS via DB3
        assert kelly.get("speciality") == "database"

    def test_every_object_appears(self, school_extent):
        # Outer join: entities with a single copy still materialize.
        assert len(school_extent.extent("Student")) == 5
        assert len(school_extent.extent("Teacher")) == 4
        assert len(school_extent.extent("Department")) == 3
        assert len(school_extent.extent("Address")) == 2

    def test_sources_recorded(self, school_extent):
        john = school_extent.extent("Student")[GOid("gs1")]
        assert set(john.sources) == {LOid("DB1", "s1"), LOid("DB2", "s2'")}


class TestGlobalExtent:
    def test_deref(self, school_extent):
        assert school_extent.deref(GOid("gs1")).get("name") == "John"
        assert school_extent.deref(GOid("nope")) is None
        assert school_extent.deref(LOid("DB1", "s1")) is None

    def test_classes_and_len(self, school_extent):
        assert set(school_extent.classes()) == {
            "Student", "Teacher", "Department", "Address",
        }
        assert len(school_extent) == 14


class TestIntegrationMechanics:
    def test_stats_counted(self, school):
        stats = IntegrationStats()
        exports = full_exports(school, ("Student",))
        integrate_class(
            "Student", school.global_schema, school.catalog,
            exports["Student"], stats,
        )
        assert stats.objects_in == 6
        assert stats.objects_out == 5
        assert stats.translations > 0
        assert stats.comparisons >= stats.objects_in

    def test_unmapped_object_rejected(self, school):
        from repro.objectdb.objects import LocalObject

        ghost = LocalObject(LOid("DB1", "ghost"), "Student", {"name": "?"})
        with pytest.raises(MappingError):
            integrate_class(
                "Student", school.global_schema, school.catalog,
                {"DB1": [ghost]},
            )

    def test_dangling_reference_becomes_null(self, school):
        from repro.objectdb.objects import LocalObject

        # s9 references a teacher that was never catalogued.
        db1 = school.db("DB1")
        obj = LocalObject(
            LOid("DB1", "s1"), "Student",
            {"s-no": 1, "advisor": LOid("DB1", "phantom")},
        )
        integrated = integrate_class(
            "Student", school.global_schema, school.catalog, {"DB1": [obj]}
        )
        goid = school.catalog.goid_of("Student", LOid("DB1", "s1"))
        assert integrated[goid].get("advisor") is NULL

    def test_projected_exports_match_attributes_needed(self, school):
        query = parse_query(Q1_TEXT)
        needed = attributes_needed(query, school.global_schema, "Student")
        assert "name" in needed and "address" in needed and "advisor" in needed
        assert "s-no" in needed  # key rides along
        assert "sex" not in needed


class TestMultiValuedMerge:
    def test_collects_distinct_values(self):
        """A multi-valued attribute merges contributions across sites."""
        from repro.integration.global_schema import ClassCorrespondence, integrate_schemas
        from repro.integration.isomerism import table_from_correspondences
        from repro.objectdb.database import ComponentDatabase
        from repro.objectdb.objects import LocalObject
        from repro.objectdb.schema import ClassDef, ComponentSchema, primitive

        schemas = {}
        dbs = {}
        for name, phone in (("DB1", "111"), ("DB2", "222")):
            cs = ComponentSchema.of(
                name, [ClassDef.of("P", [primitive("k"), primitive("phone")])]
            )
            db = ComponentDatabase(cs)
            db.insert(LocalObject(LOid(name, "p"), "P", {"k": 1, "phone": phone}))
            schemas[name] = cs
            dbs[name] = db
        gs = integrate_schemas(
            schemas,
            [ClassCorrespondence.of(
                "P", [("DB1", "P"), ("DB2", "P")], "k",
                multi_valued_attributes=["phone"],
            )],
        )
        catalog = MappingCatalog()
        catalog.register(table_from_correspondences(
            "P", [(GOid("g1"), [LOid("DB1", "p"), LOid("DB2", "p")])]
        ))
        integrated = integrate_class(
            "P", gs, catalog,
            {n: list(db.extent("P").values()) for n, db in dbs.items()},
        )
        assert integrated[GOid("g1")].get("phone") == MultiValue(["111", "222"])


class TestSiteExports:
    """The typed per-site accessor replacing the old untyped .get hole."""

    def test_missing_site_yields_empty_tuple(self):
        from repro.integration.outerjoin import SiteExports

        exports = SiteExports({"DB1": []})
        assert exports.for_db("DB1") == ()
        assert exports.for_db("DB9") == ()  # absent site, typed empty

    def test_values_materialized_and_reiterable(self):
        from repro.integration.outerjoin import SiteExports
        from repro.objectdb.objects import LocalObject

        obj = LocalObject(LOid("DB1", "s1"), "Student", {"s-no": 1})
        exports = SiteExports({"DB1": iter([obj])})  # consumed-once input
        assert exports.for_db("DB1") == (obj,)
        assert exports.for_db("DB1") == (obj,)  # re-iterable

    def test_mapping_protocol(self):
        from repro.integration.outerjoin import SiteExports

        exports = SiteExports({"DB1": [], "DB2": []})
        assert set(exports) == {"DB1", "DB2"}
        assert len(exports) == 2
        assert exports["DB1"] == ()
        with pytest.raises(KeyError):
            exports["DB9"]

    def test_coerce_is_identity_on_wrapped(self):
        from repro.integration.outerjoin import SiteExports

        wrapped = SiteExports({"DB1": []})
        assert SiteExports.coerce(wrapped) is wrapped
        assert isinstance(SiteExports.coerce({"DB1": []}), SiteExports)


class TestBatchedMergeParity:
    """columnar=True picks the batched group-major merge; its objects,
    stats and errors must be identical to the per-object path."""

    def integrate_both(self, school, exports, stats_pair=None):
        results = []
        for columnar in (True, False):
            stats = IntegrationStats()
            integrated = integrate_class(
                "Student", school.global_schema, school.catalog,
                exports, stats, columnar=columnar,
            )
            results.append((integrated, stats))
        if stats_pair is not None:
            stats_pair.extend(s for _, s in results)
        return results[0][0], results[1][0]

    def test_school_objects_identical(self, school):
        exports = full_exports(school, ("Student",))["Student"]
        stats_pair = []
        batched, rowwise = self.integrate_both(school, exports, stats_pair)
        assert set(batched) == set(rowwise)
        for goid in batched:
            left, right = batched[goid], rowwise[goid]
            assert left.values == right.values
            assert left.sources == right.sources
            assert left.class_name == right.class_name
        on, off = stats_pair
        assert (on.objects_in, on.objects_out, on.comparisons,
                on.translations) == (
            off.objects_in, off.objects_out, off.comparisons,
            off.translations,
        )

    def test_non_reference_value_raises_identically(self, school):
        from repro.objectdb.objects import LocalObject

        bad = LocalObject(
            LOid("DB1", "s1"), "Student", {"s-no": 1, "advisor": 42}
        )
        messages = []
        for columnar in (True, False):
            with pytest.raises(MappingError) as err:
                integrate_class(
                    "Student", school.global_schema, school.catalog,
                    {"DB1": [bad]}, columnar=columnar,
                )
            messages.append(str(err.value))
        assert messages[0] == messages[1]

    def test_materialize_columnar_flag(self, school):
        classes = ("Student", "Teacher", "Department", "Address")
        exports = full_exports(school, classes)
        on = materialize(
            classes, school.global_schema, school.catalog, exports,
            columnar=True,
        )
        off = materialize(
            classes, school.global_schema, school.catalog, exports,
            columnar=False,
        )
        for class_name in classes:
            left, right = on.extent(class_name), off.extent(class_name)
            assert set(left) == set(right)
            for goid in left:
                assert left[goid].values == right[goid].values
