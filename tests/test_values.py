"""Unit tests for repro.objectdb.values (NULL, MultiValue)."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.objectdb.ids import GOid, LOid
from repro.objectdb.values import (
    MultiValue,
    NULL,
    Null,
    is_null,
    is_primitive,
    is_reference,
)


class TestNull:
    def test_singleton(self):
        assert Null() is NULL
        assert Null() is Null()

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_falsy(self):
        assert not NULL

    def test_equals_only_itself(self):
        assert NULL == NULL
        assert NULL != 0
        assert NULL != ""
        assert NULL != False  # noqa: E712 - explicit cross-type check

    def test_hashable(self):
        assert {NULL: 1}[NULL] == 1

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(None) is False or True  # None is not NULL
        assert not is_null(None)


class TestMultiValue:
    def test_dedupes(self):
        mv = MultiValue([1, 1, 2])
        assert len(mv) == 2

    def test_drops_nulls(self):
        mv = MultiValue([1, NULL, 2])
        assert len(mv) == 2
        assert NULL not in mv

    def test_flattens_nested(self):
        mv = MultiValue([MultiValue([1, 2]), 3])
        assert set(mv) == {1, 2, 3}

    def test_empty_is_null(self):
        assert is_null(MultiValue([]))
        assert is_null(MultiValue([NULL]))

    def test_nonempty_is_not_null(self):
        assert not is_null(MultiValue([0]))

    def test_contains(self):
        mv = MultiValue(["a", "b"])
        assert "a" in mv
        assert "c" not in mv

    def test_equality_and_hash(self):
        assert MultiValue([1, 2]) == MultiValue([2, 1])
        assert hash(MultiValue([1, 2])) == hash(MultiValue([2, 1]))
        assert MultiValue([1]) != MultiValue([2])
        assert MultiValue([1]) != frozenset([1])

    def test_repr_is_deterministic(self):
        assert repr(MultiValue([2, 1])) == repr(MultiValue([1, 2]))

    def test_values_property(self):
        assert MultiValue([1]).values == frozenset([1])

    @given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
    def test_union_via_concat(self, left, right):
        merged = MultiValue(list(MultiValue(left)) + list(MultiValue(right)))
        assert merged.values == frozenset(left) | frozenset(right)


class TestPredicateHelpers:
    def test_is_reference(self):
        assert is_reference(LOid("DB1", "x"))
        assert is_reference(GOid("g"))
        assert not is_reference("x")
        assert not is_reference(NULL)

    def test_is_primitive(self):
        assert is_primitive(1)
        assert is_primitive(1.5)
        assert is_primitive("s")
        assert is_primitive(True)
        assert not is_primitive(NULL)
        assert not is_primitive(LOid("DB1", "x"))
        assert not is_primitive(MultiValue([1]))
