"""Unit tests for execution traces and GlobalQueryEngine.explain."""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.sim.costs import CostModel
from repro.sim.taskgraph import FederationSim
from repro.sim.trace import TraceEntry, entries_from_nodes, format_timeline, phase_summary
from repro.workload.paper_example import Q1_TEXT

UNIT = CostModel(disk_s_per_byte=1.0, net_s_per_byte=1.0,
                 cpu_s_per_comparison=1.0, disk_seek_s=0.0)


def run_small_graph():
    fed = FederationSim(["A"], global_site="G", cost_model=UNIT)
    a = fed.disk("A", nbytes=2, label="read", phase="scan")
    b = fed.cpu("A", comparisons=3, label="work", phase="P", deps=[a])
    fed.transfer("A", "G", nbytes=1, label="ship", deps=[b])
    return fed.run()


class TestEntries:
    def test_entries_sorted_by_start(self):
        outcome = run_small_graph()
        entries = entries_from_nodes(outcome.scheduled)
        assert [e.label for e in entries] == ["read", "work", "ship A->G"]
        assert entries[0].start == 0.0
        assert entries[0].finish == 2.0
        assert entries[1].start == 2.0
        assert entries[2].finish == 6.0

    def test_duration(self):
        entry = TraceEntry("x", "A:cpu", "P", 1.0, 3.5)
        assert entry.duration == 2.5

    def test_outcome_keeps_nodes(self):
        outcome = run_small_graph()
        assert len(outcome.scheduled) == 3


class TestFormatting:
    def test_timeline_contains_rows(self):
        entries = entries_from_nodes(run_small_graph().scheduled)
        text = format_timeline(entries, width=20)
        assert text.count("\n") == 2
        assert "read" in text and "ship" in text
        assert "#" in text

    def test_empty_schedule(self):
        assert format_timeline([]) == "(empty schedule)"

    def test_phase_summary(self):
        entries = entries_from_nodes(run_small_graph().scheduled)
        text = phase_summary(entries)
        assert "scan" in text and "P" in text and "transfer" in text

    def test_bars_never_exceed_width(self):
        entries = entries_from_nodes(run_small_graph().scheduled)
        for line in format_timeline(entries, width=10).splitlines():
            bar = line.split("|")[1]
            assert len(bar) == 10


class TestExplain:
    def test_explain_q1(self, school):
        engine = GlobalQueryEngine(school)
        report = engine.explain(Q1_TEXT, "BL")
        assert "strategy BL" in report
        assert "1 certain, 1 maybe" in report
        assert "BL_C1 scan" in report
        assert "certify" in report
        assert "phase" in report

    def test_metrics_carry_trace(self, school):
        engine = GlobalQueryEngine(school)
        outcome = engine.execute(Q1_TEXT, "CA")
        labels = {entry.label for entry in outcome.metrics.trace}
        assert any("CA_G2" in label for label in labels)
        assert any("CA_G3" in label for label in labels)
