"""Unit tests for GOid mapping tables and the replicated catalog."""

import pytest

from repro.errors import MappingError
from repro.integration.mapping import MappingCatalog, MappingTable
from repro.objectdb.ids import GOid, LOid


def l1(v):
    return LOid("DB1", v)


def l2(v):
    return LOid("DB2", v)


class TestMappingTable:
    def test_add_and_lookup(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        table.add(GOid("g1"), l2("s1'"))
        assert table.goid_of(l1("s1")) == GOid("g1")
        assert table.loids_of(GOid("g1")) == {"DB1": l1("s1"), "DB2": l2("s1'")}
        assert table.loid_in(GOid("g1"), "DB1") == l1("s1")
        assert table.loid_in(GOid("g1"), "DB9") is None

    def test_idempotent_readd(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        table.add(GOid("g1"), l1("s1"))
        assert len(table) == 1

    def test_conflicting_loid_in_db_rejected(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        with pytest.raises(MappingError):
            table.add(GOid("g1"), l1("s2"))

    def test_loid_in_two_goids_rejected(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        with pytest.raises(MappingError):
            table.add(GOid("g2"), l1("s1"))

    def test_isomeric_objects(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        table.add(GOid("g1"), l2("s1'"))
        table.add(GOid("g2"), l1("s2"))
        assert table.isomeric_objects(l1("s1")) == [l2("s1'")]
        assert table.isomeric_objects(l1("s2")) == []
        assert table.isomeric_objects(l1("unknown")) == []

    def test_entries_and_goids(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        assert list(table.goids()) == [GOid("g1")]
        entries = dict(table.entries())
        assert entries[GOid("g1")] == {"DB1": l1("s1")}

    def test_loids_of_returns_copy(self):
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        copy = table.loids_of(GOid("g1"))
        copy["DB9"] = l1("fake")
        assert "DB9" not in table.loids_of(GOid("g1"))


class TestMappingCatalog:
    def test_table_created_on_demand(self):
        catalog = MappingCatalog()
        assert "Student" not in catalog
        table = catalog.table("Student")
        assert table.global_class == "Student"
        assert "Student" in catalog

    def test_register_replaces(self):
        catalog = MappingCatalog()
        table = MappingTable("Student")
        table.add(GOid("g1"), l1("s1"))
        catalog.register(table)
        assert catalog.goid_of("Student", l1("s1")) == GOid("g1")

    def test_assistants_of(self):
        catalog = MappingCatalog()
        table = catalog.table("Student")
        table.add(GOid("g1"), l1("s1"))
        table.add(GOid("g1"), l2("s1'"))
        assert catalog.assistants_of("Student", l1("s1")) == [l2("s1'")]

    def test_tables_iteration(self):
        catalog = MappingCatalog()
        catalog.table("A")
        catalog.table("B")
        assert {t.global_class for t in catalog.tables()} == {"A", "B"}
