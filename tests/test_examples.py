"""Smoke tests: every example script runs green and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "Hedy" in proc.stdout and "Tony" in proc.stdout
        assert "--- CA ---" in proc.stdout

    def test_school_walkthrough(self):
        proc = run_example("school_walkthrough.py")
        assert proc.returncode == 0, proc.stderr
        assert "STEP 4" in proc.stdout
        assert "promoted to certain" in proc.stdout
        assert "[('Hedy', 'Kelly')]" in proc.stdout

    def test_strategy_comparison(self):
        proc = run_example("strategy_comparison.py", "7")
        assert proc.returncode == 0, proc.stderr
        assert "PL-S" in proc.stdout
        assert "identical under every strategy" in proc.stdout

    def test_performance_study(self):
        proc = run_example("performance_study.py", "--samples", "4")
        assert proc.returncode == 0, proc.stderr
        assert "Figure 9" in proc.stdout
        assert "Figure 11" in proc.stdout
        assert "Headline observations" in proc.stdout

    def test_hospital_federation(self):
        proc = run_example("hospital_federation.py")
        assert proc.returncode == 0, proc.stderr
        assert "Ben" in proc.stdout
        assert "555-9902" in proc.stdout

    def test_federation_operations(self):
        proc = run_example("federation_operations.py")
        assert proc.returncode == 0, proc.stderr
        assert "0 error(s)" in proc.stdout
        assert "dangles" in proc.stdout
        assert "consistent=True" in proc.stdout
