"""End-to-end tests of the paper's future-work extensions.

Disjunctive (DNF) queries, multi-valued global attributes, and the
signature-filtered strategy variants — each exercised through the full
strategy pipeline with CA as the semantic oracle.
"""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.query import Op, Path, Predicate, Query
from repro.core.results import same_answers
from repro.core.system import DistributedSystem
from repro.integration.global_schema import ClassCorrespondence
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, primitive
from repro.objectdb.values import MultiValue, NULL
from repro.workload.paper_example import build_school_federation


ALL = ("CA", "BL", "PL", "BL-S", "PL-S")


class TestDisjunctiveQueries:
    """DNF Where clauses over the school federation."""

    def query(self):
        return Query.disjunctive(
            "Student",
            ["name"],
            [
                [Predicate.of("address.city", "=", "Taipei")],
                [Predicate.of("advisor.speciality", "=", "network")],
            ],
        )

    @pytest.mark.parametrize("name", ALL)
    def test_strategies_agree(self, school, name):
        engine = GlobalQueryEngine(school)
        ca = engine.execute(self.query(), "CA")
        other = engine.execute(self.query(), name)
        assert same_answers(ca.results, other.results)

    def test_semantics(self, school):
        engine = GlobalQueryEngine(school)
        outcome = engine.execute(self.query(), "CA")
        certain_names = {r.bindings[Path.parse("name")] for r in outcome.results.certain}
        # Hedy and Fanny live in Taipei (certain via first disjunct);
        # John's advisor Jeffery specializes in network (second disjunct).
        assert certain_names == {"Hedy", "Fanny", "John"}
        maybe_names = {r.bindings[Path.parse("name")] for r in outcome.results.maybe}
        # Tony: address null and advisor Haley's speciality null -> maybe.
        # Mary: address null and advisor Abel's speciality null -> maybe.
        assert maybe_names == {"Tony", "Mary"}

    def test_mixed_conjunct_disjunct(self, school):
        query = Query.disjunctive(
            "Student",
            ["name"],
            [
                [
                    Predicate.of("address.city", "=", "Taipei"),
                    Predicate.of("sex", "=", "female"),
                ],
                [Predicate.of("age", ">", 30)],
            ],
        )
        engine = GlobalQueryEngine(school)
        outcomes = engine.compare(query, strategies=list(ALL))
        ca = outcomes["CA"].results
        certain_names = {r.bindings[Path.parse("name")] for r in ca.certain}
        # Hedy, Fanny: Taipei + female.  John: age 31.
        assert certain_names == {"Hedy", "Fanny", "John"}

    def test_true_disjunct_certain_despite_unknown_other(self, school):
        """An entity certain via one disjunct ignores missing data in the
        other (UNKNOWN OR TRUE = TRUE)."""
        query = Query.disjunctive(
            "Student",
            ["name"],
            [
                [Predicate.of("name", "=", "Tony")],
                [Predicate.of("address.city", "=", "Nowhere")],
            ],
        )
        engine = GlobalQueryEngine(school)
        outcomes = engine.compare(query, strategies=list(ALL))
        certain = {
            r.bindings[Path.parse("name")]
            for r in outcomes["CA"].results.certain
        }
        assert "Tony" in certain
        assert not any(
            r.bindings[Path.parse("name")] == "Tony"
            for r in outcomes["CA"].results.maybe
        )


def multi_valued_federation():
    """Two sites storing different phone numbers for the same person."""
    dbs = []
    for name, phone, has_mail in (("DB1", "111", True), ("DB2", "222", False)):
        attrs = [primitive("ssn"), primitive("phone")]
        if has_mail:
            attrs.append(primitive("mail"))
        schema = ComponentSchema.of(name, [ClassDef.of("Person", attrs)])
        db = ComponentDatabase(schema)
        values = {"ssn": 1, "phone": phone}
        if has_mail:
            values["mail"] = "a@b"
        db.insert(LocalObject(LOid(name, "p1"), "Person", values))
        db.insert(
            LocalObject(
                LOid(name, "p2"), "Person", {"ssn": 2 if name == "DB1" else 3,
                                             "phone": "999"}
            )
        )
        dbs.append(db)
    return DistributedSystem.build(
        dbs,
        [
            ClassCorrespondence.of(
                "Person",
                [("DB1", "Person"), ("DB2", "Person")],
                "ssn",
                multi_valued_attributes=["phone"],
            )
        ],
    )


class TestMultiValuedAttributes:
    def test_contains_query(self):
        system = multi_valued_federation()
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive(
            "Person", ["ssn", "phone"],
            [Predicate.of("phone", "contains", "222")],
        )
        outcome = engine.execute(query, "CA")
        assert len(outcome.results.certain) == 1
        person = outcome.results.certain[0]
        assert person.bindings[Path.parse("phone")] == MultiValue(["111", "222"])

    def test_equality_is_existential(self):
        system = multi_valued_federation()
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive(
            "Person", ["ssn"], [Predicate.of("phone", "=", "111")]
        )
        outcome = engine.execute(query, "CA")
        assert len(outcome.results.certain) == 1

    def test_localized_agree_on_multivalue(self):
        system = multi_valued_federation()
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive(
            "Person", ["ssn"], [Predicate.of("phone", "=", "999")]
        )
        outcomes = engine.compare(query)
        assert len(outcomes["CA"].results.certain) == 2

    def test_missing_attr_with_multivalue(self):
        system = multi_valued_federation()
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive(
            "Person", ["ssn"], [Predicate.of("mail", "=", "a@b")]
        )
        outcomes = engine.compare(query)
        ca = outcomes["CA"].results
        # Person 1 has mail at DB1 -> certain; persons 2/3 never have
        # mail anywhere -> maybe.
        assert len(ca.certain) == 1
        assert len(ca.maybe) == 2


class TestSignatureVariants:
    def test_signature_catalog_built_on_demand(self, school):
        engine = GlobalQueryEngine(school)
        assert school.signatures is None
        engine.execute(
            Query.conjunctive(
                "Student", ["name"],
                [Predicate.of("advisor.speciality", "=", "database")],
            ),
            "BL-S",
        )
        assert school.signatures is not None

    def test_signature_verdict_eliminates_without_transfer(self, school):
        """t2' (Jeffery, network) provably violates speciality=database in
        the replicated signatures — no check request reaches DB2."""
        school.build_signatures()
        engine = GlobalQueryEngine(school)
        query = Query.conjunctive(
            "Student", ["name"],
            [Predicate.of("advisor.speciality", "=", "database")],
        )
        plain = engine.execute(query, "BL")
        signed = engine.execute(query, "BL-S")
        assert same_answers(plain.results, signed.results)
        assert (
            signed.metrics.work.assistants_checked
            <= plain.metrics.work.assistants_checked
        )
