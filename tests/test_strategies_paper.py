"""End-to-end reproduction of the paper's running example (Sections 2-3).

Every assertion here corresponds to a statement in the paper's text:
Q1's certain and maybe answers, the content of the local results R1/R2,
which assistant objects are checked where, and which unsolved items are
eliminated.
"""

import pytest

from repro.core.decompose import decompose
from repro.core.query import Path, Predicate
from repro.core.results import same_answers
from repro.core.strategies import plan_dispatch, strategy_by_name
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.local_query import RowKind
from repro.sqlx import parse_query
from repro.workload.paper_example import Q1_TEXT, expected_q1_answers


ALL = ("CA", "BL", "PL", "BL-S", "PL-S")


class TestQ1Answers:
    @pytest.mark.parametrize("name", ALL)
    def test_answers_match_paper(self, school_engine, name):
        outcome = school_engine.execute(Q1_TEXT, strategy=name)
        expected = expected_q1_answers()
        assert tuple(outcome.results.certain_rows()) == expected["certain"]
        assert tuple(outcome.results.maybe_rows()) == expected["maybe"]

    def test_identities(self, school_engine):
        outcome = school_engine.execute(Q1_TEXT, strategy="BL")
        assert outcome.results.certain[0].goid == GOid("gs4")   # Hedy
        assert outcome.results.maybe[0].goid == GOid("gs2")     # Tony

    def test_tony_unsolved_predicates(self, school_engine):
        """Tony stays maybe 'because of the null values in address of
        Tony and speciality of Haley'."""
        outcome = school_engine.execute(Q1_TEXT, strategy="BL")
        tony = outcome.results.maybe[0]
        assert {str(p) for p in tony.unsolved} == {
            "address.city = 'Taipei'",
            "advisor.speciality = 'database'",
        }

    def test_all_strategies_agree(self, school_engine):
        outcomes = school_engine.compare(Q1_TEXT, strategies=list(ALL))
        baseline = outcomes["CA"].results
        for name in ALL[1:]:
            assert same_answers(baseline, outcomes[name].results)


class TestLocalResultsNarrative:
    """Figure 7: the local results R1 (DB1) and R2 (DB2) for Q1."""

    @pytest.fixture()
    def local_results(self, school):
        query = parse_query(Q1_TEXT)
        decomposed = decompose(query, school.global_schema)
        return {
            db: school.db(db).execute_local(lq)
            for db, lq in decomposed.local_queries.items()
        }

    def test_r1_rows(self, local_results):
        """R1: (s1, John), (s2, Tony), (s3, Mary) — all maybe."""
        r1 = local_results["DB1"]
        assert {row.loid.value for row in r1.rows} == {"s1", "s2", "s3"}
        assert all(row.kind is RowKind.MAYBE for row in r1.rows)

    def test_r1_bindings(self, local_results):
        r1 = local_results["DB1"]
        name = Path.parse("name")
        advisor_name = Path.parse("advisor.name")
        by_loid = {row.loid.value: row for row in r1.rows}
        assert by_loid["s1"].bindings[name] == "John"
        assert by_loid["s1"].bindings[advisor_name] == "Jeffery"
        assert by_loid["s2"].bindings[advisor_name] == "Haley"
        assert by_loid["s3"].bindings[advisor_name] == "Abel"

    def test_r1_unsolved_structure(self, local_results):
        """All R1 rows have unsolved address + advisor.speciality items;
        s3 additionally has an unsolved department predicate on t2."""
        r1 = local_results["DB1"]
        by_loid = {row.loid.value: row for row in r1.rows}
        for value in ("s1", "s2", "s3"):
            row = by_loid[value]
            assert any(
                u.original.path == Path.parse("address.city")
                for u in row.unsolved
            )
        s1_items = {i.loid.value: i for i in by_loid["s1"].unsolved_items}
        assert set(s1_items) == {"t1"}
        s3_items = {i.loid.value: i for i in by_loid["s3"].unsolved_items}
        assert set(s3_items) == {"t2"}
        s3_preds = {str(u.relative_predicate) for u in s3_items["t2"].unsolved}
        assert s3_preds == {
            "speciality = 'database'",
            "department.name = 'CS'",
        }

    def test_r2_rows(self, local_results):
        """R2: only (s1', Hedy) survives; John fails the city predicate,
        Fanny fails the speciality predicate."""
        r2 = local_results["DB2"]
        assert [row.loid.value for row in r2.rows] == ["s1'"]
        hedy = r2.rows[0]
        assert hedy.kind is RowKind.MAYBE
        items = {i.loid.value: i for i in hedy.unsolved_items}
        assert set(items) == {"t1'"}
        assert {str(u.relative_predicate) for u in items["t1'"].unsolved} == {
            "department.name = 'CS'"
        }


class TestAssistantDispatchNarrative:
    """Section 2.3: which assistants go where, with which predicates."""

    def dispatch_for(self, school, db_name):
        query = parse_query(Q1_TEXT)
        decomposed = decompose(query, school.global_schema)
        result = school.db(db_name).execute_local(
            decomposed.local_queries[db_name]
        )
        items = [i for row in result.maybe_rows for i in row.unsolved_items]
        return plan_dispatch(db_name, items, school)

    def test_db1_sends_t2prime_to_db2(self, school):
        """'the assistant object of t1, t2', is sent to DB2 with the
        predicate speciality=database'."""
        plan = self.dispatch_for(school, "DB1")
        to_db2 = [r for r in plan.requests if r.db_name == "DB2"]
        assert len(to_db2) == 1
        assert to_db2[0].loids == (LOid("DB2", "t2'"),)
        assert [str(p) for p in to_db2[0].predicates] == ["speciality = 'database'"]

    def test_db1_sends_t1doubleprime_to_db3(self, school):
        """'t1'' is sent to DB3 for the unsolved item t2 with the
        predicate on department' — and speciality is NOT sent ('no
        assistant object can provide the data of attribute speciality
        for object t2')."""
        plan = self.dispatch_for(school, "DB1")
        to_db3 = [r for r in plan.requests if r.db_name == "DB3"]
        assert len(to_db3) == 1
        assert to_db3[0].loids == (LOid("DB3", 't1"'),)
        assert [str(p) for p in to_db3[0].predicates] == [
            "department.name = 'CS'"
        ]

    def test_db2_sends_t2doubleprime_to_db3(self, school):
        """R2's unsolved item t1' is certified through t2''@DB3."""
        plan = self.dispatch_for(school, "DB2")
        to_db3 = [r for r in plan.requests if r.db_name == "DB3"]
        assert len(to_db3) == 1
        assert to_db3[0].loids == (LOid("DB3", 't2"'),)


class TestEliminationNarrative:
    """Section 2.3's post-certification eliminations."""

    def test_john_eliminated_by_absence(self, school_engine):
        """'the unsolved maybe result s1 is eliminated because its
        assistant objects are not obtained in the local results from
        DB2.'"""
        outcome = school_engine.execute(Q1_TEXT, strategy="BL")
        assert outcome.results.find(GOid("gs1")) is None

    def test_mary_eliminated_by_violation(self, school_engine):
        """t1''(Abel, EE) violates department.name=CS -> s3 eliminated."""
        outcome = school_engine.execute(Q1_TEXT, strategy="BL")
        assert outcome.results.find(GOid("gs3")) is None

    def test_fanny_eliminated_locally(self, school_engine):
        outcome = school_engine.execute(Q1_TEXT, strategy="BL")
        assert outcome.results.find(GOid("gs5")) is None

    def test_hedy_promoted_by_assistant(self, school_engine):
        """t2''@DB3 satisfies the department predicate -> Hedy certain."""
        outcome = school_engine.execute(Q1_TEXT, strategy="BL")
        hedy = outcome.results.find(GOid("gs4"))
        assert hedy is not None and hedy.is_certain


class TestDiscoveredCatalogEquivalence:
    def test_same_answers_with_discovered_isomerism(self, discovered_school):
        from repro.core.engine import GlobalQueryEngine

        engine = GlobalQueryEngine(discovered_school)
        outcome = engine.execute(Q1_TEXT, strategy="BL")
        expected = expected_q1_answers()
        assert tuple(outcome.results.certain_rows()) == expected["certain"]
        assert tuple(outcome.results.maybe_rows()) == expected["maybe"]


class TestMetricsSanity:
    @pytest.mark.parametrize("name", ALL)
    def test_times_positive_and_consistent(self, school_engine, name):
        outcome = school_engine.execute(Q1_TEXT, strategy=name)
        metrics = outcome.metrics
        assert metrics.total_time > 0
        assert 0 < metrics.response_time <= metrics.total_time
        assert metrics.certain_results == 1
        assert metrics.maybe_results == 1

    def test_localized_response_beats_centralized(self, school_engine):
        outcomes = school_engine.compare(Q1_TEXT)
        assert outcomes["BL"].response_time < outcomes["CA"].response_time * 2

    def test_signatures_reduce_network(self, school_engine):
        plain = school_engine.execute(Q1_TEXT, strategy="BL")
        signed = school_engine.execute(Q1_TEXT, strategy="BL-S")
        assert (
            signed.metrics.work.bytes_network
            <= plain.metrics.work.bytes_network
        )
        assert signed.metrics.work.signature_comparisons > 0


class TestDispatchGrouping:
    def test_same_target_requests_merge_loids(self, school):
        """Two unsolved items whose assistants live at one site with the
        same predicates travel in a single check request."""
        from repro.core.query import Path, Predicate
        from repro.core.strategies import plan_dispatch
        from repro.objectdb.ids import LOid
        from repro.objectdb.local_query import (
            UnsolvedItem,
            UnsolvedPredicateOnObject,
        )

        pred = Predicate.of("speciality", "=", "database")
        up = UnsolvedPredicateOnObject(
            original=Predicate.of("advisor.speciality", "=", "database"),
            relative_path=Path.parse("speciality"),
        )
        items = [
            UnsolvedItem(
                loid=LOid("DB1", "t1"), class_name="Teacher",
                reached_via=Path.parse("advisor"), unsolved=(up,),
            ),
            UnsolvedItem(
                loid=LOid("DB1", "t2"), class_name="Teacher",
                reached_via=Path.parse("advisor"), unsolved=(up,),
            ),
        ]
        plan = plan_dispatch("DB1", items, school)
        # t1's assistant t2' lives at DB2 (which defines speciality);
        # t2's only assistant t1''@DB3 cannot answer speciality (DB3's
        # Teacher lacks it), so nothing is dispatched for t2 — exactly
        # the paper's "no assistant object can provide the data".
        assert len(plan.requests) == 1
        request = plan.requests[0]
        assert request.db_name == "DB2"
        assert set(request.loids) == {LOid("DB2", "t2'")}

    def test_duplicate_items_dedupe_assistants(self, school):
        from repro.core.query import Path, Predicate
        from repro.core.strategies import plan_dispatch
        from repro.objectdb.ids import LOid
        from repro.objectdb.local_query import (
            UnsolvedItem,
            UnsolvedPredicateOnObject,
        )

        up = UnsolvedPredicateOnObject(
            original=Predicate.of("advisor.speciality", "=", "database"),
            relative_path=Path.parse("speciality"),
        )
        item = UnsolvedItem(
            loid=LOid("DB1", "t1"), class_name="Teacher",
            reached_via=Path.parse("advisor"), unsolved=(up,),
        )
        plan = plan_dispatch("DB1", [item, item], school)
        for request in plan.requests:
            assert len(request.loids) == len(set(request.loids))
            assert len(request.loids) == 1
