"""Round-trip tests for federation serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers
from repro.errors import ObjectStoreError
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.serialize import (
    decode_value,
    encode_value,
    federation_from_dict,
    federation_to_dict,
    load_federation,
    save_federation,
)
from repro.objectdb.values import MultiValue, NULL
from repro.workload.paper_example import Q1_TEXT, build_school_federation


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            NULL,
            1,
            2.5,
            "text",
            True,
            LOid("DB1", "s1"),
            GOid("gs1"),
            MultiValue([1, 2]),
            MultiValue([LOid("DB1", "x"), "y"]),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_json_compatible(self):
        encoded = encode_value(MultiValue([NULL, 1, LOid("A", "b")]))
        json.dumps(encoded)  # must not raise

    @given(st.recursive(
        st.one_of(st.integers(), st.text(max_size=6), st.booleans()),
        lambda children: st.lists(children, max_size=3).map(MultiValue),
        max_leaves=6,
    ))
    def test_roundtrip_property(self, value):
        assert decode_value(encode_value(value)) == value

    def test_unknown_tag_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_value({"$wat": 1})

    def test_unserializable_rejected(self):
        with pytest.raises(ObjectStoreError):
            encode_value(object())


class TestFederationRoundTrip:
    def test_school_roundtrip_dict(self):
        original = build_school_federation()
        rebuilt = federation_from_dict(federation_to_dict(original))
        # Same schemas.
        assert set(rebuilt.databases) == set(original.databases)
        for name in original.databases:
            assert (
                rebuilt.db(name).schema.class_names
                == original.db(name).schema.class_names
            )
        # Same extents.
        for name, db in original.databases.items():
            for class_name in db.schema.class_names:
                left = {
                    l.value: o.values for l, o in db.extent(class_name).items()
                }
                right = {
                    l.value: o.values
                    for l, o in rebuilt.db(name).extent(class_name).items()
                }
                assert left == right
        # Same catalog.
        for table in original.catalog.tables():
            rebuilt_table = rebuilt.catalog.table(table.global_class)
            assert dict(rebuilt_table.entries()) == dict(table.entries())

    def test_answers_survive_roundtrip(self):
        original = build_school_federation()
        rebuilt = federation_from_dict(federation_to_dict(original))
        a = GlobalQueryEngine(original).execute(Q1_TEXT, "BL")
        b = GlobalQueryEngine(rebuilt).execute(Q1_TEXT, "BL")
        assert same_answers(a.results, b.results)
        assert a.total_time == b.total_time

    def test_generated_workload_roundtrip(self):
        workload = make_workload(seed=303, scale=0.02)
        rebuilt = federation_from_dict(federation_to_dict(workload.system))
        a = GlobalQueryEngine(workload.system).execute(workload.query, "PL")
        b = GlobalQueryEngine(rebuilt).execute(workload.query, "PL")
        assert same_answers(a.results, b.results)

    def test_file_roundtrip(self, tmp_path):
        original = build_school_federation()
        path = tmp_path / "school.json"
        save_federation(original, str(path))
        rebuilt = load_federation(str(path))
        a = GlobalQueryEngine(original).execute(Q1_TEXT, "CA")
        b = GlobalQueryEngine(rebuilt).execute(Q1_TEXT, "CA")
        assert same_answers(a.results, b.results)

    def test_version_guard(self):
        raw = federation_to_dict(build_school_federation())
        raw["format"] = 999
        with pytest.raises(ObjectStoreError):
            federation_from_dict(raw)
