"""Unit tests for the concrete workload generator."""

import random

import pytest

from helpers import make_workload
from repro.errors import WorkloadError
from repro.integration.isomerism import isomerism_ratio
from repro.objectdb.values import NULL, is_null
from repro.workload.generator import REPLICA_PROBABILITY, VALUE_DOMAIN, build_query, generate
from repro.workload.params import sample_params


@pytest.fixture(scope="module")
def workload():
    return make_workload(seed=13, scale=0.05)


class TestStructure:
    def test_databases_match_params(self, workload):
        assert set(workload.system.databases) == set(workload.params.db_names)

    def test_every_class_everywhere(self, workload):
        for db in workload.system.databases.values():
            assert len(db.schema.class_names) == workload.params.n_classes

    def test_object_counts_scale(self, workload):
        params = workload.params
        for db_name, db in workload.system.databases.items():
            # Placement is randomized; the per-class copies should land in
            # the same order of magnitude as N_o * scale.
            for k in range(params.n_classes):
                expected = params.classes[k].per_db[db_name].n_objects * 0.05
                actual = db.count(f"K{k+1}")
                assert 0.4 * expected <= actual <= 1.8 * expected

    def test_every_predicate_attr_defined_somewhere(self, workload):
        params = workload.params
        gs = workload.system.global_schema
        for k, cls in enumerate(params.classes):
            global_cls = gs.cls(f"K{k+1}")
            for j in range(cls.n_predicates):
                assert global_cls.has_attribute(f"p{j}")

    def test_query_validates(self, workload):
        workload.query.validate(workload.system.global_schema.schema)


class TestConsistency:
    def test_isomeric_copies_share_values(self, workload):
        """Copies of one entity never disagree on a non-null attribute."""
        system = workload.system
        for table in system.catalog.tables():
            for _goid, row in table.entries():
                if len(row) < 2:
                    continue
                objs = [system.db(db).get(loid) for db, loid in row.items()]
                attrs = set().union(*(o.values.keys() for o in objs))
                for attr in attrs - {"ref"}:
                    non_null = {
                        o.get(attr) for o in objs if not is_null(o.get(attr))
                    }
                    assert len(non_null) <= 1, (attr, row)

    def test_refs_point_to_same_entity(self, workload):
        """Copies' refs resolve (when non-null) to isomeric objects."""
        system = workload.system
        params = workload.params
        for k in range(params.n_classes - 1):
            table_next = system.catalog.table(f"K{k+2}")
            for _goid, row in system.catalog.table(f"K{k+1}").entries():
                goids = set()
                for db, loid in row.items():
                    ref = system.db(db).get(loid).get("ref")
                    if not is_null(ref):
                        goids.add(table_next.goid_of(ref))
                assert len(goids) <= 1

    def test_refs_are_local(self, workload):
        for db_name, db in workload.system.databases.items():
            for k in range(workload.params.n_classes - 1):
                for obj in db.extent(f"K{k+1}").values():
                    ref = obj.get("ref")
                    if not is_null(ref):
                        assert ref.db == db_name
                        assert db.get(ref) is not None


class TestIsomerismStatistics:
    def test_ratio_near_law(self):
        workload = make_workload(seed=77, scale=0.3, n_classes_range=(1, 1))
        table = workload.system.catalog.table("K1")
        expected = 1 - (1 - REPLICA_PROBABILITY) ** (workload.params.n_dbs - 1)
        assert isomerism_ratio(table) == pytest.approx(expected, abs=0.06)


class TestQueryShape:
    def test_predicate_operands_in_domain(self):
        from repro.core.query import Op

        rng = random.Random(5)
        params = sample_params(rng)
        query = build_query(params)
        for pred in query.all_predicates():
            if pred.op is Op.EQ:
                assert pred.operand == 0  # category-0 equality
            else:
                assert pred.op is Op.LT
                assert 0 < pred.operand < VALUE_DOMAIN

    def test_realized_selectivity_near_r_ps(self):
        """The surviving fraction of a predicate-complete site tracks the
        Table 2 selectivity law within sampling noise."""
        workload = make_workload(
            seed=99, scale=0.4, n_classes_range=(1, 1),
            n_predicates_range=(1, 1), local_pred_attr_bias=1.0,
            r_missing_range=(0.0, 0.0),
        )
        params = workload.params
        expected = params.classes[0].predicate_selectivity
        from repro.core.engine import GlobalQueryEngine

        engine = GlobalQueryEngine(workload.system)
        outcome = engine.execute(workload.query, "CA")
        total = sum(
            len(table.loids_of(g)) > 0
            for table in [workload.system.catalog.table("K1")]
            for g in table.goids()
        )
        fraction = len(outcome.results.certain) / total
        # EQ predicates realize 1/round(1/sel); allow generous noise.
        assert 0.5 * expected <= fraction <= 1.6 * expected

    def test_targets_cover_chain(self):
        rng = random.Random(6)
        params = sample_params(rng, n_classes_range=(3, 3))
        query = build_query(params)
        target_strs = {str(t) for t in query.targets}
        assert {"key", "t0", "ref.t0", "ref.ref.t0"} <= target_strs


class TestErrors:
    def test_zero_scale_rejected(self):
        rng = random.Random(0)
        params = sample_params(rng)
        with pytest.raises(WorkloadError):
            generate(params, scale=0)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_workload(seed=9, scale=0.02)
        b = make_workload(seed=9, scale=0.02)
        for db_name in a.system.databases:
            ea = a.system.db(db_name).extent("K1")
            eb = b.system.db(db_name).extent("K1")
            assert {l: o.values for l, o in ea.items()} == {
                l: o.values for l, o in eb.items()
            }
