"""Property-based end-to-end test: strategy equivalence over random seeds.

Hypothesis drives the workload generator with arbitrary seeds and knob
settings; for every generated federation the five strategies must return
identical certain and maybe sets.  This is the repository's strongest
single property — it exercises decomposition, 3VL evaluation, dispatch,
chase rounds, signatures and certification together.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_dbs=st.integers(min_value=2, max_value=4),
    n_classes=st.integers(min_value=1, max_value=3),
)
def test_all_strategies_equivalent(seed, n_dbs, n_classes):
    workload = make_workload(
        seed=seed,
        scale=0.012,
        n_dbs=n_dbs,
        n_classes_range=(n_classes, n_classes),
    )
    engine = GlobalQueryEngine(workload.system)
    baseline = engine.execute(workload.query, "CA")
    for name in ("BL", "PL", "BL-S", "PL-S"):
        outcome = engine.execute(workload.query, name)
        assert same_answers(baseline.results, outcome.results), (
            f"{name} disagrees with CA for seed={seed} n_dbs={n_dbs} "
            f"n_classes={n_classes}: {baseline.results.summary()} vs "
            f"{outcome.results.summary()}"
        )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_answer_is_deterministic_function_of_data(seed):
    """Same seed -> same answer, independent of strategy or run."""
    first = make_workload(seed=seed, scale=0.012)
    second = make_workload(seed=seed, scale=0.012)
    a = GlobalQueryEngine(first.system).execute(first.query, "PL")
    b = GlobalQueryEngine(second.system).execute(second.query, "BL")
    assert same_answers(a.results, b.results)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_certain_plus_maybe_bounded_by_entities(seed):
    workload = make_workload(seed=seed, scale=0.012)
    engine = GlobalQueryEngine(workload.system)
    outcome = engine.execute(workload.query, "CA")
    assert len(outcome.results) <= workload.entities_per_class[0]
