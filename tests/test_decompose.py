"""Unit tests for query decomposition and missing-depth computation."""

import pytest

from repro.core.decompose import attributes_needed, decompose, missing_depth
from repro.core.query import Path, Predicate, Query
from repro.errors import QueryError
from repro.sqlx import parse_query
from repro.workload.paper_example import Q1_TEXT


class TestMissingDepth:
    def test_fully_local(self, school):
        gs = school.global_schema
        assert missing_depth(gs, "DB1", "Student",
                             Path.parse("advisor.department.name")) is None
        assert missing_depth(gs, "DB2", "Student",
                             Path.parse("address.city")) is None

    def test_missing_on_root(self, school):
        gs = school.global_schema
        # Student@DB1 has no address.
        assert missing_depth(gs, "DB1", "Student",
                             Path.parse("address.city")) == 0

    def test_missing_on_branch(self, school):
        gs = school.global_schema
        # Teacher@DB1 has no speciality.
        assert missing_depth(gs, "DB1", "Student",
                             Path.parse("advisor.speciality")) == 1
        # Teacher@DB2 has no department.
        assert missing_depth(gs, "DB2", "Student",
                             Path.parse("advisor.department.name")) == 1

    def test_absent_class_truncates(self, school):
        gs = school.global_schema
        # DB1 integrates Department without location.
        assert missing_depth(gs, "DB1", "Student",
                             Path.parse("advisor.department.location")) == 2

    def test_site_without_root_constituent_raises(self, school):
        gs = school.global_schema
        with pytest.raises(QueryError):
            missing_depth(gs, "DB3", "Student", Path.parse("name"))


class TestDecomposeQ1:
    """The decomposition reproduces the paper's Q1' and Q1'' (Figure 3b)."""

    @pytest.fixture()
    def decomposed(self, school):
        return decompose(parse_query(Q1_TEXT), school.global_schema)

    def test_only_root_sites_queried(self, decomposed):
        # DB3 has no Student constituent.
        assert set(decomposed.databases) == {"DB1", "DB2"}

    def test_q1_prime_for_db1(self, decomposed):
        """Q1': only the department predicate is local at DB1."""
        lq = decomposed.local_queries["DB1"]
        assert lq.range_class == "Student"
        assert [str(p) for p in lq.local_predicates] == [
            "advisor.department.name = 'CS'"
        ]
        removed = {str(r.predicate): r.missing_depth for r in lq.removed}
        assert removed == {
            "address.city = 'Taipei'": 0,
            "advisor.speciality = 'database'": 1,
        }

    def test_q1_doubleprime_for_db2(self, decomposed):
        """Q1'': address and speciality predicates are local at DB2."""
        lq = decomposed.local_queries["DB2"]
        assert {str(p) for p in lq.local_predicates} == {
            "address.city = 'Taipei'",
            "advisor.speciality = 'database'",
        }
        removed = {str(r.predicate): r.missing_depth for r in lq.removed}
        assert removed == {"advisor.department.name = 'CS'": 1}

    def test_targets_preserved(self, decomposed):
        for lq in decomposed.local_queries.values():
            assert lq.targets == (Path.parse("name"), Path.parse("advisor.name"))

    def test_removed_by_conjunct_aligned(self, decomposed):
        lq = decomposed.local_queries["DB1"]
        assert len(lq.removed_by_conjunct) == len(lq.where) == 1
        assert len(lq.removed_by_conjunct[0]) == 2


class TestDecomposeDnf:
    def test_per_conjunct_removal(self, school):
        query = Query.disjunctive(
            "Student",
            ["name"],
            [
                [Predicate.of("address.city", "=", "Taipei")],
                [Predicate.of("name", "=", "Tony")],
            ],
        )
        lq = decompose(query, school.global_schema).local_queries["DB1"]
        assert lq.where == ((), (Predicate.of("name", "=", "Tony"),))
        assert lq.removed_by_conjunct == (
            (Predicate.of("address.city", "=", "Taipei"),), (),
        )

    def test_duplicate_predicate_recorded_once(self, school):
        shared = Predicate.of("address.city", "=", "Taipei")
        query = Query.disjunctive(
            "Student", ["name"],
            [[shared, Predicate.of("name", "=", "A")],
             [shared, Predicate.of("name", "=", "B")]],
        )
        lq = decompose(query, school.global_schema).local_queries["DB1"]
        assert len(lq.removed) == 1


class TestAttributesNeeded:
    def test_q1_needs(self, school):
        query = parse_query(Q1_TEXT)
        gs = school.global_schema
        assert set(attributes_needed(query, gs, "Student")) == {
            "name", "address", "advisor", "s-no",
        }
        assert set(attributes_needed(query, gs, "Teacher")) == {
            "name", "speciality", "department",
        }
        assert set(attributes_needed(query, gs, "Department")) == {"name"}
        assert set(attributes_needed(query, gs, "Address")) == {"city"}

    def test_key_always_included(self, school):
        query = Query.conjunctive("Student", ["name"])
        needed = attributes_needed(query, school.global_schema, "Student")
        assert "s-no" in needed
