"""Tests for multi-hop chase rounds (the blocked-check completion).

A hand-built three-site federation where the data needed by a nested
predicate is spread across a reference chain no single-hop check can
follow:

* DB1 stores the root object ``a`` with ``ref`` pointing at ``b1`` whose
  onward ``ref`` is NULL (missing data);
* DB2 stores ``b``'s isomeric copy ``b2`` with ``ref -> c2``, but ``c``'s
  payload attribute is missing at DB2;
* DB3 stores ``c``'s isomeric copy ``c3`` holding the payload value.

CA assembles the chain by integration; BL/PL must chase: check b2 at DB2
(blocked at c2), then check c3 at DB3.
"""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.query import Predicate, Query
from repro.core.results import same_answers
from repro.core.system import DistributedSystem
from repro.integration.global_schema import ClassCorrespondence
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import NULL


def build_chain_federation(payload_value: int) -> DistributedSystem:
    """Three sites, classes A -> B -> C, data split as described above."""

    def db(name, classes):
        return ComponentDatabase(ComponentSchema.of(name, classes))

    a_cls = ClassDef.of("A", [primitive("k"), complex_attr("ref", "B")])
    b_full = ClassDef.of("B", [primitive("k"), complex_attr("ref", "C")])
    c_bare = ClassDef.of("C", [primitive("k")])
    c_full = ClassDef.of("C", [primitive("k"), primitive("x")])

    db1 = db("DB1", [a_cls, b_full, c_bare])
    db2 = db("DB2", [a_cls, b_full, c_bare])
    db3 = db("DB3", [a_cls, b_full, c_full])

    # DB1: root a1 -> b1 (ref NULL beyond).
    db1.insert(LocalObject(LOid("DB1", "b1"), "B", {"k": 20, "ref": NULL}))
    db1.insert(
        LocalObject(LOid("DB1", "a1"), "A", {"k": 10, "ref": LOid("DB1", "b1")})
    )
    # DB2: b's copy b2 -> c2 (x missing at DB2: class C lacks it there).
    db2.insert(LocalObject(LOid("DB2", "c2"), "C", {"k": 30}))
    db2.insert(
        LocalObject(LOid("DB2", "b2"), "B", {"k": 20, "ref": LOid("DB2", "c2")})
    )
    # DB3: c's copy c3 holds the payload.
    db3.insert(LocalObject(LOid("DB3", "c3"), "C", {"k": 30, "x": payload_value}))

    return DistributedSystem.build(
        [db1, db2, db3],
        [
            ClassCorrespondence.of(
                "A", [("DB1", "A"), ("DB2", "A"), ("DB3", "A")], "k"
            ),
            ClassCorrespondence.of(
                "B", [("DB1", "B"), ("DB2", "B"), ("DB3", "B")], "k"
            ),
            ClassCorrespondence.of(
                "C", [("DB1", "C"), ("DB2", "C"), ("DB3", "C")], "k"
            ),
        ],
    )


QUERY = Query.conjunctive("A", ["k"], [Predicate.of("ref.ref.x", "=", 7)])


class TestChaseResolution:
    @pytest.mark.parametrize("strategy", ["BL", "PL", "BL-S", "PL-S"])
    def test_satisfying_chain_promotes(self, strategy):
        system = build_chain_federation(payload_value=7)
        engine = GlobalQueryEngine(system)
        ca = engine.execute(QUERY, "CA")
        assert len(ca.results.certain) == 1  # CA assembles the chain
        localized = engine.execute(QUERY, strategy)
        assert same_answers(ca.results, localized.results)

    @pytest.mark.parametrize("strategy", ["BL", "PL"])
    def test_violating_chain_eliminates(self, strategy):
        system = build_chain_federation(payload_value=99)
        engine = GlobalQueryEngine(system)
        ca = engine.execute(QUERY, "CA")
        assert len(ca.results) == 0
        localized = engine.execute(QUERY, strategy)
        assert same_answers(ca.results, localized.results)

    def test_chase_costs_accounted(self):
        system = build_chain_federation(payload_value=7)
        engine = GlobalQueryEngine(system)
        outcome = engine.execute(QUERY, "BL")
        # Chase rounds touched DB2 (b2) and DB3 (c3).
        assert outcome.metrics.work.assistants_checked >= 2

    def test_without_chain_data_stays_maybe(self):
        """If DB3's copy also lacked the payload, everyone stays maybe."""
        system = build_chain_federation(payload_value=7)
        # Null out the payload at DB3.
        c3 = system.db("DB3").get(LOid("DB3", "c3"))
        c3.values["x"] = NULL
        engine = GlobalQueryEngine(system)
        outcomes = engine.compare(QUERY)
        assert len(outcomes["CA"].results.maybe) == 1
        assert len(outcomes["CA"].results.certain) == 0


class TestChaseUnit:
    def test_chase_rounds_bounded_by_path_length(self):
        from repro.core.certification import VerdictIndex
        from repro.core.strategies.base import chase_blocked
        from repro.objectdb.local_query import CheckRequest

        system = build_chain_federation(payload_value=7)
        # Kick off with a manually issued blocked check: ask DB2 about b2.
        report = system.db("DB2").check_assistants(
            CheckRequest(
                db_name="DB2",
                class_name="B",
                loids=(LOid("DB2", "b2"),),
                predicates=(Predicate.of("ref.x", "=", 7),),
            )
        )
        assert report.blocked  # stuck at c2
        verdicts = VerdictIndex()
        rounds = chase_blocked([report], system, verdicts, max_rounds=3)
        assert 1 <= len(rounds) <= 3
        assert (
            verdicts.get(LOid("DB2", "b2"), Predicate.of("ref.x", "=", 7))
            == "satisfied"
        )

    def test_zero_max_rounds_noop(self):
        from repro.core.certification import VerdictIndex
        from repro.core.strategies.base import chase_blocked

        system = build_chain_federation(payload_value=7)
        assert chase_blocked([], system, VerdictIndex(), 0) == []
