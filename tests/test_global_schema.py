"""Unit tests for schema integration (global classes, missing attrs)."""

import pytest

from repro.errors import SchemaError, UnknownClassError
from repro.integration.global_schema import ClassCorrespondence, integrate_schemas
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.workload.paper_example import build_school_federation


def two_site_schemas():
    db1 = ComponentSchema.of(
        "DB1",
        [
            ClassDef.of("Person", [primitive("name"), primitive("age"),
                                   complex_attr("home", "Addr")]),
            ClassDef.of("Addr", [primitive("city")]),
        ],
    )
    db2 = ComponentSchema.of(
        "DB2",
        [
            ClassDef.of("People", [primitive("name"), primitive("phone")]),
        ],
    )
    return {"DB1": db1, "DB2": db2}


def correspondences():
    return [
        ClassCorrespondence.of(
            "Person", [("DB1", "Person"), ("DB2", "People")], "name"
        ),
        ClassCorrespondence.of("Addr", [("DB1", "Addr")], "city"),
    ]


class TestIntegration:
    def test_attribute_union(self):
        gs = integrate_schemas(two_site_schemas(), correspondences())
        person = gs.cls("Person")
        assert set(person.attribute_names()) == {"name", "age", "home", "phone"}

    def test_domain_rewritten_to_global(self):
        gs = integrate_schemas(two_site_schemas(), correspondences())
        assert gs.cls("Person").attribute("home").domain == "Addr"

    def test_missing_attributes(self):
        gs = integrate_schemas(two_site_schemas(), correspondences())
        assert set(gs.missing_attribute_names("DB2", "Person")) == {"age", "home"}
        assert gs.missing_attribute_names("DB1", "Person") == ("phone",)
        # DB2 has no Addr constituent at all.
        assert gs.missing_attribute_names("DB2", "Addr") == ()
        assert gs.constituent_class("DB2", "Addr") is None

    def test_constituent_lookups(self):
        gs = integrate_schemas(two_site_schemas(), correspondences())
        assert gs.constituent_class("DB2", "Person") == "People"
        assert gs.global_class_of("DB2", "People") == "Person"
        assert gs.global_class_of("DB2", "Nope") is None
        assert gs.databases_of("Person") == ("DB1", "DB2")
        assert gs.key_attribute("Person") == "name"

    def test_unknown_global_class(self):
        gs = integrate_schemas(two_site_schemas(), correspondences())
        with pytest.raises(UnknownClassError):
            gs.correspondence("Nope")

    def test_multi_valued_marking(self):
        corr = [
            ClassCorrespondence.of(
                "Person",
                [("DB1", "Person"), ("DB2", "People")],
                "name",
                multi_valued_attributes=["phone"],
            ),
            ClassCorrespondence.of("Addr", [("DB1", "Addr")], "city"),
        ]
        gs = integrate_schemas(two_site_schemas(), corr)
        assert gs.cls("Person").attribute("phone").multi_valued
        assert not gs.cls("Person").attribute("name").multi_valued


class TestIntegrationErrors:
    def test_unknown_database(self):
        with pytest.raises(SchemaError):
            integrate_schemas(
                two_site_schemas(),
                [ClassCorrespondence.of("P", [("DB9", "Person")], "name")],
            )

    def test_unknown_constituent_class(self):
        with pytest.raises(SchemaError):
            integrate_schemas(
                two_site_schemas(),
                [ClassCorrespondence.of("P", [("DB1", "Ghost")], "name")],
            )

    def test_duplicate_global_name(self):
        with pytest.raises(SchemaError):
            integrate_schemas(
                two_site_schemas(),
                [
                    ClassCorrespondence.of("P", [("DB1", "Person")], "name"),
                    ClassCorrespondence.of("P", [("DB2", "People")], "name"),
                ],
            )

    def test_class_in_two_correspondences(self):
        with pytest.raises(SchemaError):
            integrate_schemas(
                two_site_schemas(),
                [
                    ClassCorrespondence.of("P", [("DB1", "Person")], "name"),
                    ClassCorrespondence.of("Q", [("DB1", "Person")], "name"),
                    ClassCorrespondence.of("Addr", [("DB1", "Addr")], "city"),
                ],
            )

    def test_unintegrated_domain_rejected(self):
        # Person.home references Addr, but Addr has no correspondence.
        with pytest.raises(SchemaError):
            integrate_schemas(
                two_site_schemas(),
                [ClassCorrespondence.of("Person", [("DB1", "Person")], "name")],
            )

    def test_kind_conflict_rejected(self):
        db1 = ComponentSchema.of(
            "DB1", [ClassDef.of("C", [primitive("x")])]
        )
        db2 = ComponentSchema.of(
            "DB2",
            [
                ClassDef.of("C", [complex_attr("x", "D")]),
                ClassDef.of("D", [primitive("y")]),
            ],
        )
        with pytest.raises(SchemaError):
            integrate_schemas(
                {"DB1": db1, "DB2": db2},
                [
                    ClassCorrespondence.of("C", [("DB1", "C"), ("DB2", "C")], "x"),
                    ClassCorrespondence.of("D", [("DB2", "D")], "y"),
                ],
            )


class TestSchoolGlobalSchema:
    """The integrated school schema matches the paper's Figure 2."""

    def test_global_classes(self, school):
        assert set(school.global_schema.class_names) == {
            "Student", "Teacher", "Department", "Address",
        }

    def test_student_attributes(self, school):
        student = school.global_schema.cls("Student")
        assert set(student.attribute_names()) == {
            "s-no", "name", "age", "advisor", "sex", "address",
        }

    def test_teacher_attributes(self, school):
        teacher = school.global_schema.cls("Teacher")
        assert set(teacher.attribute_names()) == {
            "name", "department", "speciality",
        }

    def test_paper_missing_attributes(self, school):
        gs = school.global_schema
        # "For DB1, the local root class Student has a complex missing
        # attribute address; and speciality is a primitive missing
        # attribute of the local branch class Teacher."
        assert gs.missing_attribute_names("DB1", "Student") == ("address",)
        assert gs.missing_attribute_names("DB1", "Teacher") == ("speciality",)
        # "the local branch class Teacher in DB2 holds a complex missing
        # attribute department."
        assert gs.missing_attribute_names("DB2", "Teacher") == ("department",)
        assert gs.missing_attribute_names("DB2", "Student") == ("age",)
        assert gs.missing_attribute_names("DB1", "Department") == ("location",)
