"""Live federation evolution: plans, controller semantics, consistency.

The load-bearing guarantees:

* plans are deterministic, round-trip through JSON and the CLI spec,
  and auto entries are flagged until seeding resolves them;
* every controller transition bumps the schema epoch, and each event
  kind mutates the federation exactly as documented (add/drop/rename
  at open, join/leave membership at close);
* the flux consistency contract holds: a query straddling a window is
  annotated, and certified rows referencing an in-flux attribute are
  demoted to maybe — never a wrong certain answer;
* a formal leave force-opens the site's breaker administratively and a
  formal rejoin resets it (the stale-open-circuit regression);
* an epoch bump invalidates every session's cached decompositions;
* traffic runs with an active plan verify against serial replay and
  are byte-identical across rebuilds.
"""

from __future__ import annotations

import json

import pytest

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.results import certified_subset, same_answers
from repro.errors import EvolutionError
from repro.evolution import (
    EvolutionController,
    EvolutionEvent,
    EvolutionPlan,
    mix_referenced_attributes,
    referenced_attributes,
    resolve_auto,
    safe_plan,
)
from repro.resilience.health import BreakerPolicy, SiteHealthRegistry
from repro.traffic import TrafficEngine, default_mix


def fresh_workload(seed: int = 1996, scale: float = 0.03):
    return make_workload(seed, scale=scale)


@pytest.fixture
def workload():
    return fresh_workload()


def plan_for(spec: str, workload, **kwargs) -> EvolutionPlan:
    plan = EvolutionPlan.from_spec(spec, **kwargs)
    return resolve_auto(plan, workload.system, workload.query)


class TestPlan:
    def test_spec_parses_concrete_entries(self):
        plan = EvolutionPlan.from_spec(
            "leave:DB2@1.0,join:DBX@2.0,add:DB1.K1.x9@0.5,"
            "drop:DB2.K1.p0@0.9,rename:K1.t1>t1r@1.5"
        )
        kinds = [e.kind for e in plan.events]
        assert kinds == [
            "site_leave", "site_join", "attr_add", "attr_drop", "attr_rename",
        ]
        assert not plan.needs_resolution
        rename = plan.events[-1]
        assert (rename.global_class, rename.attr, rename.new_name) == (
            "K1", "t1", "t1r"
        )

    def test_ordered_events_by_time_then_declaration(self):
        plan = EvolutionPlan.from_spec("leave:DB2@2.0,join:DBX@1.0")
        assert [e.kind for e in plan.ordered_events()] == [
            "site_join", "site_leave",
        ]

    def test_auto_entries_need_resolution(self):
        # Regression: auto placeholders carry "?"-sentinels, not empty
        # strings — needs_resolution must flag both forms.
        for spec in ("leave@1", "join@1", "add@1", "drop@1", "rename@1"):
            assert EvolutionPlan.from_spec(spec).needs_resolution, spec
        concrete = EvolutionPlan.from_spec("leave:DB1@1")
        assert not concrete.needs_resolution

    def test_controller_rejects_unresolved_plan(self, workload):
        plan = EvolutionPlan.from_spec("leave@1")
        with pytest.raises(EvolutionError, match="unresolved auto"):
            EvolutionController(workload.system, plan)

    def test_json_round_trip(self):
        plan = EvolutionPlan.from_spec(
            "leave:DB2@1.0,rename:K1.t1>t1r@1.5", seed=7,
            propagation_lag_s=0.25,
        )
        again = EvolutionPlan.from_json(plan.to_json())
        assert again == plan

    def test_bad_specs_rejected(self):
        for spec in ("leave", "frobnicate:DB1@1", "rename:K1.t1@1", "add:x@1"):
            with pytest.raises(EvolutionError):
                EvolutionPlan.from_spec(spec)
        with pytest.raises(EvolutionError):
            EvolutionPlan(propagation_lag_s=0.0)
        with pytest.raises(EvolutionError):
            EvolutionPlan(clone_fraction=1.5)

    def test_describe(self):
        assert EvolutionPlan().describe() == "evolve(off)"
        plan = EvolutionPlan.from_spec("leave:DB2@1")
        assert plan.describe() == "evolve(leave:DB2)"


class TestControllerKinds:
    def run_event(self, workload, spec):
        plan = plan_for(spec, workload)
        controller = EvolutionController(workload.system, plan)
        return controller

    def test_every_transition_bumps_epoch(self, workload):
        controller = self.run_event(workload, "add:DB1.K1.zz@1")
        assert workload.system.schema_epoch == 0
        opened = controller.step()
        assert (opened.phase, opened.epoch) == ("open", 1)
        assert workload.system.schema_epoch == 1
        closed = controller.step()
        assert (closed.phase, closed.epoch) == ("close", 2)
        assert workload.system.schema_epoch == 2
        assert controller.done
        with pytest.raises(EvolutionError, match="no next step"):
            controller.step()

    def test_attr_add_visible_at_open(self, workload):
        controller = self.run_event(workload, "add:DB1.K1.zz@1")
        controller.step()
        db = workload.system.db("DB1")
        local = workload.system.global_schema.constituent_class("DB1", "K1")
        assert db.schema.cls(local).has_attribute("zz")
        assert workload.system.global_schema.cls("K1").has_attribute("zz")

    def test_attr_drop_removes_values(self, workload):
        controller = self.run_event(workload, "drop:DB1.K1.t0@1")
        local = workload.system.global_schema.constituent_class("DB1", "K1")
        controller.step()
        db = workload.system.db("DB1")
        assert not db.schema.cls(local).has_attribute("t0")
        assert all(
            "t0" not in obj.values for obj in db.extent(local).values()
        )

    def test_attr_rename_moves_values(self, workload):
        system = workload.system
        sites_with_t0 = [
            ref.db_name
            for ref in system.global_schema.correspondence("K1").constituents
            if system.db(ref.db_name).schema.cls(ref.class_name)
            .has_attribute("t0")
        ]
        controller = self.run_event(workload, "rename:K1.t0>t0r@1")
        controller.step()
        for site in sites_with_t0:
            local = system.global_schema.constituent_class(site, "K1")
            cdef = system.db(site).schema.cls(local)
            assert cdef.has_attribute("t0r")
            assert not cdef.has_attribute("t0")
        assert system.global_schema.cls("K1").has_attribute("t0r")

    def test_key_attribute_protected(self, workload):
        controller = self.run_event(workload, "drop:DB1.K1.key@1")
        with pytest.raises(EvolutionError, match="correspondence key"):
            controller.step()

    def test_site_leave_excises_at_close(self, workload):
        system = workload.system
        controller = self.run_event(workload, "leave:DB2@1")
        opened = controller.step()
        assert opened.phase == "open"
        # Open: still a member, but administratively unreachable and
        # reported departed to the engine.
        assert "DB2" in system.databases
        assert controller.health.state("DB2") == "open"
        assert controller.in_flux_view().departed_sites == ("DB2",)
        controller.step()
        assert "DB2" not in system.databases
        assert all(
            ref.db_name != "DB2"
            for name in system.global_schema.class_names
            for ref in system.global_schema.correspondence(name).constituents
        )
        for table in system.catalog.tables():
            for goid in table.goids():
                assert "DB2" not in table.loids_of(goid)

    def test_site_join_invisible_until_close(self, workload):
        system = workload.system
        before = set(system.databases)
        plan = plan_for("join:DBX@1", workload)
        controller = EvolutionController(system, plan)
        controller.step()
        assert set(system.databases) == before
        controller.step()
        assert set(system.databases) == before | {"DBX"}
        # Cloned entities are consistent: every new LOid is registered
        # in a mapping table and loadable.
        db = system.db("DBX")
        cloned = 0
        for local in db.schema.class_names:
            for obj in db.extent(local).values():
                cloned += 1
                name = system.global_schema.global_class_of("DBX", local)
                assert system.catalog.table(name).goid_of(obj.loid) is not None
        assert cloned > 0
        assert controller.health.state("DBX") == "closed"

    def test_step_to_replays_and_refuses_backwards(self):
        a = fresh_workload()
        b = fresh_workload()
        spec = "add:DB1.K1.zz@1,rename:K1.t0>t0r@2"
        ctl_a = EvolutionController(a.system, plan_for(spec, a))
        ctl_b = EvolutionController(b.system, plan_for(spec, b))
        ctl_a.run_all()
        ctl_b.step_to(ctl_a.applied)
        assert ctl_b.applied == ctl_a.applied == 4
        assert a.system.global_schema.cls("K1").has_attribute("t0r")
        assert b.system.global_schema.cls("K1").has_attribute("t0r")
        with pytest.raises(EvolutionError, match="backwards"):
            ctl_b.step_to(1)


class TestFluxContract:
    def digestable(self, report):
        from repro.difftest.oracle import answer_digest

        return answer_digest(report.results)

    def test_straddling_query_is_annotated_and_demoted(self):
        # Seed 11's query certifies rows against the intact federation,
        # so the mid-window demotion is observable.
        workload = fresh_workload(11)
        system = workload.system
        query = workload.query
        referenced = referenced_attributes(query)

        def definers(attr):
            return [
                ref.db_name
                for ref in system.global_schema.correspondence(
                    "K1"
                ).constituents
                if system.db(ref.db_name).schema.cls(ref.class_name)
                .has_attribute(attr)
            ]

        # Drop at one of several defining sites: the query stays
        # well-formed post-close, but mid-window certifications are
        # suspect — the demotion scenario.
        site, target = next(
            (definers(attr)[0], attr)
            for attr in sorted(referenced - {"key", "ref"})
            if len(definers(attr)) >= 2
        )
        plan = plan_for(f"drop:{site}.K1.{target}@1", workload)
        controller = EvolutionController(system, plan)
        engine = GlobalQueryEngine(system, default_strategy="BL")
        session = engine.session()

        pre = session.execute(query)
        assert pre.availability.schema_epoch == 0
        assert pre.availability.epochs_straddled == ()
        assert pre.results.certain  # something to demote

        opened = controller.step()
        flux = session.execute(query)
        assert flux.availability.schema_epoch == 1
        assert flux.availability.epochs_straddled == (opened.event.label,)
        # The contract: nothing certain survives that could differ from
        # either baseline; demoted rows carry the flux note.
        assert not flux.results.certain
        assert any(
            any("uncertified: schema in flux" in n for n in row.notes)
            for row in flux.results.maybe
        )

        controller.step()
        post = session.execute(query)
        assert post.availability.schema_epoch == 2
        assert post.availability.epochs_straddled == ()
        assert (
            same_answers(flux.results, pre.results)
            or same_answers(flux.results, post.results)
            or (
                certified_subset(flux.results, pre.results)
                and certified_subset(flux.results, post.results)
            )
        )

    def test_add_does_not_demote(self, workload):
        system = workload.system
        controller = EvolutionController(
            system, plan_for("add:DB1.K1.zz@1", workload)
        )
        engine = GlobalQueryEngine(system, default_strategy="BL")
        session = engine.session()
        pre = session.execute(workload.query)
        controller.step()
        flux = session.execute(workload.query)
        assert flux.availability.epochs_straddled
        assert same_answers(flux.results, pre.results)

    def test_epoch_determinism_across_rebuilds(self):
        digests = []
        for _ in range(2):
            w = fresh_workload()
            plan = safe_plan(
                w.system, w.query, ["rename", "add", "join"], seed=5
            )
            assert plan.active
            controller = EvolutionController(w.system, plan)
            engine = GlobalQueryEngine(w.system, default_strategy="BL")
            session = engine.session()
            run = []
            run.append(self.digestable(session.execute(w.query)))
            while not controller.done:
                controller.step()
                run.append(self.digestable(session.execute(w.query)))
            digests.append(run)
        assert digests[0] == digests[1]


class TestSeeding:
    def test_safe_plan_resolves_all_kinds(self, workload):
        plan = safe_plan(
            workload.system, workload.query,
            ["join", "rename", "add", "drop"], seed=3,
        )
        assert plan.active
        assert not plan.needs_resolution
        kinds = {e.kind for e in plan.events}
        assert "site_join" in kinds
        # Resolved targets never break the workload query: renames stay
        # off referenced attributes entirely; a drop may touch one only
        # while another site still defines it (sound degradation).
        referenced = referenced_attributes(workload.query)
        system = workload.system
        for event in plan.events:
            if event.kind == "attr_rename":
                assert event.attr not in referenced
            elif event.kind == "attr_drop" and event.attr in referenced:
                definers = [
                    ref.db_name
                    for ref in system.global_schema.correspondence(
                        event.global_class
                    ).constituents
                    if system.db(ref.db_name).schema.cls(ref.class_name)
                    .has_attribute(event.attr)
                ]
                assert len(definers) >= 2
        EvolutionController(workload.system, plan).run_all()

    def test_safe_plan_is_deterministic(self, workload):
        one = safe_plan(workload.system, workload.query, ["rename"], seed=5)
        two = safe_plan(workload.system, workload.query, ["rename"], seed=5)
        assert one == two

    def test_resolve_auto_keeps_concrete_entries(self, workload):
        plan = EvolutionPlan.from_spec("leave:DB1@1,rename@2", seed=9)
        resolved = resolve_auto(plan, workload.system, workload.query)
        assert not resolved.needs_resolution
        leave = resolved.ordered_events()[0]
        assert (leave.kind, leave.site) == ("site_leave", "DB1")

    def test_mix_referenced_attributes_covers_templates(self, workload):
        mix = default_mix(workload)
        attrs = mix_referenced_attributes(mix)
        assert "key" in attrs and "t0" in attrs


class TestRejoinBreaker:
    """Satellite: formal leave/rejoin hooks on the breaker registry."""

    def test_force_open_suppresses_without_probes(self):
        registry = SiteHealthRegistry()
        registry.force_open("DB1")
        # No cooldown-driven half-open probe ever fires.
        assert all(not registry.allow("DB1") for _ in range(20))
        assert registry.state("DB1") == "open"
        assert registry.health("DB1").suppressed == 20

    def test_reset_recovers_stale_open_circuit(self):
        # Regression: without reset(), a rejoined site sat behind the
        # stale open circuit until cooldown expiry + a lucky probe.
        policy = BreakerPolicy(failure_threshold=2, cooldown_attempts=50)
        registry = SiteHealthRegistry(policy=policy)
        for _ in range(2):
            registry.record("DB1", ok=False)
        assert registry.state("DB1") == "open"
        assert not registry.allow("DB1")
        registry.reset("DB1")
        assert registry.state("DB1") == "closed"
        assert registry.allow("DB1")
        record = registry.health("DB1")
        assert record.consecutive_failures == 0
        assert not record.administrative
        # Lifetime counters survive for observability.
        assert record.failures == 2

    def test_reset_clears_administrative_flag(self):
        registry = SiteHealthRegistry()
        registry.force_open("DB1")
        registry.reset("DB1")
        assert registry.allow("DB1")
        assert not registry.health("DB1").administrative

    def test_reset_unknown_site_is_noop(self):
        SiteHealthRegistry().reset("DB9")  # must not raise

    def test_leave_then_rejoin_through_controller(self):
        w = fresh_workload()
        plan = EvolutionPlan.from_spec("leave:DB2@1,join:DB2@5", seed=1)
        controller = EvolutionController(w.system, plan)
        controller.step()  # leave opens
        assert not controller.health.allow("DB2")
        controller.step()  # leave closes (site excised)
        controller.step()  # join opens
        assert controller.health.state("DB2") == "open"
        controller.step()  # join closes -> formal rejoin resets breaker
        assert controller.health.state("DB2") == "closed"
        assert controller.health.allow("DB2")
        assert "DB2" in w.system.databases


class TestCrossSessionStaleness:
    """Satellite: an epoch bump invalidates *every* session's cache."""

    def test_other_sessions_decompositions_invalidated(self, workload):
        system = workload.system
        engine = GlobalQueryEngine(system, default_strategy="BL")
        alice = engine.session(name="alice")
        bob = engine.session(name="bob")
        alice.execute(workload.query)
        before = system._decompose_stats.hits
        bob.execute(workload.query)
        assert system._decompose_stats.hits > before  # shared cache hit
        assert system._decompose_cache

        controller = EvolutionController(
            system, plan_for("add:DB1.K1.zz@1", workload)
        )
        controller.step()  # epoch bump in "alice's" timeline
        assert not system._decompose_cache

        misses = system._decompose_stats.misses
        report = bob.execute(workload.query)
        assert system._decompose_stats.misses > misses
        assert report.availability.schema_epoch == 1

    def test_bump_epoch_implies_schema_version(self, workload):
        system = workload.system
        epoch, version = system.schema_epoch, system.schema_version
        system.bump_epoch()
        assert system.schema_epoch == epoch + 1
        assert system.schema_version == version + 1


class TestTrafficChurn:
    def churn_report(self, seed=17):
        w = fresh_workload(seed)
        mix = default_mix(w)
        plan = resolve_auto(
            EvolutionPlan.from_spec(
                "join@2,rename@4", seed=seed, propagation_lag_s=0.2
            ),
            w.system, w.query,
            extra_referenced=mix_referenced_attributes(mix),
        )
        assert plan.active
        engine = TrafficEngine(
            w.system, mix, workers=4, queries=3, seed=seed, strategy="BL",
            evolution=plan,
            system_factory=lambda: fresh_workload(seed).system,
        )
        return engine.run(verify=True)

    def test_verified_with_zero_violations(self):
        report = self.churn_report()
        assert report.verified
        assert report.violations == []
        assert report.evo_transitions == 4
        assert report.final_epoch == 4
        assert report.evolution.startswith("evolve(")

    def test_byte_identical_across_rebuilds(self):
        one = json.dumps(self.churn_report().to_dict(), sort_keys=True)
        two = json.dumps(self.churn_report().to_dict(), sort_keys=True)
        assert one == two

    def test_engine_is_single_shot_with_evolution(self):
        w = fresh_workload(17)
        mix = default_mix(w)
        plan = safe_plan(w.system, w.query, ["add"], seed=17)
        engine = TrafficEngine(
            w.system, mix, workers=2, queries=2, seed=17,
            evolution=plan,
        )
        engine.run(verify=False)
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            engine.run(verify=False)
