"""Property tests: monotonicity of the certification rule.

Information can only sharpen an answer, never corrupt it:

* adding SATISFIED verdicts can promote maybes to certain but can never
  eliminate an entity nor demote a certain result;
* adding VIOLATED verdicts can eliminate maybes but can never promote;
* adding UNKNOWN verdicts changes nothing.

Fuzzes random verdict subsets over a fixed local-results scenario.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certification import (
    SATISFIED,
    UNKNOWN_VERDICT,
    VIOLATED,
    VerdictIndex,
    certify,
)
from repro.core.query import Path, Predicate, Query
from repro.core.tvl import TV
from repro.integration.global_schema import ClassCorrespondence, integrate_schemas
from repro.integration.isomerism import table_from_correspondences
from repro.integration.mapping import MappingCatalog
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.local_query import (
    LocalResultRow,
    LocalResultSet,
    RowKind,
    UnsolvedItem,
    UnsolvedPredicateOnObject,
)
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive

N_ENTITIES = 5

PRED = Predicate.of("ref.x", "=", 1)
RELATIVE = Predicate.of("x", "=", 1)
QUERY = Query.conjunctive("S", ["k"], [PRED])


def build_scenario():
    """One site, N maybe rows, each with one unsolved item that has one
    assistant at another site."""
    db1 = ComponentSchema.of(
        "DB1",
        [ClassDef.of("S", [primitive("k"), complex_attr("ref", "T")]),
         ClassDef.of("T", [primitive("k"), primitive("x")])],
    )
    db2 = ComponentSchema.of(
        "DB2",
        [ClassDef.of("S", [primitive("k"), complex_attr("ref", "T")]),
         ClassDef.of("T", [primitive("k"), primitive("x")])],
    )
    global_schema = integrate_schemas(
        {"DB1": db1, "DB2": db2},
        [
            ClassCorrespondence.of("S", [("DB1", "S"), ("DB2", "S")], "k"),
            ClassCorrespondence.of("T", [("DB1", "T"), ("DB2", "T")], "k"),
        ],
    )
    catalog = MappingCatalog()
    catalog.register(table_from_correspondences(
        "S", [(GOid(f"gs{i}"), [LOid("DB1", f"s{i}")]) for i in range(N_ENTITIES)]
    ))
    catalog.register(table_from_correspondences(
        "T",
        [
            (GOid(f"gt{i}"), [LOid("DB1", f"t{i}"), LOid("DB2", f"t{i}x")])
            for i in range(N_ENTITIES)
        ],
    ))
    rows = []
    for i in range(N_ENTITIES):
        item = UnsolvedItem(
            loid=LOid("DB1", f"t{i}"),
            class_name="T",
            reached_via=Path.parse("ref"),
            unsolved=(
                UnsolvedPredicateOnObject(
                    original=PRED, relative_path=Path.parse("x")
                ),
            ),
        )
        rows.append(
            LocalResultRow(
                loid=LOid("DB1", f"s{i}"),
                class_name="S",
                kind=RowKind.MAYBE,
                unsolved_items=(item,),
                predicate_status={PRED: TV.UNKNOWN},
            )
        )
    local = {"DB1": LocalResultSet(db_name="DB1", range_class="S", rows=rows)}
    return global_schema, catalog, local


SCENARIO = build_scenario()

verdict_assignment = st.dictionaries(
    st.integers(min_value=0, max_value=N_ENTITIES - 1),
    st.sampled_from([SATISFIED, VIOLATED, UNKNOWN_VERDICT]),
    max_size=N_ENTITIES,
)


def run(assignment):
    global_schema, catalog, local = SCENARIO
    verdicts = VerdictIndex()
    for index, verdict in assignment.items():
        verdicts.add(LOid("DB2", f"t{index}x"), RELATIVE, verdict)
    answer = certify(QUERY, global_schema, catalog, local, verdicts)
    return (
        {r.goid.value for r in answer.certain},
        {r.goid.value for r in answer.maybe},
    )


@settings(max_examples=120, deadline=None)
@given(verdict_assignment)
def test_partition_matches_verdicts(assignment):
    certain, maybe = run(assignment)
    for i in range(N_ENTITIES):
        name = f"gs{i}"
        verdict = assignment.get(i)
        if verdict == SATISFIED:
            assert name in certain
        elif verdict == VIOLATED:
            assert name not in certain and name not in maybe
        else:
            assert name in maybe


@settings(max_examples=80, deadline=None)
@given(verdict_assignment, st.integers(min_value=0, max_value=N_ENTITIES - 1))
def test_satisfied_monotone(assignment, extra):
    """Adding one SATISFIED verdict never shrinks the answer set."""
    base_certain, base_maybe = run(assignment)
    upgraded = dict(assignment)
    if upgraded.get(extra) == VIOLATED:
        return  # violation precedence: not an information *addition*
    upgraded[extra] = SATISFIED
    new_certain, new_maybe = run(upgraded)
    assert base_certain <= new_certain
    assert new_certain | new_maybe >= base_certain | base_maybe - {f"gs{extra}"} | {f"gs{extra}"}


@settings(max_examples=80, deadline=None)
@given(verdict_assignment, st.integers(min_value=0, max_value=N_ENTITIES - 1))
def test_violated_never_promotes(assignment, extra):
    upgraded = dict(assignment)
    upgraded[extra] = VIOLATED
    certain, maybe = run(upgraded)
    assert f"gs{extra}" not in certain
    assert f"gs{extra}" not in maybe


@settings(max_examples=40, deadline=None)
@given(verdict_assignment)
def test_unknown_equals_absent(assignment):
    """UNKNOWN verdicts are equivalent to no verdict at all."""
    stripped = {
        index: verdict
        for index, verdict in assignment.items()
        if verdict != UNKNOWN_VERDICT
    }
    assert run(assignment) == run(stripped)
