"""Property tests: scheduling invariants of the DES over random graphs.

For arbitrary layered activity graphs:

* total time equals the sum of node durations (contention-free);
* response time is at least the longest single node and the critical
  path lower bound, and at most the total;
* scheduling is deterministic;
* with all work on one resource, response equals total (full serialization).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.costs import CostModel
from repro.sim.taskgraph import FederationSim

UNIT = CostModel(
    disk_s_per_byte=1.0, net_s_per_byte=1.0,
    cpu_s_per_comparison=1.0, disk_seek_s=0.0,
)

SITES = ("A", "B", "C")

# A graph spec: layers of (site index, kind, duration) tuples; every node
# depends on all nodes of the previous layer.
node_spec = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["cpu", "disk"]),
    st.integers(min_value=0, max_value=9),
)
graph_spec = st.lists(
    st.lists(node_spec, min_size=1, max_size=4), min_size=1, max_size=4
)


def build(spec):
    fed = FederationSim(SITES, global_site="G", cost_model=UNIT)
    previous = []
    durations = []
    layer_maxes = []
    for layer in spec:
        current = []
        layer_durs = []
        for site_index, kind, duration in layer:
            site = SITES[site_index]
            if kind == "cpu":
                node = fed.cpu(site, comparisons=duration, deps=previous)
            else:
                node = fed.disk(site, nbytes=duration, deps=previous)
            current.append(node)
            durations.append(duration)
            layer_durs.append(duration)
        layer_maxes.append(max(layer_durs))
        previous = current
    return fed, durations, layer_maxes


@settings(max_examples=100, deadline=None)
@given(graph_spec)
def test_total_is_sum_of_durations(spec):
    fed, durations, _maxes = build(spec)
    outcome = fed.run()
    assert outcome.total_time == pytest.approx(sum(durations))


@settings(max_examples=100, deadline=None)
@given(graph_spec)
def test_response_bounds(spec):
    fed, durations, layer_maxes = build(spec)
    outcome = fed.run()
    # Lower bounds: the critical path through layer barriers, and any
    # single node.  Upper bound: complete serialization.
    assert outcome.response_time >= sum(layer_maxes) - 1e-9
    assert outcome.response_time >= max(durations) - 1e-9
    assert outcome.response_time <= sum(durations) + 1e-9


@settings(max_examples=50, deadline=None)
@given(graph_spec)
def test_deterministic(spec):
    first = build(spec)[0].run()
    second = build(spec)[0].run()
    assert first.response_time == second.response_time
    assert first.total_time == second.total_time


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=8))
def test_single_resource_serializes(durations):
    fed = FederationSim(["A"], global_site="G", cost_model=UNIT)
    for duration in durations:
        fed.cpu("A", comparisons=duration)
    outcome = fed.run()
    assert outcome.response_time == pytest.approx(sum(durations))
    assert outcome.total_time == pytest.approx(sum(durations))
