"""Constraint-pruned, trace-fed adaptive planning (repro.planner).

Covers the tentpole and its satellites: the health EWMA fixes, the
stride-based null-ratio sampler (and the AUTO flip the first-N bias
caused), the constraint catalog's sound prunes, trace feedback folding,
misprediction accounting, and the answer-identity contract across every
planner mode.
"""

from __future__ import annotations

import pytest

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.options import ExecutionOptions
from repro.core.query import Op, Predicate, Query
from repro.core.results import same_answers
from repro.core.strategies.adaptive import (
    NULL_RATIO_CAP,
    NULL_SAMPLE_SIZE,
    AdaptiveStrategy,
    NullRatioSample,
    _sampled_null_ratio,
    extract_params_ex,
)
from repro.faults.plan import FaultPlan, LinkFault
from repro.objectdb.values import NULL, is_null
from repro.planner import (
    PLANNER_MODES,
    ConstraintCatalog,
    PlannerFeedback,
    uses_constraints,
    uses_feedback,
)
from repro.planner.feedback import SLOWDOWN_CAP
from repro.resilience.health import (
    CLOSED,
    OPEN,
    BreakerPolicy,
    SiteHealthRegistry,
)
from repro.workload.paper_example import Q1_TEXT, build_school_federation


# --- satellite 1: health EWMA fixes -----------------------------------------


class TestHealthEwma:
    def test_first_sample_seeds_the_ewma(self):
        """The first observation is taken outright, not blended with 0.0."""
        reg = SiteHealthRegistry()
        reg.record("DB2", ok=True, latency_s=0.5)
        assert reg.health("DB2").latency_ewma_s == pytest.approx(0.5)
        assert reg.health("DB2").ewma_samples == 1

    def test_ewma_converges_with_standard_smoothing(self):
        reg = SiteHealthRegistry(BreakerPolicy(ewma_alpha=0.3))
        reg.record("DB2", ok=True, latency_s=1.0)
        reg.record("DB2", ok=True, latency_s=2.0)
        # seeded at 1.0, then 1.0 + 0.3 * (2.0 - 1.0)
        assert reg.health("DB2").latency_ewma_s == pytest.approx(1.3)

    def test_failures_never_fold_latency(self):
        """A failure's (defaulted-zero) latency must not drag the EWMA."""
        reg = SiteHealthRegistry()
        reg.record("DB2", ok=True, latency_s=2.0)
        for _ in range(10):
            reg.record("DB2", ok=False)
        assert reg.health("DB2").latency_ewma_s == pytest.approx(2.0)
        assert reg.health("DB2").ewma_samples == 1

    def test_failure_sequence_then_success_keeps_seeding(self):
        """Failures before the first success leave the EWMA unseeded."""
        reg = SiteHealthRegistry()
        reg.record("DB2", ok=False)
        reg.record("DB2", ok=False)
        assert reg.health("DB2").ewma_samples == 0
        reg.record("DB2", ok=True, latency_s=0.8)
        assert reg.health("DB2").latency_ewma_s == pytest.approx(0.8)

    def test_flaky_site_does_not_win_latency_tiebreak(self):
        """Pre-fix, failures folded latency 0 and made a flaky site look
        fast; now the slow-but-honest ranking survives failures."""
        reg = SiteHealthRegistry()
        reg.record("fast", ok=True, latency_s=0.1)
        reg.record("flaky", ok=True, latency_s=0.9)
        # Two failures: below the threshold, so state/failure-count keys
        # differ — reset the streak with one success and check the EWMA
        # was not diluted meanwhile.
        reg.record("flaky", ok=False)
        reg.record("flaky", ok=False)
        reg.record("flaky", ok=True, latency_s=0.9)
        assert reg.health("flaky").latency_ewma_s > 0.5
        assert reg.rank(["flaky", "fast"]) == ["fast", "flaky"]

    def test_rank_equal_health_is_site_name_order(self):
        reg = SiteHealthRegistry()
        for site in ("DB3", "DB1", "DB2"):
            reg.record(site, ok=True, latency_s=0.2)
        assert reg.rank(["DB3", "DB1", "DB2"]) == ["DB1", "DB2", "DB3"]
        # Unknown sites rank identically by name too.
        assert reg.rank(["Z", "A"]) == ["A", "Z"]

    def test_rank_orders_state_then_failures_then_ewma(self):
        reg = SiteHealthRegistry(BreakerPolicy(failure_threshold=3))
        reg.record("slow", ok=True, latency_s=5.0)
        reg.record("quick", ok=True, latency_s=0.1)
        reg.record("striking", ok=False)
        for _ in range(3):
            reg.record("open", ok=False)
        assert reg.state("open") == OPEN
        assert reg.state("striking") == CLOSED
        assert reg.rank(["open", "striking", "slow", "quick"]) == [
            "quick", "slow", "striking", "open",
        ]


# --- satellite 2: stride null-ratio sampling --------------------------------


def _first_n_ratio(db, class_name, attributes):
    """The pre-fix first-N sampler, reimplemented for comparison."""
    seen = nulls = 0
    for obj in db.extent(class_name).values():
        for attr in attributes:
            seen += 1
            if is_null(obj.get(attr)):
                nulls += 1
        if seen >= NULL_SAMPLE_SIZE * len(attributes):
            break
    return nulls / seen if seen else 0.0


def _null_the_tails(workload):
    """Null every predicate attribute beyond the first NULL_SAMPLE_SIZE
    insertion-ordered objects of every queried extent."""
    system, query = workload.system, workload.query
    schema = system.global_schema
    chain = [query.range_class] + list(query.branch_classes(schema.schema))
    pred_attrs = {p.path.last for p in query.all_predicates()}
    for db_name in system.databases:
        db = system.db(db_name)
        for global_cls in chain:
            local = schema.constituent_class(db_name, global_cls)
            if local is None:
                continue
            for obj in list(db.extent(local).values())[NULL_SAMPLE_SIZE:]:
                for attr in pred_attrs:
                    if attr in obj.values:
                        obj.values[attr] = NULL
            db.note_mutation(local)


class TestNullRatioSampling:
    def test_stride_sees_the_skewed_tail(self):
        """First-N reads insertion order and misses a null-heavy tail;
        the stride samples the whole extent."""
        w = make_workload(seed=7)
        _null_the_tails(w)
        schema = w.system.global_schema
        local = schema.constituent_class("DB1", w.query.range_class)
        db = w.system.db("DB1")
        sample = _sampled_null_ratio(db, local, ["p0"])
        assert sample.ratio > 0.5
        assert _first_n_ratio(db, local, ["p0"]) == 0.0

    def test_stride_is_deterministic_and_bounded(self):
        w = make_workload(seed=7)
        schema = w.system.global_schema
        local = schema.constituent_class("DB1", w.query.range_class)
        db = w.system.db("DB1")
        a = _sampled_null_ratio(db, local, ["p0"])
        b = _sampled_null_ratio(db, local, ["p0"])
        assert a == b
        assert a.objects_sampled <= NULL_SAMPLE_SIZE

    def test_clamp_is_surfaced_not_silent(self):
        """An all-null column reports raw 1.0, clamped flag set, and an
        extraction note."""
        system = build_school_federation()
        db = system.db("DB2")
        for obj in db.extent("Teacher").values():
            obj.values["speciality"] = NULL
        db.note_mutation("Teacher")
        sample = _sampled_null_ratio(db, "Teacher", ["speciality"])
        assert sample.raw_ratio == pytest.approx(1.0)
        assert sample.clamped
        assert sample.ratio == pytest.approx(NULL_RATIO_CAP)
        from repro.sqlx import parse_query
        _params, notes = extract_params_ex(system, parse_query(Q1_TEXT))
        assert any("null-ratio clamp" in note for note in notes)

    def test_empty_inputs(self):
        system = build_school_federation()
        db = system.db("DB1")
        assert _sampled_null_ratio(db, "Student", []) == NullRatioSample(
            0.0, 0.0, False, 0
        )

    def test_biased_sampler_flipped_the_auto_pick(self, monkeypatch):
        """Regression: with a null-skewed tail the first-N sampler saw a
        phantom fully-populated federation and picked a localized
        strategy; whole-extent sampling flips the pick (seed 14: to CA).
        Both picks stay answer-identical — only the cost moves."""
        import repro.core.strategies.adaptive as adaptive

        w = make_workload(seed=14)
        _null_the_tails(w)
        system, query = w.system, w.query

        stride_pred = AdaptiveStrategy().predict(system, query)
        stride_pick = min(stride_pred, key=stride_pred.get)

        def first_n(db, class_name, attributes):
            if not attributes:
                return NullRatioSample(0.0, 0.0, False, 0)
            ratio = _first_n_ratio(db, class_name, attributes)
            return NullRatioSample(
                min(ratio, NULL_RATIO_CAP), ratio,
                ratio > NULL_RATIO_CAP, NULL_SAMPLE_SIZE,
            )

        monkeypatch.setattr(adaptive, "_sampled_null_ratio", first_n)
        biased_pred = AdaptiveStrategy().predict(system, query)
        biased_pick = min(biased_pred, key=biased_pred.get)
        monkeypatch.undo()

        assert biased_pick != stride_pick
        assert stride_pick == "CA" and biased_pick == "BL"
        engine = GlobalQueryEngine(system)
        left = engine.execute(query, stride_pick).results
        right = engine.execute(query, biased_pick).results
        assert same_answers(left, right)


# --- satellite 3: misprediction accounting ----------------------------------


class TestMispredictionAccounting:
    def test_auto_outcome_event_records_predicted_vs_actual(self):
        engine = GlobalQueryEngine(build_school_federation())
        report = engine.execute(Q1_TEXT, "AUTO")
        outcomes = [
            e for e in report.metrics.events if e.name == "auto.outcome"
        ]
        assert len(outcomes) == 1
        attrs = dict(outcomes[0].attrs)
        assert attrs["choice"] in ("CA", "BL", "PL")
        assert float(attrs["predicted_s"]) > 0.0
        assert float(attrs["actual_s"]) > 0.0
        rank = int(attrs["rank_of_actual"])
        assert 1 <= rank <= 3
        assert attrs["mispredicted"] == ("true" if rank > 1 else "false")

    def test_auto_answers_identical_to_delegate(self):
        engine = GlobalQueryEngine(build_school_federation())
        auto = engine.execute(Q1_TEXT, "AUTO")
        choice = dict(
            [e for e in auto.metrics.events if e.name == "auto.predict"][0]
            .attrs
        )["choice"]
        direct = engine.execute(Q1_TEXT, choice)
        assert same_answers(auto.results, direct.results)

    def test_predict_event_carries_planner_and_notes(self):
        engine = GlobalQueryEngine(build_school_federation())
        report = engine.execute(
            Q1_TEXT, "AUTO",
            options=engine.options.with_(planner="feedback"),
        )
        attrs = dict(
            [e for e in report.metrics.events if e.name == "auto.predict"][0]
            .attrs
        )
        assert attrs["planner"] == "feedback"
        # No prior observations: feedback mode behaves statically.
        assert attrs["used_feedback"] == "false"
        assert "notes" in attrs


# --- tentpole: constraint catalog -------------------------------------------


class TestConstraintCatalog:
    def test_class_stats_counts_nulls_and_ranges(self):
        system = build_school_federation()
        catalog = ConstraintCatalog()
        stats = catalog.class_stats(system.db("DB1"), "Student")
        assert stats.count == 3
        sno = stats.attributes["s-no"]
        assert (sno.lo, sno.hi) == (798302, 808301)
        assert sno.range_usable
        sex = stats.attributes["sex"]
        assert sex.nulls == 1 and not sex.range_usable
        assert sex.coverage == pytest.approx(2 / 3)

    def test_memo_hits_and_data_version_invalidation(self):
        system = build_school_federation()
        catalog = ConstraintCatalog()
        db = system.db("DB1")
        catalog.class_stats(db, "Student")
        catalog.class_stats(db, "Student")
        assert catalog.builds == 1 and catalog.hits == 1
        for obj in db.extent("Student").values():
            obj.values["age"] = 99
            break
        db.note_mutation("Student")
        fresh = catalog.class_stats(db, "Student")
        assert catalog.builds == 2
        assert fresh.attributes["age"].hi == 99

    def test_range_prunes_are_3vl_sound(self):
        system = build_school_federation()
        catalog = ConstraintCatalog()
        db = system.db("DB1")

        def prune(attr, op, operand):
            return catalog.predicate_all_false(
                db, "Student", Predicate.of(attr, op, operand)
            )

        # s-no in [798302, 808301], fully populated: range prunes apply.
        assert prune("s-no", Op.GE, 810000)
        assert prune("s-no", Op.GT, 808301)
        assert prune("s-no", Op.LT, 798302)
        assert prune("s-no", Op.EQ, 1)
        assert not prune("s-no", Op.GE, 808301)  # hi satisfies it
        assert not prune("s-no", Op.NE, 798302)  # lo != hi
        # EQ across kinds never raises — plain False, prunable.
        assert prune("s-no", Op.EQ, "a-string")
        # Order comparison across kinds raises QueryError: never prune.
        assert not prune("s-no", Op.GT, "a-string")
        # 'sex' has a null: any comparison is UNKNOWN there, never prune.
        assert not prune("sex", Op.EQ, "neither")
        # Reference-valued column: no scalar kind, never prune.
        assert not prune("advisor", Op.EQ, "x")

    def test_check_prune_requires_all_null_single_step(self):
        system = build_school_federation()
        catalog = ConstraintCatalog()
        db2 = system.db("DB2")
        pred = Predicate.of("speciality", Op.EQ, "database")
        assert not catalog.check_provably_unknown(db2, "Teacher", pred)
        for obj in db2.extent("Teacher").values():
            obj.values["speciality"] = NULL
        db2.note_mutation("Teacher")
        assert catalog.check_provably_unknown(db2, "Teacher", pred)
        nested = Predicate.of("department.name", Op.EQ, "CS")
        assert not catalog.check_provably_unknown(db2, "Teacher", nested)

    def test_site_prune_reason(self):
        system = build_school_federation()
        catalog = ConstraintCatalog()
        query = Query.conjunctive(
            "Student", ["name"], [Predicate.of("s-no", ">=", 810000)]
        )
        decomposed = system.decompose(query)
        reasons = {
            db: catalog.site_prune_reason(
                system.db(db), decomposed.local_queries[db]
            )
            for db in decomposed.local_queries
        }
        assert reasons["DB1"] is not None and "all-false" in reasons["DB1"]
        assert reasons["DB2"] is None

    def test_no_predicates_never_prunes(self):
        system = build_school_federation()
        catalog = ConstraintCatalog()
        query = Query.conjunctive("Student", ["name"])
        decomposed = system.decompose(query)
        for db in decomposed.local_queries:
            assert catalog.site_prune_reason(
                system.db(db), decomposed.local_queries[db]
            ) is None


# --- tentpole: planner modes end to end -------------------------------------


class TestPlannerModes:
    def test_options_validate_planner(self):
        with pytest.raises(TypeError, match="unknown planner mode"):
            ExecutionOptions(planner="psychic")
        assert "planner=full" in ExecutionOptions(planner="full").describe()

    def test_mode_predicates(self):
        assert PLANNER_MODES == ("static", "feedback", "constraints", "full")
        assert uses_constraints("constraints") and uses_constraints("full")
        assert not uses_constraints("feedback")
        assert uses_feedback("feedback") and uses_feedback("full")
        assert not uses_feedback("static")

    @pytest.mark.parametrize("strategy", ["CA", "BL", "PL", "AUTO"])
    @pytest.mark.parametrize("mode", ["feedback", "constraints", "full"])
    def test_every_mode_answer_identical_to_static(self, strategy, mode):
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        static = engine.execute(
            Q1_TEXT, strategy, options=engine.options.with_(planner="static")
        ).results
        adaptive = engine.execute(
            Q1_TEXT, strategy, options=engine.options.with_(planner=mode)
        ).results
        assert same_answers(static, adaptive)

    def test_site_prune_fires_and_preserves_the_answer(self):
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive(
            "Student", ["name"], [Predicate.of("s-no", ">=", 810000)]
        )
        static = engine.execute(
            query, "BL", options=engine.options.with_(planner="static")
        )
        pruned = engine.execute(
            query, "BL", options=engine.options.with_(planner="constraints")
        )
        assert same_answers(static.results, pruned.results)
        assert static.metrics.work.sites_pruned == 0
        assert pruned.metrics.work.sites_pruned == 1
        events = [
            e for e in pruned.metrics.events if e.name == "planner.prune"
        ]
        assert dict(events[0].attrs)["site"] == "DB1"
        # The pruned run does strictly less local work.
        assert (
            pruned.metrics.work.objects_scanned
            < static.metrics.work.objects_scanned
        )

    def test_check_prune_fires_and_preserves_the_answer(self):
        system = build_school_federation()
        db2 = system.db("DB2")
        for obj in db2.extent("Teacher").values():
            obj.values["speciality"] = NULL
        db2.note_mutation("Teacher")
        engine = GlobalQueryEngine(system)
        static = engine.execute(
            Q1_TEXT, "BL", options=engine.options.with_(planner="static")
        )
        pruned = engine.execute(
            Q1_TEXT, "BL", options=engine.options.with_(planner="constraints")
        )
        assert same_answers(static.results, pruned.results)
        assert static.metrics.work.checks_pruned == 0
        assert pruned.metrics.work.checks_pruned >= 1
        assert (
            pruned.metrics.work.assistants_checked
            < static.metrics.work.assistants_checked
        )

    def test_catalog_refreshes_after_mutation(self):
        """A stale range must never mask a fresh value: after inserting
        a matching object at the pruned site, the prune stops firing."""
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive(
            "Student", ["name"], [Predicate.of("s-no", ">=", 810000)]
        )
        opts = engine.options.with_(planner="constraints")
        first = engine.execute(query, "BL", options=opts)
        assert first.metrics.work.sites_pruned == 1
        system.register_entity(
            "Student",
            {"DB1": {"s-no": 888888, "name": "Zoe"}},
        )
        second = engine.execute(query, "BL", options=opts)
        assert second.metrics.work.sites_pruned == 0
        names = sorted(
            str(list(r.bindings.values())[0])
            for r in second.results.certain
        )
        assert names == ["Fanny", "Zoe"]


# --- tentpole: trace-fed feedback -------------------------------------------


class _StubNegotiation:
    def __init__(self, ok, wait_s):
        self.ok = ok
        self.wait_s = wait_s


class _StubInjector:
    def __init__(self, memo):
        self._memo = memo


class _StubCtx:
    def __init__(self, memo, health=None):
        self.injector = _StubInjector(memo)
        self.health = health


class TestPlannerFeedback:
    def test_entry_and_peer_buckets(self):
        fb = PlannerFeedback()
        fb.observe_execution(_StubCtx({
            ("GPS", "DB1"): _StubNegotiation(True, 0.2),
            ("DB2", "DB1"): _StubNegotiation(True, 0.6),
        }), None, "GPS")
        assert fb.entry_stalls() == {"DB1": pytest.approx(0.2)}
        assert fb.peer_stalls() == {"DB1": pytest.approx(0.6)}
        assert fb.has_data

    def test_zero_wait_failures_do_not_dilute_the_ewma(self):
        """Open-circuit suppressions synthesize failed negotiations with
        zero wait — the same dilution bug class the health EWMA fix
        removed; the feedback fold must skip them too."""
        fb = PlannerFeedback()
        fb.observe_execution(_StubCtx({
            ("GPS", "DB1"): _StubNegotiation(True, 1.0),
        }), None, "GPS")
        for _ in range(5):
            fb.observe_execution(_StubCtx({
                ("GPS", "DB1"): _StubNegotiation(False, 0.0),
            }), None, "GPS")
        assert fb.entry_stalls() == {"DB1": pytest.approx(1.0)}
        record = fb.site("DB1")
        assert record.entry_failures == 5 and record.entry_successes == 1

    def test_unreliable_sites_require_zero_successes(self):
        fb = PlannerFeedback()
        fb.observe_execution(_StubCtx({
            ("GPS", "DB1"): _StubNegotiation(False, 0.5),
            ("GPS", "DB2"): _StubNegotiation(True, 0.1),
        }), None, "GPS")
        assert fb.unreliable_sites() == ("DB1",)
        fb.observe_execution(_StubCtx({
            ("GPS", "DB1"): _StubNegotiation(True, 0.5),
        }), None, "GPS")
        assert fb.unreliable_sites() == ()

    def test_slowdown_multiplier_is_capped(self):
        fb = PlannerFeedback()
        record = fb.site("GPS")
        record.slowdown_ewma = 40.0
        record.slowdown_samples = 3
        assert fb.site_multipliers()["GPS"] == pytest.approx(SLOWDOWN_CAP)

    def test_engine_folds_observations_under_faults(self):
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        plan = FaultPlan(seed=3, links=(
            LinkFault(src="DB1", dst="DB3",
                      latency_multiplier=8.0, loss=0.6),
            LinkFault(src="DB2", dst="DB3",
                      latency_multiplier=8.0, loss=0.6),
        ))
        opts = engine.options.with_(fault_plan=plan)
        engine.execute(Q1_TEXT, "PL", options=opts)
        fb = system.planner_feedback
        assert fb.executions_observed == 1
        assert "DB3" in fb.peer_stalls()

    def test_peer_storm_flips_auto_toward_ca(self):
        """The differentiator static plan-peeking cannot see: sub-0.99
        peer-link loss stalls only the localized check exchanges, so a
        warmed feedback store flips AUTO's pick to CA — with the answer
        unchanged."""
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        plan = FaultPlan(seed=3, links=(
            LinkFault(src="DB1", dst="DB3",
                      latency_multiplier=8.0, loss=0.6),
            LinkFault(src="DB2", dst="DB3",
                      latency_multiplier=8.0, loss=0.6),
        ))
        feedback_opts = engine.options.with_(
            fault_plan=plan, planner="feedback"
        )
        static_opts = engine.options.with_(
            fault_plan=plan, planner="static"
        )
        for _ in range(3):  # warm the store
            engine.execute(Q1_TEXT, "AUTO", options=feedback_opts)
        fed = engine.execute(Q1_TEXT, "AUTO", options=feedback_opts)
        static = engine.execute(Q1_TEXT, "AUTO", options=static_opts)
        fed_choice = dict(
            [e for e in fed.metrics.events if e.name == "auto.predict"][0]
            .attrs
        )["choice"]
        static_choice = dict(
            [e for e in static.metrics.events if e.name == "auto.predict"][0]
            .attrs
        )["choice"]
        assert static_choice in ("BL", "PL")
        assert fed_choice == "CA"
        assert same_answers(fed.results, static.results)
