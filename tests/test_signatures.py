"""Unit and property tests for object signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Op, Path, Predicate
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.signatures import (
    DEFAULT_WIDTH_BITS,
    Signature,
    SignatureCatalog,
    make_signature,
    predicate_mask,
)
from repro.objectdb.values import MultiValue, NULL


def obj(name="o1", **values):
    return LocalObject(LOid("DB", name), "C", values)


class TestSignature:
    def test_size(self):
        sig = make_signature(obj(a=1))
        assert sig.size_bytes == DEFAULT_WIDTH_BITS // 8 == 32

    def test_superset(self):
        sig = Signature(bits=0b111)
        assert sig.superset_of(0b101)
        assert not sig.superset_of(0b1000)

    def test_encoding_is_deterministic(self):
        assert make_signature(obj(a=1, b="x")) == make_signature(obj(a=1, b="x"))

    def test_nulls_contribute_nothing(self):
        assert make_signature(obj(a=NULL)).bits == 0

    def test_references_contribute_nothing(self):
        assert make_signature(obj(r=LOid("DB", "t"))).bits == 0

    def test_value_inclusion(self):
        sig = make_signature(obj(a=42))
        assert sig.superset_of(predicate_mask("a", 42))

    def test_type_sensitive(self):
        # "1" and 1 encode differently (no accidental cross-type match).
        sig = make_signature(obj(a="1"))
        assert not sig.superset_of(predicate_mask("a", 1))

    def test_popcount(self):
        assert Signature(bits=0b1011).popcount == 3

    def test_multivalue_members_encoded(self):
        sig = make_signature(obj(a=MultiValue([1, 2])))
        assert sig.superset_of(predicate_mask("a", 1))
        assert sig.superset_of(predicate_mask("a", 2))


class TestCatalog:
    def make_catalog(self, *objects):
        catalog = SignatureCatalog()
        for o in objects:
            catalog.index_object(o)
        return catalog

    def test_lookup(self):
        o = obj(a=1)
        catalog = self.make_catalog(o)
        assert catalog.lookup("C", o.loid) is not None
        assert catalog.lookup("C", LOid("DB", "zz")) is None

    def test_true_value_never_filtered(self):
        o = obj(a=42)
        catalog = self.make_catalog(o)
        assert catalog.may_satisfy("C", o.loid, Predicate.of("a", "=", 42))

    def test_definitive_mismatch_filtered(self):
        o = obj(a=42)
        catalog = self.make_catalog(o)
        # With 4 bits per code in 256 bits, a specific different value is
        # overwhelmingly likely to be filtered; use one known-mismatching
        # operand deterministically.
        pred = Predicate.of("a", "=", "a-very-different-value")
        assert catalog.may_satisfy("C", o.loid, pred) in (True, False)

    def test_null_attribute_never_filtered(self):
        o = obj(a=NULL)
        catalog = self.make_catalog(o)
        assert catalog.may_satisfy("C", o.loid, Predicate.of("a", "=", 1))

    def test_unknown_object_never_filtered(self):
        catalog = self.make_catalog()
        assert catalog.may_satisfy("C", LOid("DB", "zz"), Predicate.of("a", "=", 1))

    def test_non_equality_never_filtered(self):
        o = obj(a=42)
        catalog = self.make_catalog(o)
        assert catalog.may_satisfy("C", o.loid, Predicate.of("a", "<", 1))

    def test_nested_path_never_filtered(self):
        o = obj(a=42)
        catalog = self.make_catalog(o)
        assert catalog.may_satisfy("C", o.loid, Predicate.of("r.a", "=", 1))

    def test_index_extent(self):
        catalog = SignatureCatalog()
        count = catalog.index_extent([obj("a", x=1), obj("b", x=2)])
        assert count == 2

    def test_precheck_splits(self):
        o1, o2 = obj("o1", a=1), obj("o2", a=2)
        catalog = self.make_catalog(o1, o2)
        pred = Predicate.of("a", "=", 1)
        precheck = catalog.precheck_assistants(
            "C", [o1.loid, o2.loid], [pred]
        )
        assert o1.loid in precheck.to_check
        # o2 is (almost certainly) provably violating; if a false positive
        # occurred it would be in to_check, never lost.
        all_accounted = set(precheck.to_check) | {
            l for ls in precheck.violated.values() for l in ls
        }
        assert all_accounted == {o1.loid, o2.loid}
        assert precheck.comparisons == 2


class TestNoFalseNegatives:
    """The load-bearing signature property: a matching value always passes."""

    @given(
        st.one_of(st.integers(), st.text(max_size=12), st.booleans()),
        st.text(min_size=1, max_size=8),
    )
    @settings(max_examples=80)
    def test_equality_never_filters_match(self, value, attr):
        o = LocalObject(LOid("DB", "x"), "C", {attr: value})
        catalog = SignatureCatalog()
        catalog.index_object(o)
        pred = Predicate(path=Path((attr,)), op=Op.EQ, operand=value)
        assert catalog.may_satisfy("C", o.loid, pred)

    @given(st.integers(), st.integers())
    @settings(max_examples=80)
    def test_precheck_never_loses_satisfier(self, value, other):
        o = obj("m", a=value)
        catalog = SignatureCatalog()
        catalog.index_object(o)
        pred = Predicate.of("a", "=", value)
        precheck = catalog.precheck_assistants("C", [o.loid], [pred])
        assert o.loid in precheck.to_check
