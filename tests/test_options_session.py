"""ExecutionOptions, the legacy-kwarg shim, and per-caller sessions.

Covers the options value object (immutability, ``with_`` validation,
policy normalization), the engine's deprecated override kwargs (both
paths must produce identical reports), the attribute shims
(``engine.batch_checks = ...`` still works), the no-strategy-mutation
regression (a shared Strategy instance must never see its
``batch_checks`` flipped by one caller), and :class:`EngineSession`:
per-session defaults, per-session cache accounting summing to the
federation-wide delta, and cross-session shared-hit attribution.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.options import OPTION_FIELDS, ExecutionOptions
from repro.faults.plan import FaultPlan
from repro.faults.policy import resolve_policy
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def _digest(report) -> str:
    return json.dumps(report.results.to_dicts(), sort_keys=True)


PLAN = "DB2@0:0.8,link:*>DB3:loss0.4"


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.fault_plan is None
        assert options.fault_seed == 0
        assert options.batch_checks and options.failover
        assert not options.faults_active
        assert options.policy == resolve_policy(None)

    def test_policy_normalized_at_construction(self):
        options = ExecutionOptions(policy="degrade:timeout=0.5")
        assert options.policy.timeout_s == 0.5
        assert options == ExecutionOptions(policy="degrade:timeout=0.5")

    def test_with_overrides_and_preserves(self):
        base = ExecutionOptions(fault_seed=7)
        derived = base.with_(batch_checks=False)
        assert not derived.batch_checks
        assert derived.fault_seed == 7
        assert base.batch_checks  # the original is untouched

    def test_with_rejects_unknown_names(self):
        with pytest.raises(TypeError, match="unknown execution option"):
            ExecutionOptions().with_(bogus=True)

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().batch_checks = False

    def test_faults_active_requires_active_plan(self):
        plan = FaultPlan.from_spec(PLAN)
        assert ExecutionOptions(fault_plan=plan).faults_active
        assert not ExecutionOptions(fault_plan=FaultPlan()).faults_active

    def test_describe_mentions_every_field(self):
        text = ExecutionOptions(
            fault_plan=FaultPlan.from_spec(PLAN), fault_seed=3
        ).describe()
        for token in ("faults(", "policy=", "fault_seed=3",
                      "batch_checks=True", "failover=True"):
            assert token in text

    def test_option_fields_match_dataclass(self):
        assert set(OPTION_FIELDS) == set(
            ExecutionOptions.__dataclass_fields__
        )


class TestLegacyKwargShim:
    def test_legacy_kwargs_warn_and_match_options_path(self, school):
        engine = GlobalQueryEngine(school)
        plan = FaultPlan.from_spec(PLAN)
        with pytest.warns(DeprecationWarning, match="execute"):
            legacy = engine.execute(
                Q1_TEXT, "BL", fault_plan=plan, fault_seed=5,
                batch_checks=False,
            )
        modern = engine.execute(
            Q1_TEXT, "BL",
            options=engine.options.with_(
                fault_plan=plan, fault_seed=5, batch_checks=False
            ),
        )
        assert _digest(legacy) == _digest(modern)
        assert legacy.total_time == modern.total_time
        assert (legacy.availability.summary()
                == modern.availability.summary())

    def test_options_path_emits_no_warning(self, school):
        engine = GlobalQueryEngine(school)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.execute(
                Q1_TEXT, "BL",
                options=engine.options.with_(batch_checks=False),
            )

    def test_compare_legacy_kwargs_warn(self, school):
        engine = GlobalQueryEngine(school)
        with pytest.warns(DeprecationWarning, match="compare"):
            outcomes = engine.compare(
                Q1_TEXT, strategies=("CA", "BL"),
                fault_plan=FaultPlan.from_spec(PLAN), fault_seed=2,
            )
        assert set(outcomes) == {"CA", "BL"}

    def test_constructor_kwargs_fold_into_options(self, school):
        engine = GlobalQueryEngine(
            school, batch_checks=False, fault_seed=9, failover=False
        )
        assert not engine.options.batch_checks
        assert engine.options.fault_seed == 9
        assert not engine.options.failover

    def test_attribute_shims_read_and_write_options(self, school):
        engine = GlobalQueryEngine(school)
        assert engine.batch_checks is True
        engine.batch_checks = False
        engine.fault_seed = 11
        engine.policy = "fail-fast"
        assert not engine.options.batch_checks
        assert engine.options.fault_seed == 11
        assert engine.policy.fail_fast
        assert engine.fault_plan is None


class TestNoStrategyMutation:
    """Regression: execute() must never flip a shared Strategy's flags."""

    def test_batch_override_leaves_instance_alone_fault_free(self):
        from helpers import make_workload

        workload = make_workload(103, n_dbs=3)
        engine = GlobalQueryEngine(workload.system)
        shared = engine.registry.create("BL")
        assert shared.batch_checks
        unbatched = engine.execute(
            workload.query, shared,
            options=engine.options.with_(batch_checks=False),
        )
        assert shared.batch_checks, (
            "engine mutated the caller's Strategy instance"
        )
        # The override still took effect: unbatched sends more messages.
        batched = engine.execute(workload.query, shared)
        assert (unbatched.metrics.work.messages
                > batched.metrics.work.messages)

    def test_batch_override_leaves_instance_alone_under_faults(self, school):
        engine = GlobalQueryEngine(school)
        shared = engine.registry.create("BL")
        faulted = engine.options.with_(
            fault_plan=FaultPlan.from_spec(PLAN), batch_checks=False
        )
        engine.execute(Q1_TEXT, shared, options=faulted)
        assert shared.batch_checks

    def test_default_strategy_not_mutated_by_session_override(self, school):
        engine = GlobalQueryEngine(school)
        session = engine.session(
            options=engine.options.with_(batch_checks=False)
        )
        session.execute(Q1_TEXT)
        assert engine.default_strategy.batch_checks

    def test_auto_delegate_honors_override_without_mutation(self, school):
        engine = GlobalQueryEngine(school)
        auto = engine.registry.create("AUTO")
        engine.execute(
            Q1_TEXT, auto, options=engine.options.with_(batch_checks=False)
        )
        assert auto.batch_checks


class TestEngineSession:
    def test_session_defaults_inherit_engine_live(self, school):
        engine = GlobalQueryEngine(school)
        session = engine.session()
        assert session.options == engine.options
        engine.batch_checks = False
        assert not session.options.batch_checks  # inherits live

    def test_session_own_options_are_isolated(self, school):
        engine = GlobalQueryEngine(school)
        session = engine.session(
            options=engine.options.with_(batch_checks=False),
            fault_seed=21,
        )
        assert not session.options.batch_checks
        assert session.options.fault_seed == 21
        assert engine.options.batch_checks
        assert engine.options.fault_seed == 0

    def test_session_default_strategy(self, school):
        engine = GlobalQueryEngine(school)
        session = engine.session(strategy="PL")
        report = session.execute(Q1_TEXT)
        assert report.metrics.strategy == "PL"
        assert engine.default_strategy.name == "BL"

    def test_sessions_autoname_and_repr(self, school):
        engine = GlobalQueryEngine(school)
        first, second = engine.session(), engine.session()
        assert first.name != second.name
        assert first.name in repr(first)

    def test_session_answers_match_engine(self, school):
        engine = GlobalQueryEngine(school)
        session = engine.session()
        assert _digest(session.execute(Q1_TEXT)) == _digest(
            engine.execute(Q1_TEXT)
        )

    def test_session_compare_agreement(self, school):
        engine = GlobalQueryEngine(school)
        outcomes = engine.session().compare(
            Q1_TEXT, strategies=("CA", "BL", "PL")
        )
        assert set(outcomes) == {"CA", "BL", "PL"}

    def test_interleaved_session_deltas_sum_to_global(self, school):
        """Two interleaved workers' cache deltas == the CacheStats delta."""
        engine = GlobalQueryEngine(school)
        alpha, beta = engine.session("alpha"), engine.session("beta")
        before = engine.system.cache_stats()
        # Interleave: A, B, A, B, ...
        for _ in range(3):
            alpha.execute(Q1_TEXT)
            beta.execute(Q1_TEXT, "PL")
        global_delta = engine.system.cache_stats().delta(before)
        assert (alpha.cache.hits + beta.cache.hits) == global_delta.hits
        assert (alpha.cache.misses + beta.cache.misses) == (
            global_delta.misses
        )
        assert alpha.executions == 3 and beta.executions == 3
        # Both workers generated real traffic of both kinds.
        assert alpha.cache.lookups > 0 and beta.cache.lookups > 0

    def test_shared_hit_attribution_across_sessions(self, school):
        """A session reusing another's decomposition pays a shared hit."""
        engine = GlobalQueryEngine(school)
        payer, rider = engine.session("payer"), engine.session("rider")
        payer.execute(Q1_TEXT)
        assert payer.shared_hits == 0
        rider.execute(Q1_TEXT)
        assert rider.shared_hits == 1
        assert engine.system.shared_hits_of("rider") == 1
        assert engine.system.shared_hits_total == 1
        # Re-use by the owner itself is not "shared".
        payer.execute(Q1_TEXT)
        assert payer.shared_hits == 0

    def test_root_execute_attributes_to_main(self, school):
        engine = GlobalQueryEngine(school)
        engine.execute(Q1_TEXT)
        engine.execute(Q1_TEXT)
        session = engine.session("other")
        session.execute(Q1_TEXT)
        assert session.shared_hits == 1  # decompose entry paid by "main"
