"""Fidelity tests: the fixture matches the paper's Figures 1-5 data."""

import pytest

from repro.objectdb.ids import GOid, LOid
from repro.objectdb.values import NULL
from repro.sqlx import parse_query
from repro.workload.paper_example import (
    Q1_TEXT,
    build_school_federation,
    expected_q1_answers,
    figure5_catalog,
)


class TestFigure4Data:
    """Object instances as printed in Figure 4."""

    def test_db1_counts(self, school):
        db1 = school.db("DB1")
        assert db1.count("Student") == 3
        assert db1.count("Teacher") == 3
        assert db1.count("Department") == 2

    def test_db2_counts(self, school):
        db2 = school.db("DB2")
        assert db2.count("Student") == 3
        assert db2.count("Teacher") == 2
        assert db2.count("Address") == 2

    def test_db3_counts(self, school):
        db3 = school.db("DB3")
        assert db3.count("Teacher") == 2
        assert db3.count("Department") == 3

    def test_john_at_db1(self, school):
        john = school.db("DB1").get(LOid("DB1", "s1"))
        assert john.get("s-no") == 804301
        assert john.get("name") == "John"
        assert john.get("age") == 31
        assert john.get("advisor") == LOid("DB1", "t1")
        assert john.get("sex") is NULL  # the '-' in Figure 4(a)

    def test_abel_department_null(self, school):
        abel = school.db("DB1").get(LOid("DB1", "t2"))
        assert abel.get("name") == "Abel"
        assert abel.get("department") is NULL

    def test_john_at_db2(self, school):
        john = school.db("DB2").get(LOid("DB2", "s2'"))
        assert john.get("s-no") == 804301
        assert john.get("sex") == "male"
        assert john.get("address") == LOid("DB2", "a2'")
        assert john.get("advisor") == LOid("DB2", "t2'")

    def test_addresses(self, school):
        a1 = school.db("DB2").get(LOid("DB2", "a1'"))
        assert a1.get("city") == "Taipei"
        a2 = school.db("DB2").get(LOid("DB2", "a2'"))
        assert a2.get("city") == "HsinChu"

    def test_db2_teachers(self, school):
        kelly = school.db("DB2").get(LOid("DB2", "t1'"))
        assert kelly.get("name") == "Kelly"
        assert kelly.get("speciality") == "database"
        jeffery = school.db("DB2").get(LOid("DB2", "t2'"))
        assert jeffery.get("speciality") == "network"

    def test_db3_departments(self, school):
        cs = school.db("DB3").get(LOid("DB3", 'd2"'))
        assert cs.get("name") == "CS"
        assert cs.get("location") is NULL
        ee = school.db("DB3").get(LOid("DB3", 'd1"'))
        assert ee.get("name") == "EE"
        assert ee.get("location") == "building E"

    def test_db3_teachers(self, school):
        abel = school.db("DB3").get(LOid("DB3", 't1"'))
        assert abel.get("department") == LOid("DB3", 'd1"')  # EE!
        kelly = school.db("DB3").get(LOid("DB3", 't2"'))
        assert kelly.get("department") == LOid("DB3", 'd2"')  # CS


class TestFigure5Catalog:
    """GOid mapping tables as printed in Figure 5."""

    @pytest.fixture()
    def catalog(self):
        return figure5_catalog()

    def test_student_table(self, catalog):
        table = catalog.table("Student")
        assert len(table) == 5
        assert table.loids_of(GOid("gs1")) == {
            "DB1": LOid("DB1", "s1"), "DB2": LOid("DB2", "s2'"),
        }
        assert table.loids_of(GOid("gs4")) == {"DB2": LOid("DB2", "s1'")}

    def test_teacher_table(self, catalog):
        table = catalog.table("Teacher")
        assert len(table) == 4
        assert table.loids_of(GOid("gt2")) == {
            "DB1": LOid("DB1", "t2"), "DB3": LOid("DB3", 't1"'),
        }
        assert table.loids_of(GOid("gt4")) == {
            "DB2": LOid("DB2", "t1'"), "DB3": LOid("DB3", 't2"'),
        }

    def test_department_table(self, catalog):
        table = catalog.table("Department")
        assert table.loids_of(GOid("gd1")) == {
            "DB1": LOid("DB1", "d1"), "DB3": LOid("DB3", 'd2"'),
        }
        assert table.loids_of(GOid("gd3")) == {"DB3": LOid("DB3", 'd3"')}

    def test_isomeric_lookup(self, catalog):
        assert catalog.assistants_of("Teacher", LOid("DB1", "t1")) == [
            LOid("DB2", "t2'")
        ]
        assert catalog.assistants_of("Teacher", LOid("DB1", "t3")) == []


class TestFixtureHelpers:
    def test_q1_text_parses(self):
        query = parse_query(Q1_TEXT)
        assert query.range_class == "Student"
        assert len(query.predicates) == 3

    def test_expected_answers_shape(self):
        expected = expected_q1_answers()
        assert expected["certain"] == (("Hedy", "Kelly"),)
        assert expected["maybe"] == (("Tony", "Haley"),)

    def test_builders_are_independent(self):
        a = build_school_federation()
        b = build_school_federation()
        # Mutating one federation's store must not leak into the other.
        from repro.objectdb.objects import LocalObject

        a.db("DB1").insert(
            LocalObject(LOid("DB1", "extra"), "Department", {"name": "XX"})
        )
        assert b.db("DB1").count("Department") == 2
