"""Tests for the observability layer: spans, registry, exporters,
utilization, and the ExecutionReport facade."""

import json

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.report import ExecutionReport
from repro.obs import (
    MetricsRegistry,
    Trace,
    compute_utilization,
    trace_from_jsonl,
)
from repro.obs.registry import Counter, Gauge, Histogram
from repro.obs.spans import Span, TraceEvent
from repro.sim.taskgraph import PHASE_I, PHASE_O, PHASE_P
from repro.workload.paper_example import Q1_TEXT


def overlapping(a: Span, b: Span) -> bool:
    """Strictly overlapping windows (both with positive duration)."""
    return (
        a.duration > 0 and b.duration > 0
        and a.start < b.finish and b.start < a.finish
    )


@pytest.fixture()
def pl_report(school_engine) -> ExecutionReport:
    return school_engine.execute(Q1_TEXT, strategy="PL")


class TestExecutionReport:
    def test_execute_returns_report(self, school_engine):
        report = school_engine.execute(Q1_TEXT, strategy="BL")
        assert isinstance(report, ExecutionReport)
        # Still quacks like the old StrategyResult.
        assert report.total_time == report.metrics.total_time
        assert report.response_time == report.metrics.response_time
        assert len(report.results.certain) == 1

    def test_trace_matches_metrics(self, pl_report):
        trace = pl_report.trace
        assert trace.strategy == "PL"
        assert trace.query_text == Q1_TEXT
        assert trace.spans == pl_report.metrics.spans
        assert trace.response_time == pytest.approx(
            pl_report.metrics.response_time
        )

    def test_to_dict_is_json_serializable(self, pl_report):
        dumped = json.loads(json.dumps(pl_report.to_dict()))
        assert dumped["strategy"] == "PL"
        assert dumped["answers"]["certain"] == 1
        assert dumped["metrics"]["spans.count"] == len(pl_report.trace.spans)

    def test_trace_round_trips_through_jsonl(self, pl_report):
        trace = pl_report.trace
        rebuilt = trace_from_jsonl(trace.to_jsonl())
        assert rebuilt.strategy == trace.strategy
        assert rebuilt.query_text == trace.query_text
        assert sorted(rebuilt.spans, key=lambda s: s.index) == sorted(
            trace.spans, key=lambda s: s.index
        )
        assert rebuilt.events == trace.events

    def test_trace_round_trips_through_dict(self, pl_report):
        trace = pl_report.trace
        rebuilt = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert rebuilt == trace

    def test_explain_renders_without_reexecuting(self, school, pl_report):
        engine = GlobalQueryEngine(school)

        class Exploding:
            name = "BOOM"

            def execute(self, _system, _query):  # pragma: no cover
                raise AssertionError("explain() re-executed the query")

        engine.default_strategy = Exploding()
        text = engine.explain(pl_report)
        assert "strategy PL" in text
        assert "busy time per phase" in text
        assert "critical path" in text

    def test_explain_query_executes_once(self, school):
        calls = []
        engine = GlobalQueryEngine(school)
        original = engine.execute

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        engine.execute = counting
        engine.explain(Q1_TEXT, "BL")
        assert len(calls) == 1


class TestMetricsRegistry:
    def test_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(3.5)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("lat").observe(value)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 3.5
        assert snap["lat"]["count"] == 4
        assert snap["lat"]["mean"] == pytest.approx(2.5)
        assert registry.histogram("lat").percentile(50) == 3.0

    def test_name_collision_across_types(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)

    def test_report_registry_subsumes_work_counters(self, pl_report):
        snap = pl_report.registry.snapshot()
        work = pl_report.metrics.work
        assert snap["work.bytes_network"] == work.bytes_network
        assert snap["work.comparisons"] == work.comparisons
        assert snap["work.assistants_checked"] == work.assistants_checked
        assert snap["answers.certain"] == pl_report.metrics.certain_results
        assert snap["time.response"] == pytest.approx(
            pl_report.metrics.response_time
        )


class TestChromeExport:
    def test_schema(self, pl_report):
        raw = pl_report.trace.to_chrome_json()
        doc = json.loads(raw)
        events = doc["traceEvents"]
        assert doc["otherData"]["strategy"] == "PL"
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "no complete events exported"
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] >= 1
            assert event["tid"] >= 1
        # Complete events are sorted by timestamp.
        stamps = [e["ts"] for e in complete]
        assert stamps == sorted(stamps)

    def test_pid_per_site_tid_per_resource(self, pl_report):
        doc = pl_report.trace.to_chrome()
        events = doc["traceEvents"]
        site_pids = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # One distinct pid per site, and every span's pid matches its site.
        assert len(set(site_pids.values())) == len(site_pids)
        for event in events:
            if event["ph"] != "X":
                continue
            assert site_pids[f"site {event['args']['site']}"] == event["pid"]

    def test_instant_events_for_engine_bookkeeping(self, school):
        engine = GlobalQueryEngine(school)
        report = engine.execute(Q1_TEXT, strategy="BL-S")
        doc = report.trace.to_chrome()
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "signatures.build" for e in instants)


class TestUtilization:
    def test_busy_within_window(self, pl_report):
        util = pl_report.utilization
        assert util.window == pytest.approx(pl_report.metrics.response_time)
        for profile in util.resources.values():
            assert profile.busy <= util.window + 1e-9
            assert profile.queue_delay >= 0.0
        for site in util.sites.values():
            assert 0.0 <= site.utilization(util.window) <= 1.0 + 1e-9

    def test_site_busy_matches_metrics(self, pl_report):
        util = pl_report.utilization
        for site, busy in pl_report.metrics.site_busy.items():
            assert util.sites[site].busy == pytest.approx(busy)

    def test_critical_path_spans_the_window(self, pl_report):
        util = pl_report.utilization
        path = util.critical_path
        assert path, "empty critical path"
        assert path[-1].finish == pytest.approx(util.window)
        # Walking backwards, each hop starts no later than its successor.
        for earlier, later in zip(path, path[1:]):
            assert earlier.start <= later.start + 1e-12

    def test_standalone_compute(self):
        spans = (
            Span(0, "a", "P", "S1", "S1:cpu", 0.0, 1.0),
            Span(1, "b", "O", "S1", "S1:disk", 0.5, 2.0, deps=(0,)),
        )
        util = compute_utilization(spans)
        assert util.window == pytest.approx(2.0)
        assert util.sites["S1"].busy == pytest.approx(2.5)


class TestPhaseOrderingInvariants:
    """The paper's phase orders, checked on the span timeline."""

    def test_ca_checks_before_evaluation(self, school_engine):
        trace = school_engine.execute(Q1_TEXT, strategy="CA").trace
        integration = trace.phase_spans(PHASE_I)
        evaluation = trace.phase_spans(PHASE_P)
        assert integration and evaluation
        assert max(s.finish for s in integration) <= min(
            s.start for s in evaluation
        ) + 1e-12

    def test_bl_evaluates_before_checking(self, school_engine):
        trace = school_engine.execute(Q1_TEXT, strategy="BL").trace
        for site in trace.sites():
            evaluation = [
                s for s in trace.site_spans(site) if s.phase == PHASE_P
            ]
            checks = [s for s in trace.site_spans(site) if s.phase == PHASE_O]
            if not evaluation or not checks:
                continue
            assert max(s.finish for s in evaluation) <= min(
                s.start for s in checks
            ) + 1e-12

    def test_pl_overlaps_checks_with_evaluation(self, school_engine):
        trace = school_engine.execute(Q1_TEXT, strategy="PL").trace
        o_spans = trace.phase_spans(PHASE_O)
        p_spans = trace.phase_spans(PHASE_P)
        assert any(
            overlapping(o, p) for o in o_spans for p in p_spans
        ), "PL shows no O||P overlap"

    def test_certification_is_last(self, school_engine):
        # CA is O>I>P (evaluation after the outerjoin), so "certify
        # finishes last" is a localized-strategy invariant.
        for name in ("BL", "PL"):
            trace = school_engine.execute(Q1_TEXT, strategy=name).trace
            integration = trace.phase_spans(PHASE_I)
            assert integration
            others = [s for s in trace.spans if s.phase != PHASE_I]
            assert max(s.finish for s in integration) >= max(
                s.finish for s in others
            ) - 1e-12


class TestGantt:
    def test_gantt_from_report(self, pl_report):
        text = pl_report.trace.gantt()
        assert "PL_C1 scan" in text
        assert "#" in text

    def test_events_rendered(self):
        trace = Trace(
            strategy="X",
            spans=(Span(0, "work", "P", "S", "S:cpu", 0.0, 1.0),),
            events=(TraceEvent.of("note", detail="hello"),),
        )
        assert "(event) note" in trace.gantt()
