"""Unit tests for the query model (Path, Predicate, Query)."""

import pytest

from repro.core.query import Op, Path, Predicate, Query
from repro.errors import QueryError
from repro.objectdb.schema import ClassDef, Schema, complex_attr, primitive


def chain_schema() -> Schema:
    return Schema(
        [
            ClassDef.of(
                "A",
                [primitive("x"), primitive("tags", multi_valued=True),
                 complex_attr("ref", "B")],
            ),
            ClassDef.of("B", [primitive("y"), complex_attr("ref", "C")]),
            ClassDef.of("C", [primitive("z")]),
        ]
    )


class TestPath:
    def test_parse(self):
        assert Path.parse("a.b.c").steps == ("a", "b", "c")

    def test_of(self):
        assert Path.of("a", "b") == Path(("a", "b"))

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Path(())
        with pytest.raises(QueryError):
            Path.parse("")

    def test_invalid_steps_rejected(self):
        with pytest.raises(QueryError):
            Path(("a", ""))

    def test_nested_flags(self):
        assert Path.parse("a.b").is_nested
        assert not Path.parse("a").is_nested

    def test_prefix(self):
        assert Path.parse("a.b.c").prefix == Path.parse("a.b")
        with pytest.raises(QueryError):
            _ = Path.parse("a").prefix

    def test_accessors(self):
        path = Path.parse("a.b.c")
        assert path.first == "a"
        assert path.last == "c"
        assert len(path) == 3
        assert str(path) == "a.b.c"

    def test_ordering_and_hash(self):
        assert Path.parse("a.b") < Path.parse("a.c")
        assert len({Path.parse("a"), Path.parse("a")}) == 1


class TestPredicate:
    def test_of_with_string_op(self):
        pred = Predicate.of("ref.y", "=", 5)
        assert pred.op is Op.EQ
        assert pred.path == Path.parse("ref.y")

    def test_of_with_enum_op(self):
        assert Predicate.of("x", Op.LT, 5).op is Op.LT

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Predicate.of("x", "~", 5)

    def test_str(self):
        assert str(Predicate.of("x", "<", 5)) == "x < 5"


class TestQueryConstruction:
    def test_conjunctive(self):
        query = Query.conjunctive("A", ["x", "ref.y"], [Predicate.of("x", "=", 1)])
        assert query.is_conjunctive
        assert query.predicates == (Predicate.of("x", "=", 1),)
        assert query.targets == (Path.parse("x"), Path.parse("ref.y"))

    def test_conjunctive_no_predicates(self):
        query = Query.conjunctive("A", ["x"])
        assert query.where == ()
        assert query.predicates == ()

    def test_disjunctive(self):
        query = Query.disjunctive(
            "A",
            ["x"],
            [[Predicate.of("x", "=", 1)], [Predicate.of("ref.y", "=", 2)]],
        )
        assert not query.is_conjunctive
        with pytest.raises(QueryError):
            _ = query.predicates

    def test_all_predicates_dedupes(self):
        p = Predicate.of("x", "=", 1)
        q = Predicate.of("ref.y", "=", 2)
        query = Query.disjunctive("A", ["x"], [[p, q], [p]])
        assert query.all_predicates() == (p, q)

    def test_all_paths_dedupes(self):
        query = Query.conjunctive("A", ["x", "x"], [Predicate.of("x", "=", 1)])
        assert query.all_paths() == (Path.parse("x"),)


class TestQueryValidation:
    def test_valid(self):
        query = Query.conjunctive(
            "A", ["x"], [Predicate.of("ref.ref.z", "=", 1)]
        )
        query.validate(chain_schema())

    def test_unknown_range_class(self):
        query = Query.conjunctive("Nope", ["x"])
        with pytest.raises(QueryError):
            query.validate(chain_schema())

    def test_bad_path(self):
        query = Query.conjunctive("A", ["nope"])
        with pytest.raises(QueryError):
            query.validate(chain_schema())

    def test_predicate_on_complex_attribute_rejected(self):
        query = Query.conjunctive("A", ["x"], [Predicate.of("ref", "=", 1)])
        with pytest.raises(QueryError):
            query.validate(chain_schema())

    def test_contains_requires_multivalued(self):
        bad = Query.conjunctive("A", ["x"], [Predicate.of("x", "contains", 1)])
        with pytest.raises(QueryError):
            bad.validate(chain_schema())
        good = Query.conjunctive("A", ["x"], [Predicate.of("tags", "contains", 1)])
        good.validate(chain_schema())


class TestBranchClasses:
    def test_simple(self):
        query = Query.conjunctive("A", ["x"], [Predicate.of("ref.ref.z", "=", 1)])
        assert query.branch_classes(chain_schema()) == ("B", "C")

    def test_no_branches(self):
        query = Query.conjunctive("A", ["x"])
        assert query.branch_classes(chain_schema()) == ()

    def test_projected_complex_target(self):
        query = Query.conjunctive("A", ["ref"])
        assert query.branch_classes(chain_schema()) == ("B",)


class TestQueryStr:
    def test_conjunctive_str(self):
        query = Query.conjunctive("A", ["x"], [Predicate.of("x", "<", 5)])
        assert str(query) == "Select X.x From A X Where X.x < 5"

    def test_no_where(self):
        assert str(Query.conjunctive("A", ["x"])) == "Select X.x From A X"

    def test_disjunctive_str(self):
        query = Query.disjunctive(
            "A", ["x"], [[Predicate.of("x", "=", 1)], [Predicate.of("x", "=", 2)]]
        )
        assert "or" in str(query)
