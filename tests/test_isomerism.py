"""Unit tests for isomeric-object discovery."""

import pytest

from repro.errors import MappingError
from repro.integration.isomerism import (
    ConstituentRef,
    discover_isomerism,
    isomerism_ratio,
    table_from_correspondences,
)
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, primitive
from repro.objectdb.values import NULL
from repro.workload.paper_example import build_school_federation, figure5_catalog


def make_db(name, keys):
    schema = ComponentSchema.of(
        name, [ClassDef.of("C", [primitive("k"), primitive("v")])]
    )
    db = ComponentDatabase(schema)
    for index, key in enumerate(keys):
        db.insert(
            LocalObject(
                LOid(name, f"o{index}"), "C",
                {"k": key} if key is not None else {"k": NULL},
            )
        )
    return db


class TestDiscovery:
    def test_matches_equal_keys(self):
        dbs = {
            "DB1": make_db("DB1", [10, 20]),
            "DB2": make_db("DB2", [20, 30]),
        }
        table = discover_isomerism(
            "C",
            [ConstituentRef("DB1", "C"), ConstituentRef("DB2", "C")],
            dbs,
            key_attribute="k",
        )
        # Entities: 10, 20 (shared), 30.
        assert len(table) == 3
        shared = [g for g, row in table.entries() if len(row) == 2]
        assert len(shared) == 1

    def test_null_keys_get_singleton_goids(self):
        dbs = {"DB1": make_db("DB1", [None, None])}
        table = discover_isomerism(
            "C", [ConstituentRef("DB1", "C")], dbs, key_attribute="k"
        )
        assert len(table) == 2

    def test_same_key_in_one_db_stays_distinct(self):
        dbs = {"DB1": make_db("DB1", [5, 5])}
        table = discover_isomerism(
            "C", [ConstituentRef("DB1", "C")], dbs, key_attribute="k"
        )
        assert len(table) == 2

    def test_deterministic(self):
        dbs = {
            "DB1": make_db("DB1", [1, 2, 3]),
            "DB2": make_db("DB2", [3, 4]),
        }
        refs = [ConstituentRef("DB1", "C"), ConstituentRef("DB2", "C")]
        t1 = discover_isomerism("C", refs, dbs, "k")
        t2 = discover_isomerism("C", refs, dbs, "k")
        assert dict(t1.entries()) == dict(t2.entries())

    def test_absent_class_skipped(self):
        dbs = {"DB1": make_db("DB1", [1])}
        table = discover_isomerism(
            "C",
            [ConstituentRef("DB1", "C"), ConstituentRef("DB1", "Ghost")],
            dbs,
            key_attribute="k",
        )
        assert len(table) == 1


class TestCorrespondences:
    def test_empty_loids_rejected(self):
        with pytest.raises(MappingError):
            table_from_correspondences("C", [(GOid("g"), [])])

    def test_build(self):
        table = table_from_correspondences(
            "C", [(GOid("g1"), [LOid("DB1", "a"), LOid("DB2", "b")])]
        )
        assert table.goid_of(LOid("DB1", "a")) == GOid("g1")


class TestIsomerismRatio:
    def test_ratio(self):
        table = table_from_correspondences(
            "C",
            [
                (GOid("g1"), [LOid("DB1", "a"), LOid("DB2", "b")]),
                (GOid("g2"), [LOid("DB1", "c")]),
            ],
        )
        assert isomerism_ratio(table) == pytest.approx(0.5)

    def test_empty_table(self):
        assert isomerism_ratio(table_from_correspondences("C", [])) == 0.0


class TestSchoolDiscovery:
    def test_discovery_agrees_with_figure5(self):
        """Key-based discovery reconstructs the paper's Figure 5 tables
        (up to GOid renaming)."""
        discovered = build_school_federation(discover=True).catalog
        printed = figure5_catalog()
        for class_name in ("Student", "Teacher", "Department", "Address"):
            groups_discovered = {
                frozenset(row.values())
                for _g, row in discovered.table(class_name).entries()
            }
            groups_printed = {
                frozenset(row.values())
                for _g, row in printed.table(class_name).entries()
            }
            assert groups_discovered == groups_printed, class_name
