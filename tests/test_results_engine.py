"""Unit tests for result sets, the engine facade and the system builder."""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.query import Path, Predicate, Query
from repro.core.results import GlobalResult, ResultKind, ResultSet, same_answers
from repro.core.strategies import (
    ALL_STRATEGIES,
    BasicLocalizedStrategy,
    strategy_by_name,
)
from repro.core.system import DistributedSystem
from repro.errors import ReproError, SchemaError
from repro.objectdb.ids import GOid
from repro.objectdb.values import NULL
from repro.workload.paper_example import (
    Q1_TEXT,
    _db1,
    _db2,
    _db3,
    correspondences,
)


def result(goid, kind=ResultKind.CERTAIN, **bindings):
    return GlobalResult(
        goid=GOid(goid),
        kind=kind,
        bindings={Path.parse(k): v for k, v in bindings.items()},
    )


class TestResultSet:
    def test_add_routes_by_kind(self):
        rs = ResultSet(targets=(Path.parse("a"),))
        rs.add(result("g1", a=1))
        rs.add(result("g2", ResultKind.MAYBE, a=2))
        assert len(rs.certain) == 1
        assert len(rs.maybe) == 1
        assert len(rs) == 2

    def test_rows_sorted_and_projected(self):
        rs = ResultSet(targets=(Path.parse("a"),))
        rs.add(result("g2", a="z"))
        rs.add(result("g1", a="a"))
        assert rs.certain_rows() == [("a",), ("z",)]

    def test_rows_tolerate_nulls_and_mixed_types(self):
        rs = ResultSet(targets=(Path.parse("a"),))
        rs.add(result("g1", a=NULL))
        rs.add(result("g2", a=3))
        rs.add(result("g3", a="x"))
        rows = rs.certain_rows()
        assert len(rows) == 3
        assert rows[-1] == (NULL,)  # nulls sort last

    def test_missing_target_binds_null(self):
        rs = ResultSet(targets=(Path.parse("a"), Path.parse("b")))
        rs.add(result("g1", a=1))
        assert rs.certain_rows() == [(1, NULL)]

    def test_find_and_sort(self):
        rs = ResultSet()
        rs.add(result("g2"))
        rs.add(result("g1"))
        rs.sort()
        assert [r.goid.value for r in rs.certain] == ["g1", "g2"]
        assert rs.find(GOid("g2")) is not None
        assert rs.find(GOid("zz")) is None

    def test_summary(self):
        rs = ResultSet()
        rs.add(result("g1"))
        assert "1 certain" in rs.summary()

    def test_same_answers(self):
        a, b = ResultSet(), ResultSet()
        a.add(result("g1"))
        b.add(result("g1"))
        assert same_answers(a, b)
        b.add(result("g2", ResultKind.MAYBE))
        assert not same_answers(a, b)

    def test_same_answers_compares_bindings(self):
        # Regression: the old check compared GOid membership only, so
        # two strategies binding different values still "agreed".
        from repro.core.results import same_entities

        targets = (Path.parse("a"),)
        a = ResultSet(targets=targets)
        b = ResultSet(targets=targets)
        a.add(result("g1", a=1))
        b.add(result("g1", a=2))
        assert same_entities(a, b)
        assert not same_answers(a, b)

    def test_same_answers_compares_unsolved(self):
        from repro.core.query import Op, Predicate
        from repro.core.results import same_entities

        pred = Predicate(Path.parse("a"), Op.EQ, 1)
        a, b = ResultSet(), ResultSet()
        a.add(result("g1", ResultKind.MAYBE))
        maybe = result("g1", ResultKind.MAYBE)
        b.add(GlobalResult(
            goid=maybe.goid, kind=maybe.kind,
            bindings=maybe.bindings, unsolved=(pred,),
        ))
        assert same_entities(a, b)
        assert not same_answers(a, b)

    def test_same_answers_ignores_projection_irrelevant_bindings(self):
        # Only projected targets participate in the comparison.
        targets = (Path.parse("a"),)
        a = ResultSet(targets=targets)
        b = ResultSet(targets=targets)
        a.add(result("g1", a=1, hidden=5))
        b.add(result("g1", a=1, hidden=6))
        assert same_answers(a, b)

    def test_scalar_vs_wrapped_multivalue_differ(self):
        # The fuzzer-found divergence: one side wrapped a single value
        # in MultiValue, the other bound the bare scalar.
        from repro.objectdb.values import MultiValue

        targets = (Path.parse("a"),)
        a = ResultSet(targets=targets)
        b = ResultSet(targets=targets)
        a.add(result("g1", a=MultiValue([7])))
        b.add(result("g1", a=7))
        assert not same_answers(a, b)


class TestStrategyRegistry:
    def test_lookup_by_name(self):
        assert strategy_by_name("bl").name == "BL"
        assert strategy_by_name("PL-S").name == "PL-S"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            strategy_by_name("nope")

    def test_all_strategies_have_unique_names(self):
        names = [cls.name for cls in ALL_STRATEGIES]
        assert len(names) == len(set(names)) == 5

    def test_repr(self):
        assert "BL" in repr(BasicLocalizedStrategy())


class TestSystemBuilder:
    def test_duplicate_db_names_rejected(self):
        db = _db1()
        with pytest.raises(SchemaError):
            DistributedSystem.build([db, db], correspondences())

    def test_build_discovers_catalog(self):
        system = DistributedSystem.build(
            [_db1(), _db2(), _db3()], correspondences()
        )
        assert len(system.catalog.table("Student")) == 5

    def test_site_names(self, school):
        assert school.site_names == ("DB1", "DB2", "DB3")

    def test_simulator_sites(self, school):
        fed = school.simulator()
        assert set(fed.sites) == {"DB1", "DB2", "DB3", "GPS"}

    def test_build_signatures(self, school):
        catalog = school.build_signatures()
        assert school.signatures is catalog
        from repro.objectdb.ids import LOid

        assert catalog.lookup("Teacher", LOid("DB2", "t1'")) is not None


class TestEngine:
    def test_default_strategy(self, school):
        engine = GlobalQueryEngine(school, default_strategy="CA")
        assert engine.default_strategy.name == "CA"
        outcome = engine.execute(Q1_TEXT)
        assert outcome.metrics.strategy == "CA"

    def test_strategy_instance_accepted(self, school):
        engine = GlobalQueryEngine(school)
        outcome = engine.execute(Q1_TEXT, BasicLocalizedStrategy())
        assert outcome.metrics.strategy == "BL"

    def test_parse(self, school_engine):
        query = school_engine.parse(Q1_TEXT)
        assert query.range_class == "Student"

    def test_query_object_accepted(self, school_engine):
        query = Query.conjunctive(
            "Student", ["name"], [Predicate.of("sex", "=", "female")]
        )
        outcome = school_engine.execute(query, "CA")
        names = {row[0] for row in outcome.results.certain_rows()}
        assert names == {"Mary", "Hedy", "Fanny"}
        # John's sex is null in DB1 but male in DB2 -> integrated certain
        # non-match; Tony male -> eliminated.
        assert outcome.results.maybe_rows() == []

    def test_compare_checks_agreement(self, school_engine):
        outcomes = school_engine.compare(Q1_TEXT)
        assert set(outcomes) == {"CA", "BL", "PL"}

    def test_compare_detects_disagreement(self, school_engine, monkeypatch):
        from repro.core.strategies.centralized import CentralizedStrategy

        real = CentralizedStrategy.execute

        def broken(self, system, query):
            outcome = real(self, system, query)
            outcome.results.certain.clear()
            return outcome

        monkeypatch.setattr(CentralizedStrategy, "execute", broken)
        with pytest.raises(ReproError):
            school_engine.compare(Q1_TEXT)


class TestResultExport:
    def test_to_dicts(self, school_engine):
        from repro.workload.paper_example import Q1_TEXT

        outcome = school_engine.execute(Q1_TEXT, "BL")
        rows = outcome.results.to_dicts()
        assert len(rows) == 2
        by_kind = {row["kind"]: row for row in rows}
        assert by_kind["certain"]["name"] == "Hedy"
        assert by_kind["maybe"]["name"] == "Tony"
        assert "unsolved" in by_kind["maybe"]
        assert "unsolved" not in by_kind["certain"]

    def test_to_dicts_nulls_and_multivalues(self):
        from repro.core.query import Path
        from repro.objectdb.values import MultiValue, NULL

        rs = ResultSet(targets=(Path.parse("a"), Path.parse("b")))
        rs.add(result("g1", a=NULL, b=MultiValue(["y", "x"])))
        row = rs.to_dicts()[0]
        assert row["a"] is None
        assert row["b"] == ["x", "y"]

    def test_to_json_parses(self, school_engine):
        import json

        from repro.workload.paper_example import Q1_TEXT

        outcome = school_engine.execute(Q1_TEXT, "CA")
        parsed = json.loads(outcome.results.to_json())
        assert {row["kind"] for row in parsed} == {"certain", "maybe"}

    def test_to_json_round_trips_multivalues_and_references(self):
        # Regression: to_json used ``default=str``, so MultiValue
        # members and GOid references serialized as repr strings that
        # did not round-trip: json.loads(to_json()) != to_dicts().
        import json

        from repro.core.query import Path
        from repro.objectdb.ids import GOid, LOid
        from repro.objectdb.values import MultiValue

        rs = ResultSet(targets=(Path.parse("a"), Path.parse("b")))
        rs.add(result(
            "g1",
            a=MultiValue([3, 1, 2]),
            b=GOid("g9"),
        ))
        rs.add(result("g2", a=LOid("DB1", "x7"), b=MultiValue([])))
        assert json.loads(rs.to_json()) == rs.to_dicts()
        row = rs.to_dicts()[0]
        assert row["a"] == [1, 2, 3]
        assert row["b"] == "g9"

    def test_export_value_canonical_forms(self):
        from repro.core.results import export_value
        from repro.objectdb.ids import GOid
        from repro.objectdb.values import MultiValue, NULL

        assert export_value(NULL) is None
        assert export_value(MultiValue(["b", "a"])) == ["a", "b"]
        assert export_value(GOid("g3")) == "g3"
        assert export_value(7) == 7
        assert export_value(MultiValue([GOid("g2"), GOid("g1")])) == [
            "g1", "g2"
        ]


class TestAvailabilityExport:
    def test_retry_counts_summed_per_site(self):
        # Regression: the old dict comprehension kept only the last
        # (site, count) pair, silently dropping duplicate sites.
        from repro.core.results import Availability

        availability = Availability(
            complete=False,
            sites_skipped=("DB3",),
            retries=(("DB2", 1), ("DB2", 2), ("DB1", 4)),
        )
        exported = availability.to_dict()
        assert exported["retries"] == {"DB1": 4, "DB2": 3}
        assert exported["sites_skipped"] == ["DB3"]

    def test_fault_free_export(self):
        from repro.core.results import Availability

        assert Availability().to_dict()["retries"] == {}
