"""Randomized strategy-equivalence and metric-invariant tests.

The load-bearing property of the whole system: CA, BL, PL and the
signature variants implement identical query semantics — over any
generated federation they must return the same certain and the same
maybe entities.  Costs may differ, but in paper-prescribed directions.
"""

import pytest

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers

SEEDS = [3, 11, 23, 47, 91]


@pytest.fixture(scope="module")
def executed():
    """Execute all strategies over several generated workloads once."""
    runs = []
    for seed in SEEDS:
        workload = make_workload(seed=seed, scale=0.02)
        engine = GlobalQueryEngine(workload.system)
        outcomes = {
            name: engine.execute(workload.query, name)
            for name in ("CA", "BL", "PL", "BL-S", "PL-S")
        }
        runs.append((workload, outcomes))
    return runs


class TestEquivalence:
    @pytest.mark.parametrize("other", ["BL", "PL", "BL-S", "PL-S"])
    def test_same_answers_as_ca(self, executed, other):
        for workload, outcomes in executed:
            assert same_answers(
                outcomes["CA"].results, outcomes[other].results
            ), f"seed failed: {workload.params.seed}"

    def test_bindings_refine_toward_ca(self, executed):
        """CA's bindings are at least as complete: the localized protocol
        ships verdicts, not values, so a nested target whose value only
        multi-site integration can assemble binds NULL in BL — but a
        non-null localized binding always agrees with CA's."""
        from repro.objectdb.values import is_null

        for _workload, outcomes in executed:
            ca = {r.goid: r for r in outcomes["CA"].results.certain}
            bl = {r.goid: r for r in outcomes["BL"].results.certain}
            for goid, ca_result in ca.items():
                for target, value in ca_result.bindings.items():
                    bl_value = bl[goid].bindings.get(target)
                    if not is_null(bl_value):
                        assert bl_value == value
                    # CA never loses a value BL found.
                    if is_null(value):
                        assert is_null(bl_value)

    def test_maybe_unsolved_nonempty(self, executed):
        for _workload, outcomes in executed:
            for result in outcomes["BL"].results.maybe:
                assert result.unsolved


class TestCostInvariants:
    def test_bl_total_at_most_pl(self, executed):
        for workload, outcomes in executed:
            assert (
                outcomes["BL"].total_time
                <= outcomes["PL"].total_time * 1.001
            ), workload.params.seed

    def test_response_at_most_total(self, executed):
        for _workload, outcomes in executed:
            for outcome in outcomes.values():
                assert outcome.response_time <= outcome.total_time + 1e-12

    def test_signatures_never_increase_network(self, executed):
        for _workload, outcomes in executed:
            assert (
                outcomes["BL-S"].metrics.work.bytes_network
                <= outcomes["BL"].metrics.work.bytes_network
            )
            assert (
                outcomes["PL-S"].metrics.work.bytes_network
                <= outcomes["PL"].metrics.work.bytes_network
            )

    def test_pl_looks_up_at_least_bl(self, executed):
        """PL probes the mapping tables for every object with missing
        data, BL only for surviving maybe rows."""
        for _workload, outcomes in executed:
            assert (
                outcomes["PL"].metrics.work.assistants_looked_up
                >= outcomes["BL"].metrics.work.assistants_looked_up
            )

    def test_localized_ship_less_than_ca_when_selective(self, executed):
        """BL ships survivors only — less than CA's everything, *unless*
        the local predicates are unselective (the paper's Figure 11
        effect: localized transfer grows with selectivity)."""
        for _workload, outcomes in executed:
            bl = outcomes["BL"]
            survivors = bl.metrics.certain_results + bl.metrics.maybe_results
            if survivors < bl.metrics.work.objects_scanned * 0.4:
                assert (
                    bl.metrics.work.bytes_network
                    < outcomes["CA"].metrics.work.bytes_network
                )

    def test_work_counters_populated(self, executed):
        for _workload, outcomes in executed:
            ca = outcomes["CA"].metrics.work
            assert ca.objects_scanned > 0
            assert ca.objects_shipped == ca.objects_scanned
            bl = outcomes["BL"].metrics.work
            assert bl.objects_scanned > 0
            assert bl.objects_shipped == 0


class TestDeterminism:
    def test_rerun_identical(self):
        workload = make_workload(seed=5, scale=0.02)
        engine = GlobalQueryEngine(workload.system)
        first = engine.execute(workload.query, "BL")
        second = engine.execute(workload.query, "BL")
        assert first.total_time == second.total_time
        assert first.response_time == second.response_time
        assert same_answers(first.results, second.results)

    def test_regenerated_workload_identical(self):
        a = make_workload(seed=5, scale=0.02)
        b = make_workload(seed=5, scale=0.02)
        engine_a = GlobalQueryEngine(a.system)
        engine_b = GlobalQueryEngine(b.system)
        ra = engine_a.execute(a.query, "CA")
        rb = engine_b.execute(b.query, "CA")
        assert ra.total_time == rb.total_time
        assert same_answers(ra.results, rb.results)


class TestVaryingShapes:
    @pytest.mark.parametrize("n_dbs", [2, 4, 5])
    def test_equivalence_across_db_counts(self, n_dbs):
        workload = make_workload(seed=100 + n_dbs, scale=0.02, n_dbs=n_dbs)
        engine = GlobalQueryEngine(workload.system)
        outcomes = engine.compare(workload.query)  # raises on disagreement
        assert set(outcomes) == {"CA", "BL", "PL"}

    def test_single_class_query(self):
        workload = make_workload(seed=500, scale=0.02, n_classes_range=(1, 1))
        engine = GlobalQueryEngine(workload.system)
        engine.compare(workload.query)

    def test_deep_chain_query(self):
        workload = make_workload(seed=501, scale=0.015, n_classes_range=(4, 4))
        engine = GlobalQueryEngine(workload.system)
        engine.compare(workload.query)

    def test_no_predicates_query(self):
        from repro.core.query import Query

        workload = make_workload(seed=502, scale=0.02, n_classes_range=(2, 2))
        query = Query.conjunctive(
            workload.query.range_class, workload.query.targets, []
        )
        engine = GlobalQueryEngine(workload.system)
        outcomes = engine.compare(query)
        # Without predicates everything is certain.
        assert not outcomes["CA"].results.maybe
        assert len(outcomes["CA"].results.certain) > 0
