"""The hot-path caches: mapping-index memos + decomposition cache.

Covers hit/miss accounting (:class:`CacheStats`), wholesale
invalidation on every mutation path (``MappingTable.add``,
``MappingCatalog.register``, ``DistributedSystem.register_entity``),
and the engine surfacing per-execution cache traffic as ``cache.*``
instruments in the metrics registry.
"""

from __future__ import annotations

from repro.core.engine import GlobalQueryEngine
from repro.integration.mapping import CacheStats, MappingCatalog, MappingTable
from repro.objectdb.ids import GOid, LOid
from repro.workload.paper_example import Q1_TEXT, build_school_federation


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_merge_and_delta(self):
        merged = CacheStats(hits=2, misses=1).merge(CacheStats(hits=1))
        assert (merged.hits, merged.misses) == (3, 1)
        delta = merged.delta(CacheStats(hits=2, misses=1))
        assert (delta.hits, delta.misses) == (1, 0)


class TestMappingTableMemos:
    def _table(self):
        table = MappingTable(global_class="S")
        table.add(GOid("g1"), LOid("DB1", "a"))
        table.add(GOid("g1"), LOid("DB2", "b"))
        table.stats = CacheStats()  # ignore traffic from setup
        return table

    def test_loids_of_miss_then_hit(self):
        table = self._table()
        first = table.loids_of(GOid("g1"))
        assert table.stats.misses == 1 and table.stats.hits == 0
        second = table.loids_of(GOid("g1"))
        assert table.stats.hits == 1
        assert first == second == {"DB1": LOid("DB1", "a"),
                                   "DB2": LOid("DB2", "b")}

    def test_isomeric_miss_then_hit(self):
        table = self._table()
        assert table.isomeric_objects(LOid("DB1", "a")) == [LOid("DB2", "b")]
        assert table.stats.misses == 1
        table.isomeric_objects(LOid("DB1", "a"))
        assert table.stats.hits == 1

    def test_memoized_results_are_copies(self):
        """Callers may mutate what they get back; the memo must not."""
        table = self._table()
        table.loids_of(GOid("g1")).clear()
        assert table.loids_of(GOid("g1"))  # memo intact
        table.isomeric_objects(LOid("DB1", "a")).append(LOid("DB9", "x"))
        assert table.isomeric_objects(LOid("DB1", "a")) == [LOid("DB2", "b")]

    def test_add_invalidates_and_serves_fresh_data(self):
        table = self._table()
        assert table.isomeric_objects(LOid("DB1", "a")) == [LOid("DB2", "b")]
        table.add(GOid("g1"), LOid("DB3", "c"))
        fresh = table.isomeric_objects(LOid("DB1", "a"))
        assert LOid("DB3", "c") in fresh  # not the stale memo
        # The post-mutation lookup re-misses.
        assert table.stats.misses >= 2

    def test_catalog_register_invalidates(self):
        catalog = MappingCatalog()
        table = MappingTable(global_class="S")
        table.add(GOid("g1"), LOid("DB1", "a"))
        table.loids_of(GOid("g1"))
        assert table._loids_memo  # memo warm
        catalog.register(table)
        assert not table._loids_memo  # dropped on install

    def test_catalog_cache_stats_aggregates_tables(self):
        catalog = MappingCatalog()
        for cls in ("S", "T"):
            table = catalog.table(cls)
            table.add(GOid(f"g-{cls}"), LOid("DB1", f"o-{cls}"))
            table.loids_of(GOid(f"g-{cls}"))
            table.loids_of(GOid(f"g-{cls}"))
        stats = catalog.cache_stats()
        assert stats.hits == 2 and stats.misses == 2


class TestDecompositionCache:
    def test_repeat_decompose_hits(self, school):
        query = GlobalQueryEngine(school).parse(Q1_TEXT)
        school.decompose(query)
        before = school.cache_stats()
        cached = school.decompose(query)
        after = school.cache_stats().delta(before)
        assert after.hits == 1 and after.misses == 0
        assert cached is school.decompose(query)

    def test_register_entity_invalidates(self, school):
        query = GlobalQueryEngine(school).parse(Q1_TEXT)
        school.decompose(query)
        version = school.schema_version
        school.register_entity(
            "Student",
            {"DB1": {"name": "Zara", "age": 30},
             "DB2": {"name": "Zara", "sex": "female"}},
        )
        assert school.schema_version > version
        before = school.cache_stats()
        school.decompose(query)
        delta = school.cache_stats().delta(before)
        assert delta.misses == 1  # stale entry was dropped

    def test_cached_decomposition_answers_match(self, school):
        """An execution served from the cache is the same execution."""
        engine = GlobalQueryEngine(school)
        cold = engine.execute(Q1_TEXT, "BL")
        warm = engine.execute(Q1_TEXT, "BL")
        assert cold.results.to_json() == warm.results.to_json()
        assert cold.total_time == warm.total_time

    def test_post_mutation_queries_see_new_entity(self):
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        baseline = len(engine.execute(Q1_TEXT, "BL").results.certain)
        system.register_entity(
            "Student",
            {
                "DB1": {"name": "Zoe", "age": 24,
                        "address": {"city": "Taipei"}},
            },
        )
        after = engine.execute(Q1_TEXT, "BL")
        total = len(after.results.certain) + len(after.results.maybe)
        assert total >= baseline  # the cache never hides new data


class TestEngineSurfacing:
    def test_registry_counts_cache_traffic(self):
        engine = GlobalQueryEngine(build_school_federation())
        cold = engine.execute(Q1_TEXT, "BL")
        warm = engine.execute(Q1_TEXT, "BL")
        cold_snapshot = cold.registry.snapshot()
        warm_snapshot = warm.registry.snapshot()
        assert cold_snapshot["cache.miss"] > 0
        assert warm_snapshot["cache.hit"] > 0
        assert warm_snapshot["cache.hit_rate"] > 0.0
        # Each report carries only its own execution's traffic.
        assert warm_snapshot["cache.miss"] == 0

    def test_work_counters_roundtrip_through_metrics(self):
        engine = GlobalQueryEngine(build_school_federation())
        report = engine.execute(Q1_TEXT, "BL")
        work = report.metrics.work
        assert work.cache_hits + work.cache_misses > 0
        assert 0.0 <= work.cache_hit_rate <= 1.0
