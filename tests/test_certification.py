"""Unit tests for the certification engine (the paper's core rule)."""

import pytest

from repro.core.certification import (
    SATISFIED,
    UNKNOWN_VERDICT,
    VIOLATED,
    CertificationStats,
    VerdictIndex,
    certify,
)
from repro.core.query import Path, Predicate, Query
from repro.core.tvl import TV
from repro.errors import MappingError
from repro.integration.global_schema import ClassCorrespondence, integrate_schemas
from repro.integration.isomerism import table_from_correspondences
from repro.integration.mapping import MappingCatalog
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.local_query import (
    CheckReport,
    LocalResultRow,
    LocalResultSet,
    RowKind,
    UnsolvedItem,
    UnsolvedPredicateOnObject,
)
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import MultiValue, NULL


# --- a minimal two-site federation skeleton for direct certify() calls ----


def make_global_schema():
    db1 = ComponentSchema.of(
        "DB1",
        [
            ClassDef.of("S", [primitive("k"), primitive("a"),
                              complex_attr("ref", "T")]),
            ClassDef.of("T", [primitive("k"), primitive("b")]),
        ],
    )
    db2 = ComponentSchema.of(
        "DB2",
        [
            ClassDef.of("S", [primitive("k"), primitive("a"),
                              complex_attr("ref", "T")]),
            ClassDef.of("T", [primitive("k"), primitive("b")]),
        ],
    )
    return integrate_schemas(
        {"DB1": db1, "DB2": db2},
        [
            ClassCorrespondence.of("S", [("DB1", "S"), ("DB2", "S")], "k"),
            ClassCorrespondence.of("T", [("DB1", "T"), ("DB2", "T")], "k"),
        ],
    )


PRED_A = Predicate.of("a", "=", 1)
PRED_B = Predicate.of("ref.b", "=", 2)
QUERY = Query.conjunctive("S", ["k"], [PRED_A, PRED_B])


def make_catalog(student_rows, teacher_rows=()):
    catalog = MappingCatalog()
    catalog.register(table_from_correspondences("S", student_rows))
    catalog.register(table_from_correspondences("T", teacher_rows))
    return catalog


def row(db, loid_value, status, unsolved=(), items=(), kind=RowKind.MAYBE,
        bindings=None):
    return LocalResultRow(
        loid=LOid(db, loid_value),
        class_name="S",
        kind=kind,
        bindings=bindings or {},
        unsolved=tuple(unsolved),
        unsolved_items=tuple(items),
        predicate_status=status,
    )


def results(db, *rows):
    return LocalResultSet(db_name=db, range_class="S", rows=list(rows))


class TestVerdictIndex:
    def test_violated_wins_over_satisfied(self):
        index = VerdictIndex()
        index.add(LOid("DB1", "x"), PRED_A, SATISFIED)
        index.add(LOid("DB1", "x"), PRED_A, VIOLATED)
        assert index.get(LOid("DB1", "x"), PRED_A) == VIOLATED
        index.add(LOid("DB1", "x"), PRED_A, SATISFIED)
        assert index.get(LOid("DB1", "x"), PRED_A) == VIOLATED

    def test_known_beats_unknown(self):
        index = VerdictIndex()
        index.add(LOid("DB1", "x"), PRED_A, UNKNOWN_VERDICT)
        index.add(LOid("DB1", "x"), PRED_A, SATISFIED)
        assert index.get(LOid("DB1", "x"), PRED_A) == SATISFIED

    def test_add_report(self):
        report = CheckReport(
            db_name="DB1",
            class_name="T",
            satisfied={PRED_A: (LOid("DB1", "a"),)},
            violated={PRED_A: (LOid("DB1", "b"),)},
            unknown={PRED_A: (LOid("DB1", "c"),)},
        )
        index = VerdictIndex()
        index.add_report(report)
        assert index.get(LOid("DB1", "a"), PRED_A) == SATISFIED
        assert index.get(LOid("DB1", "b"), PRED_A) == VIOLATED
        assert index.get(LOid("DB1", "c"), PRED_A) == UNKNOWN_VERDICT
        assert len(index) == 3

    def test_missing_is_none(self):
        assert VerdictIndex().get(LOid("DB1", "x"), PRED_A) is None


class TestAbsenceRule:
    def test_isomeric_filtered_elsewhere_eliminates(self):
        """The paper's s1/John case: copy at DB2 failed local predicates."""
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1"), LOid("DB2", "s1x")])]
        )
        stats = CertificationStats()
        answer = certify(
            QUERY, gs, catalog,
            {
                "DB1": results("DB1", row("DB1", "s1",
                                          {PRED_A: TV.UNKNOWN, PRED_B: TV.TRUE})),
                "DB2": results("DB2"),  # s1x did not survive
            },
            VerdictIndex(), stats,
        )
        assert len(answer) == 0
        assert stats.eliminated_by_absence == 1

    def test_not_placed_elsewhere_stays(self):
        gs = make_global_schema()
        catalog = make_catalog([(GOid("g1"), [LOid("DB1", "s1")])])
        answer = certify(
            QUERY, gs, catalog,
            {
                "DB1": results("DB1", row("DB1", "s1",
                                          {PRED_A: TV.UNKNOWN, PRED_B: TV.TRUE})),
                "DB2": results("DB2"),
            },
            VerdictIndex(),
        )
        assert len(answer.maybe) == 1


class TestStatusMerge:
    def test_true_elsewhere_resolves(self):
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1"), LOid("DB2", "s1x")])]
        )
        answer = certify(
            QUERY, gs, catalog,
            {
                "DB1": results("DB1", row("DB1", "s1",
                                          {PRED_A: TV.UNKNOWN, PRED_B: TV.TRUE})),
                "DB2": results("DB2", row("DB2", "s1x",
                                          {PRED_A: TV.TRUE, PRED_B: TV.UNKNOWN})),
            },
            VerdictIndex(),
        )
        assert len(answer.certain) == 1

    def test_both_unknown_stays_maybe(self):
        gs = make_global_schema()
        catalog = make_catalog([(GOid("g1"), [LOid("DB1", "s1")])])
        answer = certify(
            QUERY, gs, catalog,
            {"DB1": results("DB1", row("DB1", "s1",
                                       {PRED_A: TV.UNKNOWN, PRED_B: TV.UNKNOWN}))},
            VerdictIndex(),
        )
        assert len(answer.maybe) == 1
        assert set(answer.maybe[0].unsolved) == {PRED_A, PRED_B}

    def test_unmapped_row_raises(self):
        gs = make_global_schema()
        catalog = make_catalog([])
        with pytest.raises(MappingError):
            certify(
                QUERY, gs, catalog,
                {"DB1": results("DB1", row("DB1", "ghost", {}))},
                VerdictIndex(),
            )


class TestCertificationRule:
    def make_item(self, pred=PRED_B):
        return UnsolvedItem(
            loid=LOid("DB1", "t1"),
            class_name="T",
            reached_via=Path.parse("ref"),
            unsolved=(
                UnsolvedPredicateOnObject(
                    original=pred, relative_path=Path.parse("b")
                ),
            ),
        )

    def base(self):
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1")])],
            [(GOid("t1"), [LOid("DB1", "t1"), LOid("DB2", "t1x")])],
        )
        local = {
            "DB1": results(
                "DB1",
                row("DB1", "s1", {PRED_A: TV.TRUE, PRED_B: TV.UNKNOWN},
                    items=[self.make_item()]),
            ),
        }
        return gs, catalog, local

    def relative(self):
        return Predicate.of("b", "=", 2)

    def test_assistant_satisfies_promotes(self):
        gs, catalog, local = self.base()
        verdicts = VerdictIndex()
        verdicts.add(LOid("DB2", "t1x"), self.relative(), SATISFIED)
        stats = CertificationStats()
        answer = certify(QUERY, gs, catalog, local, verdicts, stats)
        assert len(answer.certain) == 1
        assert stats.promoted_to_certain == 1

    def test_assistant_violates_eliminates(self):
        gs, catalog, local = self.base()
        verdicts = VerdictIndex()
        verdicts.add(LOid("DB2", "t1x"), self.relative(), VIOLATED)
        stats = CertificationStats()
        answer = certify(QUERY, gs, catalog, local, verdicts, stats)
        assert len(answer) == 0
        assert stats.eliminated_by_violation == 1

    def test_assistant_unknown_stays_maybe(self):
        gs, catalog, local = self.base()
        verdicts = VerdictIndex()
        verdicts.add(LOid("DB2", "t1x"), self.relative(), UNKNOWN_VERDICT)
        answer = certify(QUERY, gs, catalog, local, verdicts)
        assert len(answer.maybe) == 1
        assert answer.maybe[0].unsolved == (PRED_B,)

    def test_no_verdict_stays_maybe(self):
        gs, catalog, local = self.base()
        answer = certify(QUERY, gs, catalog, local, VerdictIndex())
        assert len(answer.maybe) == 1


class TestBindingsMerge:
    def test_first_non_null_wins(self):
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1"), LOid("DB2", "s1x")])]
        )
        key = Path.parse("k")
        query = Query.conjunctive("S", [key], [])
        answer = certify(
            query, gs, catalog,
            {
                "DB1": results("DB1", row("DB1", "s1", {},
                                          kind=RowKind.CERTAIN,
                                          bindings={key: NULL})),
                "DB2": results("DB2", row("DB2", "s1x", {},
                                          kind=RowKind.CERTAIN,
                                          bindings={key: 7})),
            },
            VerdictIndex(),
        )
        assert answer.certain[0].bindings[key] == 7

    def test_multivalues_union(self):
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1"), LOid("DB2", "s1x")])]
        )
        key = Path.parse("k")
        query = Query.conjunctive("S", [key], [])
        answer = certify(
            query, gs, catalog,
            {
                "DB1": results("DB1", row("DB1", "s1", {}, kind=RowKind.CERTAIN,
                                          bindings={key: MultiValue([1])})),
                "DB2": results("DB2", row("DB2", "s1x", {}, kind=RowKind.CERTAIN,
                                          bindings={key: MultiValue([2])})),
            },
            VerdictIndex(),
        )
        assert answer.certain[0].bindings[key] == MultiValue([1, 2])


class TestDnfCertification:
    def test_false_disjunct_does_not_eliminate(self):
        gs = make_global_schema()
        catalog = make_catalog([(GOid("g1"), [LOid("DB1", "s1")])])
        query = Query.disjunctive("S", ["k"], [[PRED_A], [PRED_B]])
        answer = certify(
            query, gs, catalog,
            {"DB1": results("DB1", row("DB1", "s1",
                                       {PRED_A: TV.FALSE, PRED_B: TV.UNKNOWN}))},
            VerdictIndex(),
        )
        assert len(answer.maybe) == 1
        # Only the live disjunct's predicate remains unsolved.
        assert answer.maybe[0].unsolved == (PRED_B,)

    def test_true_disjunct_promotes(self):
        gs = make_global_schema()
        catalog = make_catalog([(GOid("g1"), [LOid("DB1", "s1")])])
        query = Query.disjunctive("S", ["k"], [[PRED_A], [PRED_B]])
        answer = certify(
            query, gs, catalog,
            {"DB1": results("DB1", row("DB1", "s1",
                                       {PRED_A: TV.TRUE, PRED_B: TV.UNKNOWN}))},
            VerdictIndex(),
        )
        assert len(answer.certain) == 1

    def test_all_disjuncts_false_eliminates(self):
        gs = make_global_schema()
        catalog = make_catalog([(GOid("g1"), [LOid("DB1", "s1")])])
        query = Query.disjunctive("S", ["k"], [[PRED_A], [PRED_B]])
        answer = certify(
            query, gs, catalog,
            {"DB1": results("DB1", row("DB1", "s1",
                                       {PRED_A: TV.FALSE, PRED_B: TV.FALSE}))},
            VerdictIndex(),
        )
        assert len(answer) == 0


class TestPartialQueryingAbsence:
    """The absence rule under partial querying: a site a fault plan
    skipped never ran its local filter, so its silence proves nothing.
    Only a site that was *queried* and returned no surviving copy may
    eliminate an entity placed there."""

    def test_unqueried_site_does_not_eliminate(self):
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1"), LOid("DB2", "s1x")])]
        )
        stats = CertificationStats()
        # DB2 was skipped: it is absent from local_results entirely,
        # unlike the queried-but-empty case below.
        answer = certify(
            QUERY, gs, catalog,
            {"DB1": results("DB1", row("DB1", "s1",
                                       {PRED_A: TV.UNKNOWN, PRED_B: TV.TRUE}))},
            VerdictIndex(), stats,
        )
        assert len(answer.maybe) == 1
        assert stats.eliminated_by_absence == 0

    def test_queried_empty_site_still_eliminates(self):
        """Contrast case: same federation, but DB2 *did* answer (with
        zero rows) — the paper's absence rule then applies."""
        gs = make_global_schema()
        catalog = make_catalog(
            [(GOid("g1"), [LOid("DB1", "s1"), LOid("DB2", "s1x")])]
        )
        stats = CertificationStats()
        answer = certify(
            QUERY, gs, catalog,
            {
                "DB1": results("DB1", row("DB1", "s1",
                                          {PRED_A: TV.UNKNOWN, PRED_B: TV.TRUE})),
                "DB2": results("DB2"),
            },
            VerdictIndex(), stats,
        )
        assert len(answer) == 0
        assert stats.eliminated_by_absence == 1

    def test_engine_fault_skipped_site_keeps_entity(self):
        """End-to-end: John's DB2 copy fails DB2's local filter, so the
        fault-free run eliminates him by absence.  With DB2 down he must
        come back as maybe — DB2 was never asked."""
        from repro.core.engine import GlobalQueryEngine
        from repro.faults import FaultPlan
        from repro.workload.paper_example import Q1_TEXT, build_school_federation

        clean = GlobalQueryEngine(build_school_federation()).execute(
            Q1_TEXT, "BL"
        )
        clean_names = {
            name for name, _ in
            clean.results.certain_rows() + clean.results.maybe_rows()
        }
        assert "John" not in clean_names

        faulted = GlobalQueryEngine(build_school_federation()).execute(
            Q1_TEXT, "BL", fault_plan=FaultPlan.single_site_loss("DB2")
        )
        assert "John" in {name for name, _ in faulted.results.maybe_rows()}
        assert "John" not in {
            name for name, _ in faulted.results.certain_rows()
        }
