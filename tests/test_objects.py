"""Unit tests for stored objects (LocalObject / IntegratedObject)."""

import pytest

from repro.errors import ObjectStoreError
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import IntegratedObject, LocalObject, iter_non_null
from repro.objectdb.schema import ClassDef, complex_attr, primitive
from repro.objectdb.values import MultiValue, NULL


def student(**values) -> LocalObject:
    return LocalObject(
        loid=LOid("DB1", "s1"), class_name="Student", values=values
    )


CDEF = ClassDef.of(
    "Student",
    [primitive("name"), primitive("tags", multi_valued=True),
     complex_attr("advisor", "Teacher")],
)


class TestLocalObject:
    def test_get_absent_is_null(self):
        assert student().get("name") is NULL

    def test_get_present(self):
        assert student(name="John").get("name") == "John"

    def test_has_value(self):
        obj = student(name="John", age=NULL)
        assert obj.has_value("name")
        assert not obj.has_value("age")
        assert not obj.has_value("missing")

    def test_null_attributes(self):
        obj = student(name="John", age=NULL)
        assert obj.null_attributes() == ["age"]

    def test_project(self):
        obj = student(name="John", sex="male")
        projected = obj.project(("name", "absent"))
        assert projected.values == {"name": "John"}
        assert projected.loid == obj.loid
        assert projected.class_name == obj.class_name

    def test_validate_ok(self):
        obj = student(name="John", advisor=LOid("DB1", "t1"))
        obj.validate_against(CDEF)

    def test_validate_wrong_class(self):
        with pytest.raises(ObjectStoreError):
            student().validate_against(ClassDef.of("Teacher", []))

    def test_validate_undeclared_attribute(self):
        with pytest.raises(ObjectStoreError):
            student(salary=10).validate_against(CDEF)

    def test_validate_primitive_holding_reference(self):
        with pytest.raises(ObjectStoreError):
            student(name=LOid("DB1", "x")).validate_against(CDEF)

    def test_validate_complex_holding_primitive(self):
        with pytest.raises(ObjectStoreError):
            student(advisor="t1").validate_against(CDEF)

    def test_validate_null_always_ok(self):
        student(name=NULL, advisor=NULL).validate_against(CDEF)

    def test_validate_multivalue_on_single_valued(self):
        with pytest.raises(ObjectStoreError):
            student(name=MultiValue(["a", "b"])).validate_against(CDEF)

    def test_validate_multivalue_ok(self):
        student(tags=MultiValue(["a", "b"])).validate_against(CDEF)


class TestIntegratedObject:
    def test_get(self):
        obj = IntegratedObject(
            goid=GOid("g1"), class_name="Student", values={"name": "John"}
        )
        assert obj.get("name") == "John"
        assert obj.get("age") is NULL
        assert obj.has_value("name")
        assert not obj.has_value("age")

    def test_sources(self):
        obj = IntegratedObject(
            goid=GOid("g1"),
            class_name="Student",
            sources=(LOid("DB1", "s1"), LOid("DB2", "s2'")),
        )
        assert len(obj.sources) == 2


class TestIterNonNull:
    def test_filters(self):
        objs = {
            LOid("DB1", "a"): student(name="x"),
            LOid("DB1", "b"): LocalObject(
                loid=LOid("DB1", "b"), class_name="Student", values={}
            ),
        }
        assert [o.get("name") for o in iter_non_null(objs, "name")] == ["x"]
