"""The columnar extent hot path and its transparency contract.

Every batch kernel must be *byte-identical* to the row path it replaces:
same rows, same bindings and unsolved bookkeeping, same meter totals,
same exceptions.  These tests pin that contract down object by object on
hand-built extents covering the 3VL edge cases (all-null columns, mixed
null/value under every operator, empty extents) and verify the
ExecutionOptions/engine plumbing end to end.
"""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.options import ExecutionOptions
from repro.core.predicates import EvalMeter, batch_compare, compare_values
from repro.core.query import Op, Path, Predicate
from repro.core.results import same_answers
from repro.core.tvl import TV
from repro.errors import QueryError
from repro.objectdb.columnar import (
    FALSE_CODE,
    TRUE_CODE,
    TV_OF_CODE,
    UNKNOWN_CODE,
)
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.local_query import CheckRequest, LocalQuery, partition_codes
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import (
    ClassDef,
    ComponentSchema,
    complex_attr,
    primitive,
)
from repro.objectdb.values import MultiValue, NULL
from repro.workload.paper_example import Q1_TEXT, build_school_federation

ALL_OPS = (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE)


def make_db(rows=()):
    """A two-class site: C(a, b, tags, ref -> D(x))."""
    schema = ComponentSchema.of(
        "DB",
        [
            ClassDef.of("C", [
                primitive("a"),
                primitive("b"),
                primitive("tags", multi_valued=True),
                complex_attr("ref", "D"),
            ]),
            ClassDef.of("D", [primitive("x")]),
        ],
    )
    db = ComponentDatabase(schema)
    for name, values in rows:
        cls = "D" if name.startswith("d") else "C"
        db.insert(LocalObject(LOid("DB", name), cls, values), validate=False)
    return db


def mixed_rows():
    """Nulls, values, multi-values and references in one extent."""
    return [
        ("d1", {"x": 10}),
        ("d2", {"x": NULL}),
        ("c1", {"a": 1, "b": "p", "tags": MultiValue([1, 2]),
                "ref": LOid("DB", "d1")}),
        ("c2", {"a": NULL, "b": "q", "ref": LOid("DB", "d2")}),
        ("c3", {"a": 3, "b": NULL, "tags": MultiValue([3])}),
        ("c4", {"a": 1, "b": "p", "ref": LOid("DB", "ghost")}),  # dangling
        ("c5", {}),  # everything missing
    ]


def local_query(where, targets=(Path.of("b"),)):
    return LocalQuery(
        db_name="DB", range_class="C", targets=tuple(targets), where=where
    )


def assert_result_sets_equal(columnar, row):
    """Field-by-field equality of two LocalResultSets (the contract)."""
    assert columnar.db_name == row.db_name
    assert columnar.range_class == row.range_class
    assert columnar.objects_scanned == row.objects_scanned
    assert columnar.comparisons == row.comparisons
    assert columnar.derefs == row.derefs
    assert len(columnar.rows) == len(row.rows)
    for left, right in zip(columnar.rows, row.rows):
        assert left.loid == right.loid
        assert left.class_name == right.class_name
        assert left.kind == right.kind
        assert left.bindings == right.bindings
        assert left.unsolved == right.unsolved
        assert left.unsolved_items == right.unsolved_items
        assert left.predicate_status == right.predicate_status


class TestBatchCompare:
    """batch_compare is element-exact with compare_values."""

    COLUMN = [
        1, NULL, "x", 2.5, MultiValue([1, 2]), MultiValue([]), True, 0,
    ]

    @pytest.mark.parametrize("op", [Op.EQ, Op.NE])
    def test_eq_ne_parity(self, op):
        batch_meter, row_meter = EvalMeter(), EvalMeter()
        batch = batch_compare(op, self.COLUMN, 1, batch_meter)
        rows = [compare_values(op, v, 1, row_meter) for v in self.COLUMN]
        assert batch == rows
        assert batch_meter.comparisons == row_meter.comparisons

    @pytest.mark.parametrize("op", [Op.LT, Op.LE, Op.GT, Op.GE])
    def test_order_ops_parity(self, op):
        column = [1, NULL, 2.5, MultiValue([1, 2]), 0]
        batch_meter, row_meter = EvalMeter(), EvalMeter()
        batch = batch_compare(op, column, 1, batch_meter)
        rows = [compare_values(op, v, 1, row_meter) for v in column]
        assert batch == rows
        assert batch_meter.comparisons == row_meter.comparisons

    def test_contains_parity(self):
        column = [MultiValue([1, 2]), NULL, MultiValue([3])]
        batch = batch_compare(Op.CONTAINS, column, 2, None)
        assert batch == [TV.TRUE, TV.UNKNOWN, TV.FALSE]

    def test_raises_in_order_and_charges_before_raise(self):
        # The row path charges the raising element's comparison before
        # throwing; the batch kernel must do the same.
        column = [1, "unorderable", 2]
        batch_meter, row_meter = EvalMeter(), EvalMeter()
        with pytest.raises(QueryError):
            batch_compare(Op.LT, column, 5, batch_meter)
        with pytest.raises(QueryError):
            for v in column:
                compare_values(Op.LT, v, 5, row_meter)
        assert batch_meter.comparisons == row_meter.comparisons == 2

    def test_contains_on_scalar_raises(self):
        with pytest.raises(QueryError):
            batch_compare(Op.CONTAINS, [1], 1, None)


class TestPartitionCodes:
    def test_three_way_split_preserves_order(self):
        loids = tuple(LOid("DB", f"o{i}") for i in range(5))
        codes = [TRUE_CODE, FALSE_CODE, UNKNOWN_CODE, TRUE_CODE, FALSE_CODE]
        true, maybe, false = partition_codes(loids, codes)
        assert true == (loids[0], loids[3])
        assert maybe == (loids[2],)
        assert false == (loids[1], loids[4])

    def test_empty(self):
        assert partition_codes((), []) == ((), (), ())


class TestColumnarExtentKernels:
    def test_all_null_column_is_all_unknown(self):
        db = make_db([("c1", {"a": NULL}), ("c2", {}), ("c3", {"a": NULL})])
        col = db.columnar_extent("C")
        attr = col.column("a")
        assert attr.null_count() == 3
        for op in ALL_OPS:
            pred = Predicate(path=Path.of("a"), op=op, operand=1)
            pcol = col.predicate_column(pred)
            assert pcol.codes == [UNKNOWN_CODE] * 3
            # Missing rows are uncharged, exactly like the row path.
            assert pcol.comparisons == [0] * 3

    def test_empty_extent(self):
        db = make_db()
        col = db.columnar_extent("C")
        assert len(col) == 0
        pred = Predicate(path=Path.of("a"), op=Op.EQ, operand=1)
        pcol = col.predicate_column(pred)
        assert pcol.codes == []
        sets = db.batch_evaluate_predicate("C", pred)
        assert sets.true == sets.maybe == sets.false == ()

    @pytest.mark.parametrize("op", ALL_OPS)
    def test_mixed_nulls_match_row_path_per_object(self, op):
        db = make_db(mixed_rows())
        pred = Predicate(path=Path.of("a"), op=op, operand=1)
        col = db.columnar_extent("C")
        pcol = col.predicate_column(pred)
        from repro.core.predicates import evaluate_predicate

        for row, obj in enumerate(col.objects):
            expected = evaluate_predicate(obj, pred, db.deref)
            assert TV_OF_CODE[pcol.codes[row]] is expected.tv, (
                f"{op} row {row} ({obj.loid})"
            )

    @pytest.mark.parametrize("op", ALL_OPS + (Op.CONTAINS,))
    def test_batch_sets_equal_row_path(self, op):
        db = make_db(mixed_rows())
        attr = "tags" if op is Op.CONTAINS else "a"
        pred = Predicate(path=Path.of(attr), op=op, operand=1)
        on = db.batch_evaluate_predicate("C", pred, columnar=True)
        off = db.batch_evaluate_predicate("C", pred, columnar=False)
        assert on == off

    def test_nested_path_misses_match_row_path(self):
        db = make_db(mixed_rows())
        pred = Predicate(path=Path.of("ref", "x"), op=Op.EQ, operand=10)
        on = db.batch_evaluate_predicate("C", pred, columnar=True)
        off = db.batch_evaluate_predicate("C", pred, columnar=False)
        assert on == off
        # c1 -> d1.x=10 TRUE; c2 -> d2.x NULL, c4 dangling, c5 missing,
        # c3 has no ref: all UNKNOWN.
        assert on.true == (LOid("DB", "c1"),)
        assert len(on.maybe) == 4

    def test_stale_view_never_served(self):
        db = make_db(mixed_rows())
        first = db.columnar_extent("C")
        assert db.columnar_extent("C") is first  # cached
        db.insert(LocalObject(LOid("DB", "c9"), "C", {"a": 1}),
                  validate=False)
        second = db.columnar_extent("C")
        assert second is not first
        assert len(second) == len(first) + 1


class TestExecuteLocalParity:
    WHERES = [
        ((Predicate(path=Path.of("a"), op=Op.EQ, operand=1),),),
        ((Predicate(path=Path.of("a"), op=Op.GT, operand=0),
          Predicate(path=Path.of("b"), op=Op.EQ, operand="p")),),
        # DNF: two disjuncts.
        ((Predicate(path=Path.of("a"), op=Op.EQ, operand=3),),
         (Predicate(path=Path.of("ref", "x"), op=Op.EQ, operand=10),)),
        # Empty where: everything survives.
        (),
    ]

    @pytest.mark.parametrize("where", WHERES)
    def test_rows_and_meters_identical(self, where):
        query = local_query(where, targets=(Path.of("b"), Path.of("ref", "x")))
        on = make_db(mixed_rows()).execute_local(query, columnar=True)
        off = make_db(mixed_rows()).execute_local(query, columnar=False)
        assert_result_sets_equal(on, off)

    def test_indexed_candidates_identical(self):
        where = ((Predicate(path=Path.of("a"), op=Op.EQ, operand=1),),)
        query = local_query(where)
        indexed_on = make_db(mixed_rows())
        indexed_on.create_index("C", "a")
        indexed_off = make_db(mixed_rows())
        indexed_off.create_index("C", "a")
        on = indexed_on.execute_local(query, columnar=True)
        off = indexed_off.execute_local(query, columnar=False)
        assert_result_sets_equal(on, off)
        assert on.index_probe is not None

    def test_collect_unsolved_identical(self):
        where = ((Predicate(path=Path.of("a"), op=Op.EQ, operand=1),
                  Predicate(path=Path.of("ref", "x"), op=Op.LT, operand=99)),)
        query = local_query(where)
        scan_on, meter_on = make_db(mixed_rows()).collect_unsolved(
            query, columnar=True
        )
        scan_off, meter_off = make_db(mixed_rows()).collect_unsolved(
            query, columnar=False
        )
        assert scan_on.objects_scanned == scan_off.objects_scanned
        assert scan_on.per_root == scan_off.per_root
        assert meter_on.comparisons == meter_off.comparisons
        assert meter_on.derefs == meter_off.derefs

    def test_check_assistants_identical(self):
        request = CheckRequest(
            db_name="DB",
            class_name="C",
            loids=(
                LOid("DB", "c1"), LOid("DB", "c2"), LOid("DB", "c5"),
                LOid("DB", "absent"),  # not stored anywhere
                LOid("DB", "d1"),      # stored, but in another extent
            ),
            predicates=(
                Predicate(path=Path.of("a"), op=Op.EQ, operand=1),
                Predicate(path=Path.of("ref", "x"), op=Op.GE, operand=10),
            ),
        )
        on = make_db(mixed_rows()).check_assistants(request, columnar=True)
        off = make_db(mixed_rows()).check_assistants(request, columnar=False)
        assert on.satisfied == off.satisfied
        assert on.violated == off.violated
        assert on.unknown == off.unknown
        assert on.blocked == off.blocked
        assert on.objects_checked == off.objects_checked
        assert on.comparisons == off.comparisons
        assert on.derefs == off.derefs


class TestErrorFallback:
    """Rows that would raise force the canonical row-path exception."""

    def badly_typed_db(self):
        # c1's ref holds a plain int: walking ref.x raises QueryError.
        return make_db([
            ("c1", {"a": 1, "ref": 42}),
            ("c2", {"a": 2, "ref": NULL}),
        ])

    def test_execute_local_raises_canonically(self):
        where = ((Predicate(path=Path.of("ref", "x"), op=Op.EQ, operand=1),),)
        with pytest.raises(QueryError) as on:
            self.badly_typed_db().execute_local(
                local_query(where), columnar=True
            )
        with pytest.raises(QueryError) as off:
            self.badly_typed_db().execute_local(
                local_query(where), columnar=False
            )
        assert str(on.value) == str(off.value)

    def test_batch_kernel_falls_back_and_raises(self):
        pred = Predicate(path=Path.of("ref", "x"), op=Op.EQ, operand=1)
        with pytest.raises(QueryError):
            self.badly_typed_db().batch_evaluate_predicate("C", pred)

    def test_unhashable_operand_falls_back(self):
        db = make_db(mixed_rows())
        pred = Predicate(path=Path.of("a"), op=Op.EQ, operand=[1, 2])
        col = db.columnar_extent("C")
        assert col.predicate_column(pred) is None  # caching impossible
        on = db.batch_evaluate_predicate("C", pred, columnar=True)
        off = db.batch_evaluate_predicate("C", pred, columnar=False)
        assert on == off


class TestEngineTransparency:
    """The end-to-end contract through ExecutionOptions."""

    def test_describe_and_with(self):
        options = ExecutionOptions()
        assert options.columnar is True
        assert "columnar=True" in options.describe()
        assert options.with_(columnar=False).columnar is False

    @pytest.mark.parametrize("name", ["CA", "BL", "PL", "BL-S", "PL-S"])
    def test_q1_answers_and_metrics_identical(self, name):
        engine = GlobalQueryEngine(build_school_federation())
        engine.ensure_signatures()
        on = engine.execute(
            Q1_TEXT, name, options=engine.options.with_(columnar=True)
        )
        off = engine.execute(
            Q1_TEXT, name, options=engine.options.with_(columnar=False)
        )
        assert same_answers(on.results, off.results)
        # Every work counter except cache traffic (the first run pays
        # the decomposition miss) must match exactly.
        import dataclasses

        scrub = dict(cache_hits=0, cache_misses=0)
        assert dataclasses.replace(
            on.metrics.work, **scrub
        ) == dataclasses.replace(off.metrics.work, **scrub)

    def test_generated_workloads_identical(self):
        from helpers import make_workload

        for seed in (11, 23, 47):
            workload = make_workload(seed=seed, scale=0.03)
            engine = GlobalQueryEngine(workload.system)
            for name in ("CA", "BL", "PL"):
                on = engine.execute(
                    workload.query, name,
                    options=engine.options.with_(columnar=True),
                )
                off = engine.execute(
                    workload.query, name,
                    options=engine.options.with_(columnar=False),
                )
                assert same_answers(on.results, off.results), (seed, name)
                assert (
                    on.metrics.work.comparisons
                    == off.metrics.work.comparisons
                ), (seed, name)

    def test_engine_property_shim(self):
        engine = GlobalQueryEngine(build_school_federation())
        assert engine.columnar is True
        engine.columnar = False
        assert engine.options.columnar is False
        engine.columnar = True
        assert engine.columnar is True

    def test_strategy_effective_columnar(self):
        from repro.core.strategies import DEFAULT_REGISTRY
        from repro.faults.injector import ExecutionContext
        from repro.faults.plan import FaultPlan

        strategy = DEFAULT_REGISTRY.create("BL")
        assert strategy.effective_columnar(None) is True
        ctx = ExecutionContext(FaultPlan(), "degrade", columnar=False)
        assert strategy.effective_columnar(ctx) is False
        strategy.columnar = False
        assert strategy.effective_columnar(None) is False
