"""Unit tests for the component database engine."""

import pytest

from repro.core.query import Path, Predicate
from repro.core.tvl import TV
from repro.errors import ObjectStoreError, UnknownClassError
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.local_query import (
    CheckRequest,
    LocalQuery,
    RemovedPredicate,
    RowKind,
)
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import NULL


def make_db() -> ComponentDatabase:
    schema = ComponentSchema.of(
        "DB",
        [
            ClassDef.of(
                "Student",
                [primitive("name"), primitive("age"),
                 complex_attr("advisor", "Teacher")],
            ),
            ClassDef.of("Teacher", [primitive("name"), primitive("skill")]),
        ],
    )
    db = ComponentDatabase(schema)
    teachers = [("t1", "Ada", "db"), ("t2", "Bob", NULL)]
    for tid, name, skill in teachers:
        db.insert(LocalObject(LOid("DB", tid), "Teacher",
                              {"name": name, "skill": skill}))
    students = [
        ("s1", "John", 30, "t1"),
        ("s2", "Tony", 20, "t2"),
        ("s3", "Mary", NULL, "t1"),
        ("s4", "Ann", 40, None),
    ]
    for sid, name, age, tid in students:
        values = {"name": name, "age": age}
        values["advisor"] = LOid("DB", tid) if tid else NULL
        db.insert(LocalObject(LOid("DB", sid), "Student", values))
    return db


def local_query(predicates=(), removed=(), targets=("name",)):
    where = (tuple(predicates),) if predicates else ()
    return LocalQuery(
        db_name="DB",
        range_class="Student",
        targets=tuple(Path.parse(t) for t in targets),
        where=where,
        removed=tuple(removed),
        removed_by_conjunct=((tuple(r.predicate for r in removed),)
                             if removed else ()),
    )


class TestStorage:
    def test_insert_and_get(self):
        db = make_db()
        assert db.get(LOid("DB", "s1")).get("name") == "John"
        assert db.get(LOid("DB", "zz")) is None

    def test_duplicate_rejected(self):
        db = make_db()
        with pytest.raises(ObjectStoreError):
            db.insert(LocalObject(LOid("DB", "s1"), "Student", {}))

    def test_unknown_class_rejected(self):
        db = make_db()
        with pytest.raises(UnknownClassError):
            db.insert(LocalObject(LOid("DB", "x"), "Nope", {}))

    def test_foreign_loid_rejected(self):
        db = make_db()
        with pytest.raises(ObjectStoreError):
            db.insert(LocalObject(LOid("OTHER", "x"), "Student", {}))

    def test_extent_and_count(self):
        db = make_db()
        assert db.count("Student") == 4
        assert db.count("Teacher") == 2
        with pytest.raises(UnknownClassError):
            db.extent("Nope")

    def test_deref_local_only(self):
        db = make_db()
        assert db.deref(LOid("DB", "t1")).get("name") == "Ada"
        assert db.deref(LOid("OTHER", "t1")) is None

    def test_bulk_insert(self):
        schema = ComponentSchema.of("DB", [ClassDef.of("C", [primitive("a")])])
        db = ComponentDatabase(schema)
        n = db.bulk_insert(
            LocalObject(LOid("DB", f"o{i}"), "C", {"a": i}) for i in range(5)
        )
        assert n == 5 and db.count("C") == 5


class TestScanForExport:
    def test_projects_local_attributes(self):
        db = make_db()
        objs = db.scan_for_export("Student", ("name", "nonexistent"))
        assert len(objs) == 4
        assert all(set(o.values) <= {"name"} for o in objs)


class TestExecuteLocal:
    def test_no_predicates_all_certain(self):
        db = make_db()
        result = db.execute_local(local_query())
        assert result.objects_scanned == 4
        assert len(result.certain_rows) == 4
        assert result.maybe_rows == []

    def test_false_predicate_eliminates(self):
        db = make_db()
        result = db.execute_local(
            local_query([Predicate.of("age", ">", 25)])
        )
        names = {row.bindings[Path.parse("name")] for row in result.rows}
        # Tony (20) eliminated; Mary (age NULL) stays as maybe.
        assert names == {"John", "Mary", "Ann"}

    def test_null_value_yields_maybe_with_unsolved(self):
        db = make_db()
        result = db.execute_local(local_query([Predicate.of("age", ">", 25)]))
        mary = result.row_for(LOid("DB", "s3"))
        assert mary.kind is RowKind.MAYBE
        assert [str(u.relative_predicate) for u in mary.unsolved] == ["age > 25"]

    def test_removed_predicate_makes_all_maybe(self):
        db = make_db()
        removed = RemovedPredicate(
            predicate=Predicate.of("gpa", "=", 4), missing_depth=0
        )
        result = db.execute_local(local_query(removed=[removed]))
        assert len(result.maybe_rows) == 4
        assert all(
            row.unsolved[0].original.path.first == "gpa"
            for row in result.maybe_rows
        )

    def test_branch_null_becomes_unsolved_item(self):
        db = make_db()
        result = db.execute_local(
            local_query([Predicate.of("advisor.skill", "=", "db")])
        )
        tony = result.row_for(LOid("DB", "s2"))  # advisor t2, skill NULL
        assert tony.kind is RowKind.MAYBE
        assert len(tony.unsolved_items) == 1
        item = tony.unsolved_items[0]
        assert item.loid == LOid("DB", "t2")
        assert item.class_name == "Teacher"
        assert str(item.unsolved[0].relative_predicate) == "skill = 'db'"
        assert item.reached_via == Path.parse("advisor")

    def test_null_reference_unsolved_on_root(self):
        db = make_db()
        result = db.execute_local(
            local_query([Predicate.of("advisor.skill", "=", "db")])
        )
        ann = result.row_for(LOid("DB", "s4"))  # advisor NULL
        assert ann.kind is RowKind.MAYBE
        assert ann.unsolved_items == ()
        assert ann.unsolved[0].relative_path == Path.parse("advisor.skill")

    def test_predicate_status_recorded(self):
        db = make_db()
        pred = Predicate.of("age", ">", 25)
        result = db.execute_local(local_query([pred]))
        john = result.row_for(LOid("DB", "s1"))
        assert john.predicate_status[pred] is TV.TRUE
        mary = result.row_for(LOid("DB", "s3"))
        assert mary.predicate_status[pred] is TV.UNKNOWN

    def test_bindings_include_nulls(self):
        db = make_db()
        result = db.execute_local(local_query(targets=("name", "age")))
        mary = result.row_for(LOid("DB", "s3"))
        assert mary.bindings[Path.parse("age")] is NULL

    def test_wrong_db_rejected(self):
        db = make_db()
        query = LocalQuery(
            db_name="OTHER", range_class="Student", targets=(Path.parse("name"),)
        )
        with pytest.raises(ObjectStoreError):
            db.execute_local(query)

    def test_work_accounting(self):
        db = make_db()
        result = db.execute_local(local_query([Predicate.of("age", ">", 25)]))
        # One comparison per object whose age is present (Mary's null age
        # short-circuits at the walk, before any value comparison).
        assert result.comparisons == 3
        assert result.objects_scanned == 4


class TestCollectUnsolved:
    def test_finds_all_objects_with_missing_data(self):
        db = make_db()
        query = local_query([Predicate.of("advisor.skill", "=", "db"),
                             Predicate.of("age", ">", 25)])
        scan, meter = db.collect_unsolved(query)
        assert scan.objects_scanned == 4
        # s2 (advisor skill null), s3 (age null), s4 (advisor null).
        assert set(l.value for l in scan.per_root) == {"s2", "s3", "s4"}
        assert meter.comparisons > 0

    def test_includes_objects_failing_local_predicates(self):
        """PL's defining overhead: missing data of to-be-eliminated rows."""
        db = make_db()
        query = local_query([Predicate.of("advisor.skill", "=", "db"),
                             Predicate.of("name", "=", "nobody")])
        scan, _meter = db.collect_unsolved(query)
        # Tony fails name='nobody' but his advisor-skill hole is probed.
        assert LOid("DB", "s2") in scan.per_root

    def test_all_items(self):
        db = make_db()
        query = local_query([Predicate.of("advisor.skill", "=", "db")])
        scan, _meter = db.collect_unsolved(query)
        items = scan.all_items()
        assert [i.loid.value for i in items] == ["t2"]


class TestCheckAssistants:
    def test_verdicts(self):
        db = make_db()
        pred = Predicate.of("skill", "=", "db")
        report = db.check_assistants(
            CheckRequest(
                db_name="DB",
                class_name="Teacher",
                loids=(LOid("DB", "t1"), LOid("DB", "t2")),
                predicates=(pred,),
            )
        )
        assert report.satisfied[pred] == (LOid("DB", "t1"),)
        assert report.violated[pred] == ()
        assert report.unknown[pred] == (LOid("DB", "t2"),)
        assert report.objects_checked == 2
        assert report.verdict(pred, LOid("DB", "t1")) == "satisfied"
        assert report.verdict(pred, LOid("DB", "t2")) == "unknown"

    def test_violated(self):
        db = make_db()
        pred = Predicate.of("skill", "=", "networks")
        report = db.check_assistants(
            CheckRequest("DB", "Teacher", (LOid("DB", "t1"),), (pred,))
        )
        assert report.violated[pred] == (LOid("DB", "t1"),)

    def test_unknown_object(self):
        db = make_db()
        pred = Predicate.of("skill", "=", "db")
        report = db.check_assistants(
            CheckRequest("DB", "Teacher", (LOid("DB", "zzz"),), (pred,))
        )
        assert report.unknown[pred] == (LOid("DB", "zzz"),)

    def test_blocked_records_remaining_predicate(self):
        db = make_db()
        pred = Predicate.of("advisor.skill", "=", "db")
        # Check on students: s2's advisor t2 has skill NULL -> blocked at t2.
        report = db.check_assistants(
            CheckRequest("DB", "Student", (LOid("DB", "s2"),), (pred,))
        )
        assert len(report.blocked) == 1
        block = report.blocked[0]
        assert block.checked == LOid("DB", "s2")
        assert block.holder == LOid("DB", "t2")
        assert str(block.remaining) == "skill = 'db'"

    def test_block_on_self_not_recorded(self):
        db = make_db()
        pred = Predicate.of("age", ">", 25)
        report = db.check_assistants(
            CheckRequest("DB", "Student", (LOid("DB", "s3"),), (pred,))
        )
        assert report.blocked == ()

    def test_wrong_db_rejected(self):
        db = make_db()
        with pytest.raises(ObjectStoreError):
            db.check_assistants(CheckRequest("OTHER", "Teacher", (), ()))
