"""Tests for the strategy registry and its deprecated shims."""

import pytest

from repro.core.strategies import (
    ALL_STRATEGIES,
    DEFAULT_REGISTRY,
    PAPER_STRATEGIES,
    StrategyInfo,
    StrategyRegistry,
    resolve,
    strategy_by_name,
)
from repro.core.strategies.adaptive import AdaptiveStrategy
from repro.core.strategies.centralized import CentralizedStrategy
from repro.core.strategies.localized import ParallelLocalizedStrategy


class TestDefaultRegistry:
    def test_lists_all_strategies(self):
        assert DEFAULT_REGISTRY.names() == [
            "CA", "BL", "PL", "BL-S", "PL-S", "AUTO",
        ]
        assert DEFAULT_REGISTRY.names(paper_only=True) == ["CA", "BL", "PL"]

    def test_metadata(self):
        info = DEFAULT_REGISTRY.get("pl")
        assert info.name == "PL"
        assert info.phase_order == "O||P>I"
        assert info.paper and not info.uses_signatures
        assert DEFAULT_REGISTRY.get("PL-S").uses_signatures
        assert not DEFAULT_REGISTRY.get("AUTO").paper

    def test_create_instantiates(self):
        assert isinstance(DEFAULT_REGISTRY.create("CA"), CentralizedStrategy)
        assert isinstance(DEFAULT_REGISTRY.create("auto"), AdaptiveStrategy)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            DEFAULT_REGISTRY.get("nope")

    def test_table_lists_every_name(self):
        table = DEFAULT_REGISTRY.table()
        for name in DEFAULT_REGISTRY.names():
            assert name in table

    def test_signature_factories_set_flag(self):
        for info in DEFAULT_REGISTRY:
            if info.uses_signatures:
                assert info.create().use_signatures


class TestCustomRegistry:
    def test_register_and_resolve(self):
        registry = StrategyRegistry()
        registry.register(StrategyInfo(
            name="X", factory=ParallelLocalizedStrategy, phase_order="O||P>I"
        ))
        assert "x" in registry
        assert isinstance(resolve("X", registry), ParallelLocalizedStrategy)

    def test_duplicate_registration_rejected(self):
        registry = StrategyRegistry()
        info = StrategyInfo(
            name="X", factory=ParallelLocalizedStrategy, phase_order="-"
        )
        registry.register(info)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(info)


class TestDeprecatedShims:
    def test_tuples_match_registry(self):
        assert [cls.name for cls in PAPER_STRATEGIES] == (
            DEFAULT_REGISTRY.names(paper_only=True)
        )
        assert [cls.name for cls in ALL_STRATEGIES] == [
            n for n in DEFAULT_REGISTRY.names() if n != "AUTO"
        ]

    def test_strategy_by_name_delegates(self):
        assert isinstance(strategy_by_name("PL"), ParallelLocalizedStrategy)
        assert isinstance(strategy_by_name("AUTO"), AdaptiveStrategy)
        with pytest.raises(ValueError):
            strategy_by_name("bogus")
