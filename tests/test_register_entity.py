"""Tests for DistributedSystem.register_entity (dynamic federation growth)."""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.errors import SchemaError
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.values import NULL
from repro.workload.paper_example import Q1_TEXT


class TestRegistration:
    def test_copies_stored_per_site_projection(self, school):
        goid = school.register_entity(
            "Student",
            {
                "DB1": {"s-no": 900001, "name": "Zoe", "age": 22,
                        "advisor": GOid("gt4")},
                "DB2": {"s-no": 900001, "name": "Zoe",
                        "address": LOid("DB2", "a1'"),
                        "advisor": GOid("gt4")},
            },
        )
        copies = school.catalog.table("Student").loids_of(goid)
        assert set(copies) == {"DB1", "DB2"}
        db1_obj = school.db("DB1").get(copies["DB1"])
        # age stored at DB1; address silently skipped (missing attribute).
        assert db1_obj.get("age") == 22
        assert db1_obj.get("address") is NULL
        db2_obj = school.db("DB2").get(copies["DB2"])
        assert db2_obj.get("address") == LOid("DB2", "a1'")
        assert db2_obj.get("age") is NULL

    def test_goid_references_translated_per_site(self, school):
        goid = school.register_entity(
            "Student",
            {
                "DB1": {"s-no": 900002, "name": "Kai", "advisor": GOid("gt4")},
                "DB2": {"s-no": 900002, "name": "Kai", "advisor": GOid("gt4")},
            },
        )
        copies = school.catalog.table("Student").loids_of(goid)
        # gt4 = Kelly: t1' at DB2, t2'' at DB3, nothing at DB1.
        assert school.db("DB1").get(copies["DB1"]).get("advisor") is NULL
        assert school.db("DB2").get(copies["DB2"]).get("advisor") == LOid(
            "DB2", "t1'"
        )

    def test_registered_entity_is_queryable(self, school):
        school.register_entity(
            "Student",
            {
                "DB2": {
                    "s-no": 900003,
                    "name": "Ada",
                    "address": LOid("DB2", "a1'"),   # Taipei
                    "advisor": LOid("DB2", "t1'"),   # Kelly, database
                },
            },
        )
        engine = GlobalQueryEngine(school)
        outcomes = engine.compare(Q1_TEXT)
        certain_names = {
            row[0] for row in outcomes["CA"].results.certain_rows()
        }
        # Ada satisfies city + speciality; department unknown at DB2 but
        # Kelly's DB3 copy certifies it -> certain.
        assert "Ada" in certain_names

    def test_explicit_goid(self, school):
        goid = school.register_entity(
            "Student",
            {"DB1": {"s-no": 900004, "name": "Eve"}},
            goid=GOid("gs-eve"),
        )
        assert goid == GOid("gs-eve")
        assert school.catalog.table("Student").loids_of(goid)

    def test_signatures_maintained(self, school):
        school.build_signatures()
        goid = school.register_entity(
            "Teacher",
            {"DB2": {"name": "Noor", "speciality": "database"}},
        )
        loid = school.catalog.table("Teacher").loid_in(goid, "DB2")
        assert school.signatures.lookup("Teacher", loid) is not None


class TestRegistrationErrors:
    def test_unknown_global_class(self, school):
        with pytest.raises(SchemaError):
            school.register_entity("Ghost", {"DB1": {}})

    def test_empty_copies(self, school):
        with pytest.raises(SchemaError):
            school.register_entity("Student", {})

    def test_site_without_constituent(self, school):
        with pytest.raises(SchemaError):
            school.register_entity("Student", {"DB3": {"s-no": 1}})

    def test_unknown_attribute(self, school):
        with pytest.raises(SchemaError):
            school.register_entity(
                "Student", {"DB1": {"s-no": 1, "gpa": 4.0}}
            )

    def test_goid_into_primitive(self, school):
        with pytest.raises(SchemaError):
            school.register_entity(
                "Student", {"DB1": {"s-no": 1, "name": GOid("gt1")}}
            )


class TestGoidAutogeneration:
    def test_autogen_skips_past_explicit_collision(self, school):
        """An explicit goid sitting exactly where the counter would land
        must not be silently merged into (it used to be)."""
        taken = school.register_entity(
            "Student",
            {"DB1": {"s-no": 910001, "name": "Iris"}},
            goid=GOid("gstudent-r6"),  # table grows to 5 -> counter says 6
        )
        auto = school.register_entity(
            "Student", {"DB1": {"s-no": 910002, "name": "Jo"}}
        )
        assert auto != taken
        table = school.catalog.table("Student")
        # Both entities keep exactly their own copies.
        assert set(table.loids_of(taken)) == {"DB1"}
        assert set(table.loids_of(auto)) == {"DB1"}
        assert (
            school.db("DB1").get(table.loid_in(auto, "DB1")).get("name")
            == "Jo"
        )

    def test_autogen_ids_are_distinct_across_many_inserts(self, school):
        goids = {
            school.register_entity(
                "Student", {"DB1": {"s-no": 920000 + i, "name": f"S{i}"}}
            )
            for i in range(5)
        }
        assert len(goids) == 5
