"""Shared fixtures: the paper's school federation and small workloads."""

from __future__ import annotations

import pytest

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.workload.paper_example import build_school_federation


@pytest.fixture()
def school():
    """The Figures 1-5 school federation with the Figure 5 catalog."""
    return build_school_federation()


@pytest.fixture()
def school_engine(school):
    return GlobalQueryEngine(school)


@pytest.fixture()
def discovered_school():
    """The school federation with isomerism discovered from the data."""
    return build_school_federation(discover=True)


@pytest.fixture()
def small_workload():
    return make_workload(seed=7)
