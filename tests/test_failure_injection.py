"""Failure-injection tests: corrupted state surfaces as clean errors.

A production federation hits inconsistent mapping tables, dangling
references, empty extents and malformed queries; these tests pin down
how each failure surfaces (specific exception, or graceful degraded
answer) instead of silent corruption.
"""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.query import Predicate, Query
from repro.core.system import DistributedSystem
from repro.errors import MappingError, QueryError, ReproError
from repro.integration.global_schema import ClassCorrespondence
from repro.integration.mapping import MappingCatalog, MappingTable
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import NULL
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def tiny_system(with_catalog=True) -> DistributedSystem:
    schema = ComponentSchema.of(
        "DB1",
        [
            ClassDef.of("S", [primitive("k"), primitive("a"),
                              complex_attr("r", "T")]),
            ClassDef.of("T", [primitive("k"), primitive("b")]),
        ],
    )
    db = ComponentDatabase(schema)
    db.insert(LocalObject(LOid("DB1", "t1"), "T", {"k": 2, "b": 5}))
    db.insert(
        LocalObject(LOid("DB1", "s1"), "S",
                    {"k": 1, "a": 9, "r": LOid("DB1", "t1")})
    )
    correspondences = [
        ClassCorrespondence.of("S", [("DB1", "S")], "k"),
        ClassCorrespondence.of("T", [("DB1", "T")], "k"),
    ]
    return DistributedSystem.build([db], correspondences)


class TestCorruptMappingCatalog:
    def test_missing_root_goid_fails_loudly(self):
        system = tiny_system()
        # Wipe the root class's mapping table.
        system.catalog.register(MappingTable("S"))
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive("S", ["k"], [Predicate.of("a", "=", 9)])
        for strategy in ("CA", "BL"):
            with pytest.raises(MappingError):
                engine.execute(query, strategy)

    def test_missing_branch_goid_fails_loudly_in_ca(self):
        """CA integrates every exported extent: an uncatalogued branch
        object is an inconsistency, not missing data — fail loud."""
        system = tiny_system()
        system.catalog.register(MappingTable("T"))
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive("S", ["k"], [Predicate.of("r.b", "=", 5)])
        with pytest.raises(MappingError):
            engine.execute(query, "CA")

    def test_missing_branch_goid_tolerated_by_bl(self):
        """BL never ships the branch extent; with no isomeric copies to
        look up, the row simply has no assistants and stays as evaluated
        (here: certain, since the chain is fully local)."""
        system = tiny_system()
        system.catalog.register(MappingTable("T"))
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive("S", ["k"], [Predicate.of("r.b", "=", 5)])
        outcome = engine.execute(query, "BL")
        assert len(outcome.results.certain) == 1


class TestDanglingData:
    def test_dangling_local_reference_is_maybe(self):
        system = tiny_system()
        system.db("DB1").insert(
            LocalObject(
                LOid("DB1", "s2"),
                "S",
                {"k": 3, "a": 9, "r": LOid("DB1", "ghost")},
            )
        )
        # Rebuild catalog to include s2.
        from repro.integration.isomerism import build_catalog

        system.catalog.register(
            build_catalog(
                {"S": system.global_schema.constituents("S")},
                system.databases,
                {"S": "k"},
            ).table("S")
        )
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive("S", ["k"], [Predicate.of("r.b", "=", 5)])
        outcomes = engine.compare(query)
        goids = {r.goid for r in outcomes["CA"].results.maybe}
        assert len(goids) == 1  # the dangling-ref object stays maybe

    def test_empty_extents_answer_empty(self):
        schema = ComponentSchema.of(
            "DB1", [ClassDef.of("S", [primitive("k"), primitive("a")])]
        )
        system = DistributedSystem.build(
            [ComponentDatabase(schema)],
            [ClassCorrespondence.of("S", [("DB1", "S")], "k")],
        )
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive("S", ["k"], [Predicate.of("a", "=", 1)])
        outcomes = engine.compare(query)
        for outcome in outcomes.values():
            assert len(outcome.results) == 0
            assert outcome.total_time >= 0


class TestMalformedQueries:
    @pytest.fixture()
    def engine(self):
        return GlobalQueryEngine(build_school_federation())

    def test_unknown_class(self, engine):
        with pytest.raises(QueryError):
            engine.execute("Select X.a From Nothing X", "CA")

    def test_unknown_attribute(self, engine):
        with pytest.raises(QueryError):
            engine.execute("Select X.salary From Student X", "BL")

    def test_path_through_primitive(self, engine):
        with pytest.raises(QueryError):
            engine.execute("Select X.name.x From Student X", "PL")

    def test_predicate_on_complex(self, engine):
        with pytest.raises(QueryError):
            engine.execute(
                "Select X.name From Student X Where X.advisor = t1", "CA"
            )

    def test_errors_are_repro_errors(self, engine):
        """Everything the engine raises derives from ReproError."""
        with pytest.raises(ReproError):
            engine.execute("Select X.a From Nothing X", "CA")


class TestNullHeavyData:
    def test_all_null_attribute_everywhere(self):
        system = tiny_system()
        # Null every 'a'.
        for obj in system.db("DB1").extent("S").values():
            obj.values["a"] = NULL
        engine = GlobalQueryEngine(system)
        query = Query.conjunctive("S", ["k"], [Predicate.of("a", "=", 9)])
        outcomes = engine.compare(query)
        assert len(outcomes["CA"].results.maybe) == 1
        assert not outcomes["CA"].results.certain

    def test_q1_still_consistent_after_nulling_addresses(self):
        system = build_school_federation()
        for obj in system.db("DB2").extent("Student").values():
            obj.values["address"] = NULL
        engine = GlobalQueryEngine(system)
        outcomes = engine.compare(Q1_TEXT)
        # With all addresses unknown, no certain results are possible:
        # every surviving entity can at best be maybe.
        assert not outcomes["CA"].results.certain
