"""Strategy behavior under fault plans: degraded answers, determinism,
zero overhead when off, and the completeness-aware agreement check.

The headline scenario (the chaos bench sweeps it too): with DB1 down,
CA loses *all* certainty — its fused outerjoin can no longer prove any
row complete — while BL/PL keep certifying rows whose provenance avoids
DB1.  That asymmetry is the paper-level payoff of per-site provenance.
"""

import dataclasses

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.results import Availability, certified_subset
from repro.errors import ExecutionTimeout, ReproError, UnavailableError
from repro.faults import EMPTY_PLAN, ExecutionPolicy, FaultPlan
from repro.workload.paper_example import Q1_TEXT, build_school_federation

DB1_DOWN = FaultPlan.single_site_loss("DB1")
DB2_DOWN = FaultPlan.single_site_loss("DB2")
DB3_DOWN = FaultPlan.single_site_loss("DB3")


class TestDegradedAnswers:
    def test_ca_collapses_under_db1_loss_but_bl_pl_do_not(self, school):
        engine = GlobalQueryEngine(school)
        ca = engine.execute(Q1_TEXT, "CA", fault_plan=DB1_DOWN)
        bl = engine.execute(Q1_TEXT, "BL", fault_plan=DB1_DOWN)
        pl = engine.execute(Q1_TEXT, "PL", fault_plan=DB1_DOWN)
        # CA demotes everything: the outerjoin is missing an extent.
        assert len(ca.results.certain) == 0
        # Susan's provenance (DB2 + DB3) avoids DB1 entirely.
        assert len(bl.results.certain) == 1
        assert len(pl.results.certain) == 1
        for report in (ca, bl, pl):
            assert not report.availability.complete
            assert report.availability.sites_skipped == ("DB1",)

    def test_ca_demotion_notes_name_the_dead_site(self, school):
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "CA", fault_plan=DB1_DOWN
        )
        assert report.results.maybe, "demoted rows must survive as maybe"
        for row in report.results.maybe:
            assert any("DB1" in note for note in row.notes)
            assert any("outerjoin incomplete" in note for note in row.notes)

    def test_bl_notes_blame_the_unreachable_assistant_site(self, school):
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "BL", fault_plan=DB2_DOWN
        )
        noted = {
            str(row.goid): row.notes
            for row in report.results.maybe
            if row.notes
        }
        # gs1 (John) stays maybe only because his DB2 assistant copy is
        # unreachable; gs2 is genuinely missing data and gets no note.
        assert "gs1" in noted
        assert any("DB2" in note for note in noted["gs1"])
        assert "gs2" not in noted

    def test_degradation_never_invents_certainty(self, school):
        engine = GlobalQueryEngine(school)
        for strategy in ("CA", "BL", "PL", "BL-S", "PL-S"):
            clean = engine.execute(Q1_TEXT, strategy)
            for plan in (DB1_DOWN, DB2_DOWN, DB3_DOWN):
                degraded = engine.execute(Q1_TEXT, strategy, fault_plan=plan)
                assert certified_subset(degraded.results, clean.results), (
                    f"{strategy} under {plan.outages[0].site} loss "
                    "certified a row the clean run does not"
                )

    def test_auto_threads_the_fault_context_through(self, school):
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "AUTO", fault_plan=DB1_DOWN
        )
        assert not report.availability.complete
        assert report.metrics.strategy.startswith("AUTO->")


class TestDeterminismAndOverhead:
    def test_same_plan_same_seed_byte_identical(self):
        # Fresh federations so both executions start with cold mapping/
        # decomposition caches — cache traffic is part of the report.
        plan = FaultPlan.from_spec("DB2@0:0.4,link:*>DB1:loss0.4", seed=11)
        first = GlobalQueryEngine(build_school_federation()).execute(
            Q1_TEXT, "BL", fault_plan=plan, fault_seed=3
        )
        second = GlobalQueryEngine(build_school_federation()).execute(
            Q1_TEXT, "BL", fault_plan=plan, fault_seed=3
        )
        assert first.to_dict() == second.to_dict()

    def test_different_fault_seed_may_differ_but_stays_valid(self, school):
        plan = FaultPlan(links=(FaultPlan.from_spec(
            "link:*>DB1:loss0.6").links[0],))
        engine = GlobalQueryEngine(school)
        clean = engine.execute(Q1_TEXT, "BL")
        for seed in range(4):
            report = engine.execute(
                Q1_TEXT, "BL", fault_plan=plan, fault_seed=seed
            )
            # Whatever the draws did, the partial answer never certifies
            # anything the clean run does not.
            assert certified_subset(report.results, clean.results)

    def test_empty_plan_is_exactly_no_plan(self):
        """The zero-overhead contract: an inactive plan must leave the
        report byte-identical — answers AND timings.  Fresh federations
        keep cache warmth (part of the report) equal across the runs."""
        baseline = GlobalQueryEngine(build_school_federation()).execute(
            Q1_TEXT, "PL"
        )
        gated = GlobalQueryEngine(build_school_federation()).execute(
            Q1_TEXT, "PL", fault_plan=EMPTY_PLAN
        )
        assert gated.to_dict() == baseline.to_dict()
        assert gated.total_time == baseline.total_time
        assert gated.response_time == baseline.response_time

    def test_engine_wide_plan_applies_and_per_call_overrides(self, school):
        engine = GlobalQueryEngine(school, fault_plan=DB1_DOWN)
        assert not engine.execute(Q1_TEXT, "BL").availability.complete
        overridden = engine.execute(Q1_TEXT, "BL", fault_plan=EMPTY_PLAN)
        assert overridden.availability.complete


class TestPolicies:
    def test_fail_fast_raises_unavailable(self, school):
        engine = GlobalQueryEngine(school)
        with pytest.raises(UnavailableError) as excinfo:
            engine.execute(
                Q1_TEXT, "BL", fault_plan=DB1_DOWN, policy="fail-fast"
            )
        assert "DB1" in str(excinfo.value)

    def test_deadline_raises_execution_timeout(self, school):
        tight = ExecutionPolicy(name="tight", deadline_s=0.05)
        with pytest.raises(ExecutionTimeout):
            GlobalQueryEngine(school).execute(
                Q1_TEXT, "CA", fault_plan=DB1_DOWN, policy=tight
            )

    def test_patient_policy_waits_out_short_outage(self, school):
        # DB1 recovers after 0.4s; patient retries reach past that.
        blip = FaultPlan.from_spec("DB1@0:0.4")
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "BL", fault_plan=blip, policy="patient"
        )
        assert report.availability.complete
        assert report.availability.retries  # it did have to retry
        assert report.metrics.work.retries > 0


class TestObservability:
    def test_fault_artifacts_visible_everywhere(self, school):
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "BL", fault_plan=DB1_DOWN
        )
        assert ("DB1", 0.0, 1e9) in report.metrics.fault_windows
        events = {event.name for event in report.metrics.events}
        assert "faults.plan" in events
        assert "fault.site_skipped" in events
        assert any(name.startswith("fault.attempt") for name in events) or \
            "fault.attempt" in events
        snapshot = report.registry.snapshot()
        assert snapshot["work.timeouts"] > 0
        chrome = report.trace.to_chrome_json()
        assert "OUTAGE DB1" in chrome
        assert report.trace.to_dict()["fault_windows"]

    def test_fault_waits_surface_in_phase_times(self, school):
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "BL", fault_plan=DB1_DOWN
        )
        assert report.metrics.phase_time.get("fault", 0.0) > 0
        assert "INCOMPLETE" in report.summary()


class TestCompareAgreement:
    def test_compare_passes_when_all_degrade(self, school):
        outcomes = GlobalQueryEngine(school).compare(
            Q1_TEXT, fault_plan=DB1_DOWN
        )
        assert all(
            not report.availability.complete for report in outcomes.values()
        )

    def test_compare_mixed_complete_and_degraded(self, school):
        # Only the global->DB1 link is lossy: CA (which ships extents to
        # the global site) may degrade while nothing else must; either
        # way the relaxed agreement check must hold.
        plan = FaultPlan.from_spec("DB1@0:0.4")
        outcomes = GlobalQueryEngine(school).compare(
            Q1_TEXT, fault_plan=plan, policy="patient"
        )
        assert len(outcomes) >= 3  # no ReproError raised

    def test_added_certainty_is_rejected(self, school):
        engine = GlobalQueryEngine(school)
        clean = engine.execute(Q1_TEXT, "BL")
        degraded_ca = engine.execute(Q1_TEXT, "CA", fault_plan=DB1_DOWN)
        # Forge the pathological pair: a "complete" run certifying
        # nothing and an "incomplete" one certifying a row.
        fake_complete = dataclasses.replace(
            degraded_ca, availability=Availability()
        )
        fake_degraded = dataclasses.replace(
            clean, availability=Availability(complete=False)
        )
        with pytest.raises(ReproError, match="added certainty"):
            GlobalQueryEngine._check_agreement(
                {"CA": fake_complete, "BL": fake_degraded}
            )

    def test_agreement_without_complete_baseline_is_vacuous(self, school):
        engine = GlobalQueryEngine(school)
        a = dataclasses.replace(
            engine.execute(Q1_TEXT, "CA"),
            availability=Availability(complete=False),
        )
        b = dataclasses.replace(
            engine.execute(Q1_TEXT, "BL", fault_plan=DB1_DOWN),
        )
        GlobalQueryEngine._check_agreement({"CA": a, "BL": b})  # no raise


class TestQueryTextRepr:
    def test_query_object_yields_readable_query_text(self, school):
        engine = GlobalQueryEngine(school)
        query = engine.parse(Q1_TEXT)
        report = engine.execute(query, "BL")
        assert report.query_text == str(query)
        assert report.query_text  # the old bug left this empty


class TestSurvivingSiteCosting:
    """``avg_branch_bytes`` — the per-object charge for shipped check
    replies — must average over the sites that survived negotiation,
    not every site the decomposition named."""

    def test_average_over_subset_differs_from_all_sites(self):
        from helpers import make_workload
        from repro.core.strategies.localized import _LocalizedStrategy

        workload = make_workload(seed=304)
        system, query = workload.system, workload.query
        all_sites = tuple(system.databases)
        full = _LocalizedStrategy._avg_branch_bytes(system, query, all_sites)
        per_site = {
            db: _LocalizedStrategy._avg_branch_bytes(system, query, [db])
            for db in all_sites
        }
        # This federation's sites store different constituent attributes,
        # so the per-site sizes differ and a subset shifts the average.
        assert len(set(per_site.values())) > 1
        assert full == pytest.approx(
            sum(per_site.values()) / len(per_site)
        )

    def test_no_surviving_sites_charges_nothing(self, school):
        from repro.core.strategies.localized import _LocalizedStrategy
        from repro.sqlx import parse_query

        query = parse_query(Q1_TEXT)
        assert _LocalizedStrategy._avg_branch_bytes(school, query, []) == 0.0

    def test_faulted_run_uses_surviving_average(self, school):
        """With DB3 down, check replies are costed at the DB1/DB2
        average — the run must not silently keep the three-site figure."""
        engine = GlobalQueryEngine(school)
        clean = engine.execute(Q1_TEXT, "BL")
        faulted = engine.execute(Q1_TEXT, "BL", fault_plan=DB3_DOWN)
        assert faulted.availability.sites_skipped == ("DB3",)
        # Different surviving set, different byte accounting.
        assert (faulted.metrics.work.bytes_network
                != clean.metrics.work.bytes_network)
