"""Property-based round-trip tests for the SQL/X front-end.

Random queries are built as ASTs, printed via ``str(Query)``, and parsed
back: the reparsed query must be structurally identical.  This covers
the printer/parser pair over the whole grammar (targets, nested paths,
all operators, conjunctions, DNF).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Op, Path, Predicate, Query
from repro.sqlx import parse_query
from repro.sqlx.lexer import KEYWORDS

# Identifiers that can't collide with keywords or the range variable.
ident = st.text(
    alphabet=string.ascii_lowercase, min_size=2, max_size=8
).filter(lambda s: s not in KEYWORDS)

path = st.lists(ident, min_size=1, max_size=3).map(lambda steps: Path(tuple(steps)))

operand = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    ident,  # bare identifiers parse back as strings
)

comparison_op = st.sampled_from(
    [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]
)

predicate = st.builds(
    lambda p, op, v: Predicate(path=p, op=op, operand=v),
    path, comparison_op, operand,
)

conjunction = st.lists(predicate, min_size=1, max_size=3)


@st.composite
def queries(draw):
    range_class = draw(ident.map(str.capitalize))
    targets = draw(st.lists(path, min_size=1, max_size=3))
    disjuncts = draw(st.lists(conjunction, min_size=0, max_size=3))
    if not disjuncts:
        return Query.conjunctive(range_class, targets, [])
    if len(disjuncts) == 1:
        return Query.conjunctive(range_class, targets, disjuncts[0])
    return Query.disjunctive(range_class, targets, disjuncts)


@settings(max_examples=150, deadline=None)
@given(queries())
def test_print_parse_roundtrip(query):
    reparsed = parse_query(str(query))
    assert reparsed.range_class == query.range_class
    assert reparsed.targets == query.targets
    assert reparsed.where == query.where


@settings(max_examples=60, deadline=None)
@given(queries())
def test_double_roundtrip_is_fixpoint(query):
    once = parse_query(str(query))
    twice = parse_query(str(once))
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(path)
def test_path_parse_roundtrip(p):
    assert Path.parse(str(p)) == p
