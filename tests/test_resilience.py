"""Unit and integration tests for the resilience layer.

Covers the circuit breaker state machine, inline policy-spec parsing,
replica failover under component-link storms (including byte-identical
full recovery), hedged dispatch invariance, the zero-overhead contract
of ``failover=False``, and the new CLI flags.
"""

import pytest

from repro.core.engine import GlobalQueryEngine
from repro.core.results import Availability
from repro.errors import FaultPlanError
from repro.faults import ExecutionPolicy, FaultPlan
from repro.faults.injector import ExecutionContext
from repro.faults.policy import parse_policy_spec, resolve_policy
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    SiteHealthRegistry,
)
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def storm_plan(loss=0.97):
    """Every component->component link lossy; global links clean."""
    sites = ("DB1", "DB2", "DB3")
    spec = ",".join(
        f"link:{a}>{b}:loss{loss:g}" for a in sites for b in sites if a != b
    )
    return FaultPlan.from_spec(spec)


class TestBreakerStateMachine:
    def test_threshold_opens_the_circuit(self):
        reg = SiteHealthRegistry()
        for _ in range(2):
            reg.record("DB2", ok=False)
        assert reg.state("DB2") == CLOSED
        reg.record("DB2", ok=False)
        assert reg.state("DB2") == OPEN
        assert ("DB2", CLOSED, OPEN) in reg.transitions

    def test_success_resets_the_failure_streak(self):
        reg = SiteHealthRegistry()
        reg.record("DB2", ok=False)
        reg.record("DB2", ok=False)
        reg.record("DB2", ok=True)
        reg.record("DB2", ok=False)
        reg.record("DB2", ok=False)
        assert reg.state("DB2") == CLOSED

    def test_open_circuit_suppresses_until_cooldown(self):
        reg = SiteHealthRegistry(BreakerPolicy(cooldown_jitter=0))
        for _ in range(3):
            reg.record("DB2", ok=False)
        # cooldown_attempts=2 suppressed contacts, then one probe.
        assert not reg.allow("DB2")
        assert not reg.allow("DB2")
        assert reg.allow("DB2")
        assert reg.state("DB2") == HALF_OPEN
        assert reg.suppressed_total == 2

    def test_half_open_probe_closes_or_reopens(self):
        reg = SiteHealthRegistry(BreakerPolicy(cooldown_jitter=0))
        for _ in range(3):
            reg.record("DB2", ok=False)
        while not reg.allow("DB2"):
            pass
        reg.record("DB2", ok=True)
        assert reg.state("DB2") == CLOSED

        for _ in range(3):
            reg.record("DB3", ok=False)
        while not reg.allow("DB3"):
            pass
        reg.record("DB3", ok=False)  # probe fails: straight back to open
        assert reg.state("DB3") == OPEN
        assert reg.health("DB3").opened_count == 2

    def test_cooldown_is_seed_deterministic(self):
        def cooldown(seed):
            reg = SiteHealthRegistry(seed=seed)
            for _ in range(3):
                reg.record("DB2", ok=False)
            return reg.health("DB2").cooldown_remaining

        assert cooldown(7) == cooldown(7)
        assert 2 <= cooldown(7) <= 4  # base 2 + jitter in [0, 2]

    def test_rank_orders_by_health(self):
        reg = SiteHealthRegistry()
        for _ in range(3):
            reg.record("DB1", ok=False)  # open
        reg.record("DB2", ok=False)  # closed, 1 failure
        reg.record("DB3", ok=True)  # closed, healthy
        assert reg.rank(["DB1", "DB2", "DB3"]) == ["DB3", "DB2", "DB1"]

    def test_snapshot_lists_only_non_closed(self):
        reg = SiteHealthRegistry()
        reg.record("DB3", ok=True)
        for _ in range(3):
            reg.record("DB1", ok=False)
        assert reg.snapshot() == (("DB1", OPEN),)

    def test_latency_ewma_moves_toward_samples(self):
        reg = SiteHealthRegistry()
        reg.record("DB2", ok=True, latency_s=1.0)
        # The first sample seeds the EWMA outright (no blend with 0.0).
        assert reg.health("DB2").latency_ewma_s == pytest.approx(1.0)
        reg.record("DB2", ok=True, latency_s=2.0)
        assert reg.health("DB2").latency_ewma_s == pytest.approx(1.3)

    def test_policy_validation(self):
        with pytest.raises(FaultPlanError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(FaultPlanError):
            BreakerPolicy(cooldown_attempts=-1)
        with pytest.raises(FaultPlanError):
            BreakerPolicy(ewma_alpha=0.0)


class TestPolicySpecs:
    def test_preset_passthrough(self):
        assert parse_policy_spec("patient").name == "patient"

    def test_inline_overrides(self):
        policy = parse_policy_spec("degrade:timeout=0.5,retries=3,hedge=0.1")
        assert policy.timeout_s == 0.5
        assert policy.max_retries == 3
        assert policy.hedge_delay_s == 0.1
        assert policy.name == "degrade:timeout=0.5,retries=3,hedge=0.1"

    def test_bool_override(self):
        assert parse_policy_spec("degrade:fail_fast=yes").fail_fast
        assert not parse_policy_spec("degrade:fail_fast=off").fail_fast

    def test_unknown_preset(self):
        with pytest.raises(FaultPlanError, match="unknown policy"):
            parse_policy_spec("nope:timeout=1")

    def test_unknown_key(self):
        with pytest.raises(FaultPlanError, match="unknown policy override"):
            parse_policy_spec("degrade:warp=9")

    def test_malformed_override(self):
        with pytest.raises(FaultPlanError, match="malformed"):
            parse_policy_spec("degrade:timeout")

    def test_bad_value(self):
        with pytest.raises(FaultPlanError, match="bad value"):
            parse_policy_spec("degrade:retries=many")

    def test_out_of_range_value_fails_validation(self):
        with pytest.raises(FaultPlanError):
            parse_policy_spec("degrade:timeout=-1")

    def test_resolve_policy_accepts_specs(self):
        assert resolve_policy("degrade:hedge=0.05").hedge_delay_s == 0.05


class TestReplicaFailover:
    @pytest.mark.parametrize("strategy", ["BL", "PL"])
    def test_storm_recovery_is_byte_identical(self, school, strategy):
        engine = GlobalQueryEngine(school)
        clean = engine.execute(Q1_TEXT, strategy)
        on = engine.execute(
            Q1_TEXT, strategy, fault_plan=storm_plan(), fault_seed=0
        )
        avail = on.availability
        assert not avail.complete
        assert avail.fully_recovered
        assert avail.certification_intact
        assert avail.checks_failed_over > 0
        assert avail.checks_skipped == 0
        assert on.results.to_dicts() == clean.results.to_dicts()

    @pytest.mark.parametrize("strategy", ["BL", "PL"])
    def test_failover_beats_eager_demotion(self, school, strategy):
        engine = GlobalQueryEngine(school)
        off = engine.execute(
            Q1_TEXT, strategy, fault_plan=storm_plan(), fault_seed=0,
            failover=False,
        )
        on = engine.execute(
            Q1_TEXT, strategy, fault_plan=storm_plan(), fault_seed=0,
        )
        assert off.availability.checks_skipped > 0
        assert not off.availability.fully_recovered
        assert len(on.results.certain) > len(off.results.certain)
        # Monotonicity: off-certainty is a subset of on-certainty.
        off_certain = {r.goid for r in off.results.certain}
        on_certain = {r.goid for r in on.results.certain}
        assert off_certain <= on_certain

    def test_failover_emits_relay_events(self, school):
        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "PL", fault_plan=storm_plan(), fault_seed=0
        )
        relays = [
            e for e in report.metrics.events
            if e.name == "fault.failover" and "via" in e.attr_dict()
        ]
        assert relays
        for event in relays:
            assert event.attr_dict()["via"] == school.global_site
        assert report.metrics.work.checks_failed_over == len(relays)

    def test_site_outage_failover_matches_legacy(self, school):
        # A whole-site outage kills the relay route too, so failover
        # must degrade exactly like the eager path.
        plan = FaultPlan.single_site_loss("DB2")
        engine = GlobalQueryEngine(school)
        on = engine.execute(Q1_TEXT, "BL", fault_plan=plan)
        off = engine.execute(Q1_TEXT, "BL", fault_plan=plan, failover=False)
        assert on.results.to_dicts() == off.results.to_dicts()
        assert not on.availability.fully_recovered
        assert on.availability.checks_failed_over == 0

    def test_failover_runs_are_deterministic(self, school):
        engine = GlobalQueryEngine(school)
        runs = [
            engine.execute(
                Q1_TEXT, "PL", fault_plan=storm_plan(), fault_seed=0,
                policy="degrade:hedge=0.05",
            )
            for _ in range(2)
        ]
        assert runs[0].results.to_dicts() == runs[1].results.to_dicts()
        assert runs[0].availability.to_dict() == runs[1].availability.to_dict()
        assert runs[0].total_time == runs[1].total_time

    def test_context_without_failover_has_no_health(self):
        plan = storm_plan()
        ctx = ExecutionContext(plan, ExecutionPolicy())
        assert not ctx.failover
        assert ctx.health is None
        on = ExecutionContext(plan, ExecutionPolicy(), failover=True)
        assert on.health is not None


class TestHedgedDispatch:
    PLAN = "link:DB1>DB2:loss0.8,link:DB3>DB2:loss0.8"

    def run(self, school, policy):
        return GlobalQueryEngine(school).execute(
            Q1_TEXT, "PL",
            fault_plan=FaultPlan.from_spec(self.PLAN),
            fault_seed=2, policy=policy,
        )

    def test_hedging_never_changes_answers(self, school):
        plain = self.run(school, None)
        hedged = self.run(school, "degrade:hedge=0.05")
        assert hedged.results.to_dicts() == plain.results.to_dicts()

    def test_winning_hedge_cuts_response_time(self, school):
        plain = self.run(school, None)
        hedged = self.run(school, "degrade:hedge=0.05")
        assert hedged.availability.hedges_won > 0
        assert hedged.response_time < plain.response_time

    def test_hedge_events_and_counters(self, school):
        hedged = self.run(school, "degrade:hedge=0.05")
        events = [
            e for e in hedged.metrics.events if e.name == "fault.hedge"
        ]
        assert len(events) == hedged.availability.hedges
        assert hedged.metrics.work.hedges == hedged.availability.hedges


class TestAvailabilityAnnotation:
    def test_to_dict_carries_failover_fields(self):
        avail = Availability(
            complete=False,
            checks_failed_over=2,
            hedges=3,
            hedges_won=1,
            fully_recovered=True,
            queried_sites_down=("DB1",),
            breaker=(("DB2", "open"),),
            contacts_suppressed=4,
        )
        exported = avail.to_dict()
        assert exported["checks_failed_over"] == 2
        assert exported["hedges"] == 3
        assert exported["hedges_won"] == 1
        assert exported["fully_recovered"] is True
        assert exported["queried_sites_down"] == ["DB1"]
        assert exported["breaker"] == {"DB2": "open"}
        assert exported["contacts_suppressed"] == 4

    def test_summary_mentions_recovery_and_failover(self):
        avail = Availability(
            complete=False, checks_failed_over=2, hedges=2, hedges_won=1,
            fully_recovered=True, breaker=(("DB2", "open"),),
        )
        text = avail.summary()
        assert "recovered" in text
        assert "failover=2" in text
        assert "hedges=1/2" in text
        assert "breaker=DB2:open" in text

    def test_certification_intact(self):
        assert Availability().certification_intact
        assert Availability(
            complete=False, fully_recovered=True
        ).certification_intact
        assert not Availability(complete=False).certification_intact


class TestCliFlags:
    def test_failover_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["query", "q"])
        assert args.failover is True
        args = build_parser().parse_args(["query", "q", "--no-failover"])
        assert args.failover is False
        args = build_parser().parse_args(
            ["query", "q", "--hedge", "0.05", "--policy", "patient"]
        )
        assert args.hedge == 0.05
        assert args.policy == "patient"

    def test_bad_policy_spec_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "query", "Select X.name From Student X", "--policy", "nope:bad",
        ])
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_query_with_failover_and_hedge(self, capsys):
        from repro.cli import main

        code = main([
            "query",
            "Select X.name From Student X "
            "Where X.advisor.speciality = database",
            "--faults", "link:DB1>DB2:loss0.9",
            "--policy", "degrade:retries=2", "--hedge", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded:" in out

    def test_query_no_failover(self, capsys):
        from repro.cli import main

        code = main([
            "query", "Select X.name From Student X",
            "--faults", "link:DB1>DB2:loss0.9", "--no-failover",
        ])
        assert code == 0
