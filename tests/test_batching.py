"""Batched phase-O dispatch: one message pair per (src, dst) link.

Covers the wire-protocol contract (batched and unbatched runs return
byte-identical answers; batching never sends more and usually sends
strictly fewer messages), the explicit request<->report pairing that
replaced positional ``zip`` alignment, the ``dispatch.batch`` trace
events, and the engine/CLI plumbing of ``batch_checks``.
"""

from __future__ import annotations

import pytest

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.query import Predicate
from repro.core.strategies.base import (
    CheckBatch,
    batch_exchanges,
    run_checks_paired,
)
from repro.objectdb.local_query import CheckReport, CheckRequest
from repro.objectdb.ids import LOid
from repro.workload.paper_example import Q1_TEXT, build_school_federation

#: A generated federation whose query produces multiple check requests
#: per (src, dst) link — the case batching collapses.
BUSY_SEED = 103


@pytest.fixture()
def busy_workload():
    return make_workload(BUSY_SEED)


LOCALIZED = ("BL", "PL", "BL-S", "PL-S")


class TestBatchingContract:
    @pytest.mark.parametrize("strategy", LOCALIZED)
    def test_answers_byte_identical(self, busy_workload, strategy):
        engine = GlobalQueryEngine(busy_workload.system)
        batched = engine.execute(busy_workload.query, strategy)
        unbatched = engine.execute(
            busy_workload.query, strategy, batch_checks=False
        )
        assert batched.results.to_json() == unbatched.results.to_json()

    @pytest.mark.parametrize("strategy", LOCALIZED)
    def test_strictly_fewer_messages(self, busy_workload, strategy):
        engine = GlobalQueryEngine(busy_workload.system)
        batched = engine.execute(busy_workload.query, strategy)
        unbatched = engine.execute(
            busy_workload.query, strategy, batch_checks=False
        )
        assert (batched.metrics.work.messages
                < unbatched.metrics.work.messages)

    @pytest.mark.parametrize("strategy", LOCALIZED)
    def test_never_more_bytes(self, busy_workload, strategy):
        """Shared predicate descriptors ship once per batch, so the
        batched request stream can only shrink."""
        engine = GlobalQueryEngine(busy_workload.system)
        batched = engine.execute(busy_workload.query, strategy)
        unbatched = engine.execute(
            busy_workload.query, strategy, batch_checks=False
        )
        assert (batched.metrics.work.bytes_network
                <= unbatched.metrics.work.bytes_network)

    def test_dispatch_batch_events_present_and_sized(self, busy_workload):
        report = GlobalQueryEngine(busy_workload.system).execute(
            busy_workload.query, "BL"
        )
        batches = [e for e in report.metrics.events
                   if e.name == "dispatch.batch"]
        assert batches, "batched run recorded no dispatch.batch events"
        for event in batches:
            attrs = event.attr_dict()
            assert int(attrs["requests"]) >= 1
            assert int(attrs["loids"]) >= 1
            assert int(attrs["request_bytes"]) > 0
            assert attrs["src"] != attrs["dst"]

    def test_unbatched_run_has_no_batch_events(self, busy_workload):
        report = GlobalQueryEngine(busy_workload.system).execute(
            busy_workload.query, "BL", batch_checks=False
        )
        assert not [e for e in report.metrics.events
                    if e.name == "dispatch.batch"]

    def test_existing_cost_inequalities_survive(self, busy_workload):
        """The paper-level ordering (BL beats CA on network traffic for
        missing-data workloads) is only amplified by batching."""
        engine = GlobalQueryEngine(busy_workload.system)
        ca = engine.execute(busy_workload.query, "CA")
        bl = engine.execute(busy_workload.query, "BL")
        assert bl.metrics.work.bytes_network < ca.metrics.work.bytes_network


class TestChaseBatching:
    def test_chase_rounds_batch_and_agree(self):
        from test_chase import QUERY, build_chain_federation

        batched = GlobalQueryEngine(build_chain_federation(7)).execute(
            QUERY, "BL"
        )
        unbatched = GlobalQueryEngine(build_chain_federation(7)).execute(
            QUERY, "BL", batch_checks=False
        )
        assert batched.results.to_json() == unbatched.results.to_json()
        assert (batched.metrics.work.messages
                <= unbatched.metrics.work.messages)
        # The chase round's batch events carry their round number.
        rounds = [e for e in batched.metrics.events
                  if e.name == "dispatch.batch"
                  and "round" in e.attr_dict()]
        assert rounds, "chase executed but recorded no batched exchange"


class TestPairing:
    def test_reports_keyed_by_request_across_sites(self, school):
        """The regression the explicit pairing prevents: requests to
        different sites interleaved in one dispatch list must come back
        with each report bound to its own request."""
        requests = [
            CheckRequest(
                db_name="DB3", class_name="Dept2",
                loids=(LOid("DB3", 't2"'),),
                predicates=(Predicate.of("dname", "=", "CS"),),
            ),
            CheckRequest(
                db_name="DB2", class_name="Stud2",
                loids=(LOid("DB2", "s2'"),),
                predicates=(Predicate.of("sex", "=", "male"),),
            ),
        ]
        pairs = run_checks_paired(requests, school)
        assert [request for request, _ in pairs] == requests
        for request, report in pairs:
            assert report.db_name == request.db_name
            assert report.class_name == request.class_name


class TestCheckBatchUnits:
    def _pair(self, dst, loids, predicates):
        request = CheckRequest(
            db_name=dst, class_name="C", loids=tuple(loids),
            predicates=tuple(predicates),
        )
        return request, CheckReport(db_name=dst, class_name="C")

    def test_groups_by_destination_sorted(self):
        pred = Predicate.of("x", "=", 1)
        pairs = [
            self._pair("DB3", [LOid("DB3", "a")], [pred]),
            self._pair("DB2", [LOid("DB2", "b")], [pred]),
            self._pair("DB3", [LOid("DB3", "c")], [pred]),
        ]
        batches = batch_exchanges("DB1", pairs)
        assert [b.dst for b in batches] == ["DB2", "DB3"]
        assert all(b.src == "DB1" for b in batches)
        assert len(batches[1].pairs) == 2

    def test_shared_predicates_ship_once(self, school):
        """Batch request bytes charge distinct predicates, not the sum
        of per-request predicate lists."""
        cost = school.cost_model
        pred = Predicate.of("x", "=", 1)
        pairs = [
            self._pair("DB2", [LOid("DB2", "a")], [pred]),
            self._pair("DB2", [LOid("DB2", "b")], [pred]),
        ]
        (batch,) = batch_exchanges("DB1", pairs)
        assert batch.total_loids == 2
        assert batch.distinct_predicates == 1
        per_request = 2 * cost.check_request_bytes(1, 1)
        assert batch.request_bytes(cost) < per_request

    def test_empty_reply_still_charged_one_verdict(self, school):
        batch = CheckBatch(src="DB1", dst="DB2")
        batch.pairs.append(self._pair("DB2", [LOid("DB2", "a")], []))
        assert batch.total_verdicts == 0
        assert batch.reply_bytes(school.cost_model) == (
            school.cost_model.check_reply_bytes(1)
        )


class TestEnginePlumbing:
    def test_engine_wide_flag_and_per_call_override(self, busy_workload):
        engine = GlobalQueryEngine(
            busy_workload.system, batch_checks=False
        )
        off = engine.execute(busy_workload.query, "BL")
        on = engine.execute(busy_workload.query, "BL", batch_checks=True)
        assert on.metrics.work.messages < off.metrics.work.messages

    def test_auto_threads_flag_to_delegate(self, busy_workload):
        engine = GlobalQueryEngine(busy_workload.system)
        batched = engine.execute(busy_workload.query, "AUTO")
        unbatched = engine.execute(
            busy_workload.query, "AUTO", batch_checks=False
        )
        assert batched.results.to_json() == unbatched.results.to_json()
        assert (batched.metrics.work.messages
                <= unbatched.metrics.work.messages)

    def test_cli_no_batch_flag(self, capsys):
        from repro.cli import main

        assert main(["query", Q1_TEXT, "--no-batch"]) == 0
        plain = capsys.readouterr().out
        assert main(["query", Q1_TEXT]) == 0
        batched = capsys.readouterr().out
        # Same answer either way (the school federation's Q1).
        assert plain == batched

    def test_messages_counter_in_registry(self, busy_workload):
        report = GlobalQueryEngine(busy_workload.system).execute(
            busy_workload.query, "BL"
        )
        snapshot = report.registry.snapshot()
        assert snapshot["work.messages"] == report.metrics.work.messages
        assert snapshot["work.messages"] > 0


@pytest.mark.parametrize("strategy", LOCALIZED + ("CA",))
def test_school_q1_batched_equals_seed_answers(school, strategy):
    """Batching must not perturb the paper's worked example."""
    engine = GlobalQueryEngine(school)
    report = engine.execute(Q1_TEXT, strategy)
    assert len(report.results.certain) == 1
    assert len(report.results.maybe) == 1
