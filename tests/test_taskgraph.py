"""Unit tests for activity-graph scheduling over the simulated federation."""

import pytest

from repro.errors import SimulationError
from repro.sim.costs import CostModel
from repro.sim.taskgraph import (
    FederationSim,
    PHASE_I,
    PHASE_O,
    PHASE_P,
    PHASE_SCAN,
    PHASE_XFER,
)

#: Simple costs for readable arithmetic: 1 s/byte disk, 1 s/byte net,
#: 1 s/comparison cpu, no seek.
UNIT = CostModel(
    disk_s_per_byte=1.0,
    net_s_per_byte=1.0,
    cpu_s_per_comparison=1.0,
    disk_seek_s=0.0,
)


def fed(**kwargs):
    return FederationSim(["A", "B"], global_site="G", cost_model=UNIT, **kwargs)


class TestBasics:
    def test_single_activity(self):
        f = fed()
        f.cpu("A", comparisons=5)
        outcome = f.run()
        assert outcome.total_time == 5
        assert outcome.response_time == 5

    def test_chain_adds_up(self):
        f = fed()
        a = f.disk("A", nbytes=3)
        b = f.cpu("A", comparisons=4, deps=[a])
        f.transfer("A", "G", nbytes=2, deps=[b])
        outcome = f.run()
        assert outcome.total_time == 9
        assert outcome.response_time == 9

    def test_parallel_sites_overlap(self):
        f = fed()
        f.cpu("A", comparisons=5)
        f.cpu("B", comparisons=5)
        outcome = f.run()
        assert outcome.total_time == 10
        assert outcome.response_time == 5

    def test_same_site_serializes(self):
        f = fed()
        f.cpu("A", comparisons=5)
        f.cpu("A", comparisons=5)
        outcome = f.run()
        assert outcome.response_time == 10

    def test_cpu_and_disk_are_distinct_devices(self):
        f = fed()
        f.cpu("A", comparisons=5)
        f.disk("A", nbytes=5)
        outcome = f.run()
        assert outcome.response_time == 5

    def test_barrier_is_free(self):
        f = fed()
        a = f.cpu("A", comparisons=1)
        b = f.cpu("B", comparisons=2)
        bar = f.barrier([a, b])
        f.cpu("G", comparisons=3, deps=[bar])
        outcome = f.run()
        assert outcome.response_time == 5


class TestNetworkContention:
    def test_shared_channel_serializes(self):
        f = fed(shared_network=True)
        f.transfer("A", "G", nbytes=4)
        f.transfer("B", "G", nbytes=4)
        outcome = f.run()
        assert outcome.response_time == 8

    def test_private_channels_overlap(self):
        f = fed(shared_network=False)
        f.transfer("A", "G", nbytes=4)
        f.transfer("B", "G", nbytes=4)
        outcome = f.run()
        assert outcome.response_time == 4

    def test_total_time_ignores_contention(self):
        for shared in (True, False):
            f = fed(shared_network=shared)
            f.transfer("A", "G", nbytes=4)
            f.transfer("B", "G", nbytes=4)
            assert f.run().total_time == 8


class TestAccounting:
    def test_phase_breakdown(self):
        f = fed()
        scan = f.disk("A", nbytes=2, phase=PHASE_SCAN)
        evaluate = f.cpu("A", comparisons=3, phase=PHASE_P, deps=[scan])
        ship = f.transfer("A", "G", nbytes=4, deps=[evaluate])
        f.cpu("G", comparisons=5, phase=PHASE_I, deps=[ship])
        outcome = f.run()
        assert outcome.phase_time[PHASE_SCAN] == 2
        assert outcome.phase_time[PHASE_P] == 3
        assert outcome.phase_time[PHASE_XFER] == 4
        assert outcome.phase_time[PHASE_I] == 5

    def test_bytes_transferred(self):
        f = fed()
        f.transfer("A", "G", nbytes=7)
        assert f.run().bytes_transferred == 7

    def test_site_busy(self):
        f = fed()
        f.cpu("A", comparisons=2)
        f.disk("A", nbytes=3)
        f.cpu("B", comparisons=4)
        outcome = f.run()
        assert outcome.site_busy["A"] == 5
        assert outcome.site_busy["B"] == 4

    def test_seeks_add_time(self):
        model = CostModel(disk_s_per_byte=0.0, disk_seek_s=2.0)
        f = FederationSim(["A"], global_site="G", cost_model=model)
        f.disk("A", nbytes=100, seeks=3)
        assert f.run().total_time == pytest.approx(6.0)


class TestValidation:
    def test_unknown_site_rejected(self):
        f = fed()
        with pytest.raises(SimulationError):
            f.cpu("Z", comparisons=1)

    def test_negative_duration_rejected(self):
        f = fed()
        with pytest.raises(SimulationError):
            f.cpu("A", comparisons=-1)

    def test_run_twice_rejected(self):
        f = fed()
        f.cpu("A", comparisons=1)
        f.run()
        with pytest.raises(SimulationError):
            f.run()

    def test_add_after_run_rejected(self):
        f = fed()
        f.cpu("A", comparisons=1)
        f.run()
        with pytest.raises(SimulationError):
            f.cpu("A", comparisons=1)

    def test_global_site_always_present(self):
        f = FederationSim(["A"], global_site="G", cost_model=UNIT)
        assert "G" in f.sites
