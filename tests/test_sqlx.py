"""Unit tests for the SQL/X front-end (lexer + parser)."""

import pytest

from repro.core.query import Op, Path, Predicate
from repro.errors import SqlxSyntaxError
from repro.sqlx import parse, parse_query, tokenize
from repro.sqlx.lexer import TokenKind
from repro.workload.paper_example import Q1_TEXT


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT x FROM y WHERE z")
        assert [t.text for t in tokens if t.kind is TokenKind.KEYWORD] == [
            "select", "from", "where",
        ]

    def test_identifiers_keep_case(self):
        tokens = tokenize("Select Student")
        idents = [t for t in tokens if t.kind is TokenKind.IDENT]
        assert idents[0].text == "Student"

    def test_operators(self):
        tokens = tokenize("a = b != c <= d >= e < f > g <> h")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == ["=", "!=", "<=", ">=", "<", ">", "!="]

    def test_numbers(self):
        tokens = tokenize("12 3.5")
        nums = [t.text for t in tokens if t.kind is TokenKind.NUMBER]
        assert nums == ["12", "3.5"]

    def test_strings(self):
        tokens = tokenize("'hello world' \"two\"")
        strs = [t.text for t in tokens if t.kind is TokenKind.STRING]
        assert strs == ["hello world", "two"]

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize(". , ( ) @")][:-1]
        assert kinds == [
            TokenKind.DOT, TokenKind.COMMA, TokenKind.LPAREN,
            TokenKind.RPAREN, TokenKind.AT,
        ]

    def test_junk_rejected_with_position(self):
        with pytest.raises(SqlxSyntaxError) as err:
            tokenize("a $ b")
        assert err.value.position == 2

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_hyphenated_identifier(self):
        # The paper's attribute "s-no".
        tokens = tokenize("s-no")
        assert tokens[0].text == "s-no"


class TestParserQ1:
    def test_q1_structure(self):
        query = parse_query(Q1_TEXT)
        assert query.range_class == "Student"
        assert query.targets == (Path.parse("name"), Path.parse("advisor.name"))
        assert query.is_conjunctive
        assert {str(p) for p in query.predicates} == {
            "address.city = 'Taipei'",
            "advisor.speciality = 'database'",
            "advisor.department.name = 'CS'",
        }

    def test_bare_identifiers_are_strings(self):
        query = parse_query("Select X.a From C X Where X.a = Taipei")
        assert query.predicates[0].operand == "Taipei"

    def test_variable_metadata(self):
        parsed = parse("Select Y.a From C Y Where Y.a = 1")
        assert parsed.variable == "Y"
        assert parsed.site is None

    def test_site_qualifier(self):
        parsed = parse("Select X.name From Student@DB1 X")
        assert parsed.site == "DB1"
        assert parsed.query.range_class == "Student"


class TestParserForms:
    def test_numeric_literals(self):
        query = parse_query("Select X.a From C X Where X.a < 5 and X.b >= 2.5")
        preds = query.predicates
        assert preds[0].operand == 5 and isinstance(preds[0].operand, int)
        assert preds[1].operand == 2.5

    def test_quoted_literals(self):
        query = parse_query("Select X.a From C X Where X.a = 'two words'")
        assert query.predicates[0].operand == "two words"

    def test_contains(self):
        query = parse_query("Select X.a From C X Where X.tags contains 5")
        assert query.predicates[0].op is Op.CONTAINS

    def test_no_where(self):
        query = parse_query("Select X.a From C X")
        assert query.where == ()

    def test_or_produces_dnf(self):
        query = parse_query(
            "Select X.a From C X Where X.a = 1 or X.b = 2"
        )
        assert len(query.where) == 2
        assert not query.is_conjunctive

    def test_and_binds_tighter_than_or(self):
        query = parse_query(
            "Select X.a From C X Where X.a = 1 and X.b = 2 or X.c = 3"
        )
        assert len(query.where) == 2
        assert len(query.where[0]) == 2
        assert len(query.where[1]) == 1

    def test_parentheses_distribute(self):
        query = parse_query(
            "Select X.a From C X Where X.a = 1 and (X.b = 2 or X.c = 3)"
        )
        # (a AND b) OR (a AND c)
        assert len(query.where) == 2
        assert all(len(conj) == 2 for conj in query.where)

    def test_nested_parentheses(self):
        query = parse_query(
            "Select X.a From C X Where ((X.a = 1))"
        )
        assert query.is_conjunctive

    def test_unprefixed_paths_kept(self):
        # A path not starting with the range variable is taken literally.
        query = parse_query("Select name From C X Where age > 3")
        assert query.targets == (Path.parse("name"),)
        assert query.predicates[0].path == Path.parse("age")


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "From C X",                              # missing Select
            "Select X.a C X",                        # missing From
            "Select X.a From C",                     # missing variable
            "Select X.a From C X Where",             # empty Where
            "Select X.a From C X Where X.a",         # missing operator
            "Select X.a From C X Where X.a =",       # missing literal
            "Select X.a From C X Where (X.a = 1",    # unbalanced paren
            "Select X.a From C X trailing",          # junk after query
            "Select From C X",                       # empty target list
            "Select X.a, From C X",                  # dangling comma
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SqlxSyntaxError):
            parse_query(text)


class TestRoundTrip:
    def test_str_reparses_equivalent(self):
        query = parse_query(Q1_TEXT)
        again = parse_query(str(query))
        assert again.range_class == query.range_class
        assert again.targets == query.targets
        assert set(again.predicates) == set(query.predicates)


class TestNegation:
    def test_not_comparison_complements(self):
        query = parse_query("Select X.a From C X Where not X.a = 1")
        assert query.predicates == (Predicate.of("a", "!=", 1),)

    def test_not_ordering(self):
        query = parse_query("Select X.a From C X Where not X.a < 5")
        assert query.predicates[0].op is Op.GE
        query = parse_query("Select X.a From C X Where not X.a >= 5")
        assert query.predicates[0].op is Op.LT

    def test_de_morgan_over_and(self):
        query = parse_query(
            "Select X.a From C X Where not (X.a = 1 and X.b = 2)"
        )
        # NOT(a AND b) = (!a) OR (!b)
        assert len(query.where) == 2
        assert query.where[0] == (Predicate.of("a", "!=", 1),)
        assert query.where[1] == (Predicate.of("b", "!=", 2),)

    def test_de_morgan_over_or(self):
        query = parse_query(
            "Select X.a From C X Where not (X.a = 1 or X.b = 2)"
        )
        assert query.is_conjunctive
        assert set(query.predicates) == {
            Predicate.of("a", "!=", 1), Predicate.of("b", "!=", 2),
        }

    def test_double_negation(self):
        query = parse_query("Select X.a From C X Where not not X.a = 1")
        assert query.predicates == (Predicate.of("a", "=", 1),)

    def test_not_contains(self):
        query = parse_query(
            "Select X.a From C X Where X.tags not contains 5"
        )
        assert query.predicates[0].op is Op.NOT_CONTAINS

    def test_negated_contains(self):
        query = parse_query(
            "Select X.a From C X Where not X.tags contains 5"
        )
        assert query.predicates[0].op is Op.NOT_CONTAINS

    def test_dangling_not_rejected(self):
        with pytest.raises(SqlxSyntaxError):
            parse_query("Select X.a From C X Where not")

    def test_not_without_contains_after_path_rejected(self):
        with pytest.raises(SqlxSyntaxError):
            parse_query("Select X.a From C X Where X.a not 5")


class TestNegationSemantics:
    """NOT queries run end-to-end with 3VL semantics preserved."""

    def test_negated_query_on_school(self):
        from repro.core.engine import GlobalQueryEngine
        from repro.workload.paper_example import build_school_federation

        engine = GlobalQueryEngine(build_school_federation())
        outcomes = engine.compare(
            "Select X.name From Student X Where not X.sex = female"
        )
        certain = {r[0] for r in outcomes["CA"].results.certain_rows()}
        maybe = {r[0] for r in outcomes["CA"].results.maybe_rows()}
        # John (male via DB2) and Tony are certainly not female; nobody's
        # sex is unknown after integration.
        assert certain == {"John", "Tony"}
        assert maybe == set()

    def test_negation_keeps_unknown_unknown(self):
        from repro.core.engine import GlobalQueryEngine
        from repro.objectdb.ids import LOid
        from repro.objectdb.values import NULL
        from repro.workload.paper_example import build_school_federation

        system = build_school_federation()
        # Erase John's sex everywhere: 3VL keeps him maybe either way.
        system.db("DB2").get(LOid("DB2", "s2'")).values["sex"] = NULL
        engine = GlobalQueryEngine(system)
        positive = engine.execute(
            "Select X.name From Student X Where X.sex = female", "CA"
        )
        negative = engine.execute(
            "Select X.name From Student X Where not X.sex = female", "CA"
        )
        pos_maybe = {r[0] for r in positive.results.maybe_rows()}
        neg_maybe = {r[0] for r in negative.results.maybe_rows()}
        assert "John" in pos_maybe
        assert "John" in neg_maybe
