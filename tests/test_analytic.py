"""Unit tests for the analytic (parameter-driven) model."""

import random

import pytest

from repro.analytic.model import AnalyticModel
from repro.workload.params import sample_params


def model_for(seed=1, **kwargs):
    rng = random.Random(seed)
    params = sample_params(rng)
    return AnalyticModel(params, **kwargs)


class TestBasics:
    def test_all_strategies_evaluated(self):
        outcomes = model_for().evaluate_all()
        assert set(outcomes) == {"CA", "BL", "PL"}
        for outcome in outcomes.values():
            assert outcome.total_time > 0
            assert 0 < outcome.response_time <= outcome.total_time

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            model_for().evaluate("ZZ")

    def test_case_insensitive(self):
        assert model_for().evaluate("ca").strategy == "CA"

    def test_deterministic(self):
        a = model_for(seed=4).evaluate("BL")
        b = model_for(seed=4).evaluate("BL")
        assert a.total_time == b.total_time
        assert a.response_time == b.response_time


class TestPaperShapes:
    """Single-parameter-set counterparts of the figure-level claims."""

    def test_bl_total_at_most_pl(self):
        for seed in range(12):
            outcomes = model_for(seed=seed).evaluate_all()
            assert outcomes["BL"].total_time <= outcomes["PL"].total_time * 1.0001

    def test_localized_response_beats_ca_on_average(self):
        """The paper's curves are 500-sample averages; a single unselective
        one-class sample can go the other way (Figure 11's effect)."""
        sums = {"CA": 0.0, "BL": 0.0, "PL": 0.0}
        for seed in range(12):
            outcomes = model_for(seed=seed).evaluate_all()
            for name, outcome in outcomes.items():
                sums[name] += outcome.response_time
        assert sums["BL"] < sums["CA"]
        assert sums["PL"] < sums["CA"]

    def test_total_grows_with_objects(self):
        rng = random.Random(3)
        small = AnalyticModel(sample_params(rng, n_objects_range=(1000, 1000)))
        rng = random.Random(3)
        large = AnalyticModel(sample_params(rng, n_objects_range=(9000, 9000)))
        for strategy in ("CA", "BL", "PL"):
            assert (
                large.evaluate(strategy).total_time
                > small.evaluate(strategy).total_time * 2
            )

    def test_ca_flat_in_selectivity(self):
        rng = random.Random(5)
        params = sample_params(rng)
        low = AnalyticModel(params, root_selectivity=0.1).evaluate("CA")
        high = AnalyticModel(params, root_selectivity=0.9).evaluate("CA")
        assert low.total_time == pytest.approx(high.total_time)

    def test_localized_grow_with_selectivity(self):
        rng = random.Random(5)
        params = sample_params(rng, local_pred_attr_bias=0.7)
        for strategy in ("BL", "PL"):
            low = AnalyticModel(params, root_selectivity=0.1).evaluate(strategy)
            high = AnalyticModel(params, root_selectivity=0.9).evaluate(strategy)
            assert high.total_time >= low.total_time

    def test_bl_selectivity_growth_steeper_than_pl(self):
        """Averaged over parameter sets, selectivity hurts BL more."""
        deltas = {"BL": 0.0, "PL": 0.0}
        for seed in range(15):
            rng = random.Random(seed)
            params = sample_params(rng, local_pred_attr_bias=0.7)
            for strategy in deltas:
                low = AnalyticModel(params, root_selectivity=0.1).evaluate(strategy)
                high = AnalyticModel(params, root_selectivity=0.9).evaluate(strategy)
                deltas[strategy] += high.total_time - low.total_time
        assert deltas["BL"] > deltas["PL"]

    def test_work_counters(self):
        outcomes = model_for(seed=8).evaluate_all()
        assert outcomes["CA"].work.objects_shipped > 0
        assert outcomes["CA"].work.bytes_network > 0
        assert outcomes["BL"].work.bytes_network < outcomes["CA"].work.bytes_network
        assert (
            outcomes["PL"].work.assistants_checked
            >= outcomes["BL"].work.assistants_checked
        )


class TestNetworkAblation:
    def test_uncontended_network_shrinks_response(self):
        rng = random.Random(9)
        params = sample_params(rng)
        shared = AnalyticModel(params, shared_network=True).evaluate("CA")
        private = AnalyticModel(params, shared_network=False).evaluate("CA")
        assert private.response_time <= shared.response_time
        assert private.total_time == pytest.approx(shared.total_time)


class TestSignatureVariants:
    def test_variants_evaluable(self):
        model = model_for(seed=21)
        for name in ("BL-S", "PL-S"):
            outcome = model.evaluate(name)
            assert outcome.total_time > 0
            assert outcome.work.signature_comparisons > 0

    def test_signatures_never_increase_cost(self):
        for seed in range(10):
            model = model_for(seed=seed)
            for base in ("BL", "PL"):
                plain = model.evaluate(base)
                signed = model.evaluate(f"{base}-S")
                assert signed.total_time <= plain.total_time * 1.0001
                assert signed.work.bytes_network <= plain.work.bytes_network
                assert (
                    signed.work.assistants_checked
                    <= plain.work.assistants_checked
                )

    def test_pass_rate_follows_r_ss(self):
        model = model_for(seed=22)
        rate = model._signature_pass_rate()
        assert 0.0 < rate <= 1.0
