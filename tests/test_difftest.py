"""Tests for the differential correctness harness (repro.difftest)."""

import dataclasses
import io
import json
import os

import pytest

import repro.core.strategies.localized as localized
from repro.core.binding_resolution import ResolutionStats
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers, same_entities
from repro.difftest import (
    FederationFuzzer,
    FuzzCase,
    StrategyOracle,
    replay_cases,
    run_fuzz,
    shrink_case,
)
from repro.difftest.oracle import answer_digest, case_digest
from repro.errors import ReproError

CASES_DIR = os.path.join(os.path.dirname(__file__), "cases")


@pytest.fixture
def broken_resolver(monkeypatch):
    """Reintroduce the binding-completion bug the fuzzer found.

    With the resolver disabled, localized strategies leave NULL nested
    targets and bare-scalar multi-valued targets — CA disagrees.
    """
    monkeypatch.setattr(
        localized, "resolve_missing_bindings",
        lambda *args, **kwargs: ResolutionStats(),
    )


class TestFuzzCase:
    def test_json_round_trip(self):
        case = FuzzCase(
            seed=7, n_dbs=4, scale=0.01, multi_valued_targets=True,
            fault_spec="DB1@0:1.5", fault_seed=3, mutate=True,
            label="x",
        )
        assert FuzzCase.from_json(case.to_json()) == case

    def test_defaults_omitted_from_export(self):
        raw = json.loads(FuzzCase(seed=7).to_json())
        assert raw == {"seed": 7}

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            FuzzCase.from_dict({"seed": 1, "n_sites": 3})

    def test_seed_required(self):
        with pytest.raises(ReproError, match="seed"):
            FuzzCase.from_dict({"n_dbs": 3})

    def test_bad_json_rejected(self):
        with pytest.raises(ReproError, match="JSON"):
            FuzzCase.from_json("{nope")
        with pytest.raises(ReproError, match="object"):
            FuzzCase.from_json("[1, 2]")

    def test_validation(self):
        with pytest.raises(ReproError):
            FuzzCase(seed=1, n_dbs=0)
        with pytest.raises(ReproError):
            FuzzCase(seed=1, n_classes_min=3, n_classes_max=2)
        with pytest.raises(ReproError):
            FuzzCase(seed=1, scale=0.0)

    def test_build_is_deterministic(self):
        case = FuzzCase(seed=11, scale=0.01)
        left = answer_digest(
            GlobalQueryEngine(case.build().system)
            .execute(case.build().query, "CA").results
        )
        assert left == case_digest(case)

    def test_fault_spec_builds_plan(self):
        case = FuzzCase(seed=11, scale=0.01,
                        fault_spec="DB1@0:1.5", fault_seed=2)
        assert case.build().fault_plan is not None
        assert FuzzCase(seed=11, scale=0.01).build().fault_plan is None


class TestFuzzer:
    def test_cases_are_deterministic(self):
        a = [dataclasses.astuple(c) for c in FederationFuzzer(5).cases(8)]
        b = [dataclasses.astuple(c) for c in FederationFuzzer(5).cases(8)]
        assert a == b

    def test_case_is_order_independent(self):
        fuzzer = FederationFuzzer(5)
        late_first = fuzzer.case(6)
        list(fuzzer.cases(3))  # draw some earlier cases in between
        assert fuzzer.case(6) == late_first

    def test_seeds_distinct_across_indexes(self):
        seeds = {c.seed for c in FederationFuzzer(5).cases(20)}
        assert len(seeds) == 20

    def test_knob_coverage(self):
        cases = list(FederationFuzzer(1996).cases(40))
        assert any(c.multi_valued_targets for c in cases)
        assert any(c.fault_spec for c in cases)
        assert any(c.mutate for c in cases)
        assert any(c.local_pred_attr_bias is not None for c in cases)
        assert {c.n_dbs for c in cases} >= {2, 3, 4}


class TestOracle:
    def test_clean_on_fuzz_cases(self):
        oracle = StrategyOracle()
        for case in FederationFuzzer(2026).cases(3):
            assert oracle.check(case) == []

    def test_replay_committed_cases_clean(self):
        stream = io.StringIO()
        violations = replay_cases([CASES_DIR], stream=stream)
        assert violations == []
        assert "VIOLATION" not in stream.getvalue()

    def test_committed_cases_catch_the_resolver_bug(self, broken_resolver):
        """Each committed resolver case re-finds the bug it was shrunk
        from.  (Evolution cases guard a different, build-time bug — see
        ``test_committed_evolution_case_catches_target_tracking_bug``.)
        """
        oracle = StrategyOracle()
        checked = 0
        for name in sorted(os.listdir(CASES_DIR)):
            with open(os.path.join(CASES_DIR, name)) as handle:
                case = FuzzCase.from_json(handle.read())
            if case.evolve:
                continue
            checked += 1
            violations = oracle.check(case)
            assert violations, f"{name} no longer catches the bug"
            assert any(v.invariant == "equivalence" for v in violations)
        assert checked >= 2

    def test_committed_evolution_case_catches_target_tracking_bug(
        self, monkeypatch
    ):
        """The committed evolve case re-finds the seeding bug it caught:
        ``safe_plan`` once forgot which attributes earlier renames had
        moved, so a later drop could target a renamed-away attribute and
        crash when the controller applied it."""
        from repro.evolution import seeding
        from repro.evolution.controller import EvolutionController

        orig = seeding._pick_drop_target
        monkeypatch.setattr(
            seeding, "_pick_drop_target",
            lambda system, rng, referenced, roster, dropped, renamed:
                orig(system, rng, referenced, roster, dropped, set()),
        )
        with open(os.path.join(
            CASES_DIR, "fuzz-1996-48-evolve-rename-drop.json"
        )) as handle:
            case = FuzzCase.from_json(handle.read())
        built = case.build()
        with pytest.raises(ReproError, match="does not define"):
            EvolutionController(built.system, built.evolution).run_all()

    def test_loose_entity_check_misses_what_oracle_catches(
        self, broken_resolver
    ):
        """The PR's motivating demonstration: with the old loose
        comparison (GOid membership only), CA and BL still 'agree' on
        the buggy build; the strict oracle comparison catches it."""
        with open(os.path.join(
            CASES_DIR, "fuzz-1996-26-nested-target-null.json"
        )) as handle:
            case = FuzzCase.from_json(handle.read())
        built = case.build()
        engine = GlobalQueryEngine(built.system)
        engine.ensure_signatures()
        ca = engine.execute(built.query, "CA").results
        bl = engine.execute(built.query, "BL").results
        assert same_entities(ca, bl)      # the old check: no bug visible
        assert not same_answers(ca, bl)   # the strict check: bug visible


class TestShrink:
    def test_strips_irrelevant_knobs(self):
        case = FuzzCase(
            seed=1, n_dbs=4, n_classes_max=3, scale=0.02,
            local_pred_attr_bias=0.7, multi_valued_targets=True,
            fault_spec="DB1@0:1.5", fault_seed=2, mutate=True,
        )
        # Failure depends only on having multiple databases.
        shrunk = shrink_case(case, lambda c: c.n_dbs >= 2)
        assert shrunk.n_dbs == 2
        assert shrunk.fault_spec == ""
        assert not shrunk.mutate
        assert not shrunk.multi_valued_targets
        assert shrunk.local_pred_attr_bias is None
        assert shrunk.n_classes_max == 1
        assert shrunk.scale < case.scale

    def test_keeps_essential_knobs(self):
        case = FuzzCase(seed=1, n_dbs=3, multi_valued_targets=True,
                        fault_spec="DB1@0:1.5")
        shrunk = shrink_case(
            case, lambda c: c.multi_valued_targets and bool(c.fault_spec)
        )
        assert shrunk.multi_valued_targets
        assert shrunk.fault_spec
        assert shrunk.n_dbs == 2  # still minimized on the free axis

    def test_respects_attempt_budget(self):
        calls = []

        def is_failing(candidate):
            calls.append(candidate)
            return True

        shrink_case(FuzzCase(seed=1, n_dbs=4, mutate=True),
                    is_failing, max_attempts=2)
        assert len(calls) == 2


class TestRunner:
    def test_run_fuzz_output_is_deterministic(self):
        first, second = io.StringIO(), io.StringIO()
        assert run_fuzz(2026, 3, stream=first) == []
        assert run_fuzz(2026, 3, stream=second) == []
        assert first.getvalue() == second.getvalue()
        assert "0 violation(s)" in first.getvalue()

    def test_violations_shrunk_and_written(self, broken_resolver, tmp_path):
        stream = io.StringIO()
        violations = run_fuzz(
            1996, 5, out_dir=str(tmp_path), stream=stream
        )
        assert violations  # fuzz-1996-4 fails under the broken resolver
        out = stream.getvalue()
        assert "VIOLATION" in out and "shrunk to:" in out
        written = sorted(tmp_path.glob("*.json"))
        assert written
        # The written file replays as a failure while the bug persists.
        assert replay_cases(
            [str(written[0])], stream=io.StringIO()
        )

    def test_replay_empty_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="no case files"):
            replay_cases([str(tmp_path)])


class TestCli:
    def test_fuzz_smoke(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seed", "2026", "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: 2 case(s), 0 violation(s)" in out

    def test_fuzz_replay(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--replay", CASES_DIR]) == 0
        out = capsys.readouterr().out
        assert "replay: 3 case(s), 0 violation(s)" in out
