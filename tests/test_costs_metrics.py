"""Unit tests for the cost model, metrics and reporting helpers."""

import pytest

from repro.bench.experiments import figure9, figure10, figure11
from repro.bench.reporting import ascii_chart, format_table, series_table, shape_report
from repro.sim.costs import CostModel, MICROSECOND, PAPER_COSTS, table1_rows
from repro.sim.metrics import ExecutionMetrics, WorkCounters
from repro.sim.taskgraph import SimOutcome


class TestCostModel:
    def test_paper_defaults(self):
        assert PAPER_COSTS.attribute_bytes == 32
        assert PAPER_COSTS.goid_bytes == 16
        assert PAPER_COSTS.loid_bytes == 16
        assert PAPER_COSTS.signature_bytes == 32
        assert PAPER_COSTS.disk_s_per_byte == pytest.approx(15e-6)
        assert PAPER_COSTS.net_s_per_byte == pytest.approx(8e-6)
        assert PAPER_COSTS.cpu_s_per_comparison == pytest.approx(0.5e-6)
        assert PAPER_COSTS.avg_isomeric_objects == 2.0

    def test_object_bytes(self):
        assert PAPER_COSTS.object_bytes(3) == 3 * 32 + 16
        assert PAPER_COSTS.object_bytes(3, with_loid=False) == 96

    def test_row_bytes(self):
        assert PAPER_COSTS.row_bytes(2) == 16 + 16 + 64

    def test_check_message_bytes(self):
        assert PAPER_COSTS.check_request_bytes(3, 2) == 3 * 16 + 2 * 64
        assert PAPER_COSTS.check_reply_bytes(5) == 80

    def test_times(self):
        assert PAPER_COSTS.disk_time(1000) == pytest.approx(0.015)
        assert PAPER_COSTS.net_time(1000) == pytest.approx(0.008)
        assert PAPER_COSTS.cpu_time(1000) == pytest.approx(0.0005)

    def test_random_fetch_time(self):
        model = CostModel(disk_seek_s=0.01)
        assert model.random_fetch_time(2, 100) == pytest.approx(
            0.02 + 100 * 15e-6
        )

    def test_table1_rows(self):
        rows = table1_rows()
        names = [r[0] for r in rows]
        assert names == [
            "S_a", "S_GOid", "S_LOid", "S_s", "T_d", "T_net", "T_c", "N_iso",
        ]
        assert rows[4][2] == "15 us/byte"
        assert rows[5][2] == "8 us/byte"
        assert rows[6][2] == "0.5 us/comparison"


class TestWorkCounters:
    def test_merge(self):
        a = WorkCounters(objects_scanned=1, bytes_network=10, comparisons=3)
        b = WorkCounters(objects_scanned=2, bytes_network=5, assistants_checked=7)
        a.merge(b)
        assert a.objects_scanned == 3
        assert a.bytes_network == 15
        assert a.comparisons == 3
        assert a.assistants_checked == 7


class TestExecutionMetrics:
    def test_from_outcome(self):
        outcome = SimOutcome(
            response_time=2.0,
            total_time=5.0,
            phase_time={"P": 5.0},
            site_busy={"DB1": 5.0},
            bytes_transferred=100,
            nodes=3,
        )
        metrics = ExecutionMetrics.from_outcome(
            "BL", outcome, certain_results=1, maybe_results=2
        )
        assert metrics.total_time == 5.0
        assert metrics.response_time == 2.0
        assert metrics.phase_time == {"P": 5.0}
        assert metrics.certain_results == 1
        assert "BL" in metrics.summary()


class TestReporting:
    def test_format_table_pads(self):
        text = format_table(["a", "long"], [["xxxx", "y"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")

    @pytest.fixture(scope="class")
    def tiny_series(self):
        return figure9(samples=4, object_counts=(1000, 2000))

    def test_series_table(self, tiny_series):
        table = series_table(tiny_series, "total")
        assert "CA total(s)" in table
        assert "1000" in table

    def test_series_response_table(self, tiny_series):
        table = series_table(tiny_series, "response")
        assert "BL response(s)" in table

    def test_ascii_chart(self, tiny_series):
        chart = ascii_chart(tiny_series, "total")
        assert "#" in chart
        assert "figure9" in chart

    def test_shape_report_keys(self, tiny_series):
        facts = shape_report(tiny_series)
        assert "localized_response_beats_ca_everywhere" in facts
        assert "bl_total_below_pl_everywhere" in facts
        assert isinstance(facts["growth_CA_total"], bool)

    def test_series_accessors(self, tiny_series):
        assert tiny_series.xs() == [1000, 2000]
        assert len(tiny_series.totals("CA")) == 2
        assert len(tiny_series.responses("PL")) == 2


class TestExperimentDrivers:
    def test_figure10_tiny(self):
        series = figure10(samples=3, db_counts=(2, 3))
        assert series.xs() == [2, 3]

    def test_figure11_tiny(self):
        series = figure11(samples=3, selectivities=(0.2, 0.8))
        ca = series.totals("CA")
        assert ca[0] == pytest.approx(ca[1])
