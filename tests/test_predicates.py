"""Unit tests for three-valued predicate evaluation over object graphs."""

import pytest

from repro.core.predicates import (
    EvalMeter,
    compare_values,
    evaluate_conjunction,
    evaluate_dnf,
    evaluate_predicate,
    walk_path,
)
from repro.core.query import Op, Path, Predicate
from repro.core.tvl import TV
from repro.errors import QueryError
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.values import MultiValue, NULL


def obj(name, **values):
    return LocalObject(loid=LOid("DB", name), class_name="C", values=values)


def make_deref(*objects):
    index = {o.loid: o for o in objects}
    return lambda ref: index.get(ref)


class TestCompareValues:
    def test_null_is_unknown(self):
        assert compare_values(Op.EQ, NULL, 1) is TV.UNKNOWN
        assert compare_values(Op.LT, NULL, 1) is TV.UNKNOWN

    def test_eq_ne(self):
        assert compare_values(Op.EQ, 1, 1) is TV.TRUE
        assert compare_values(Op.EQ, 1, 2) is TV.FALSE
        assert compare_values(Op.NE, 1, 2) is TV.TRUE

    def test_orderings(self):
        assert compare_values(Op.LT, 1, 2) is TV.TRUE
        assert compare_values(Op.LE, 2, 2) is TV.TRUE
        assert compare_values(Op.GT, 3, 2) is TV.TRUE
        assert compare_values(Op.GE, 1, 2) is TV.FALSE

    def test_cross_type_eq_is_false(self):
        assert compare_values(Op.EQ, "a", 1) is TV.FALSE

    def test_cross_type_ordering_raises(self):
        with pytest.raises(QueryError):
            compare_values(Op.LT, "a", 1)

    def test_multivalue_existential(self):
        mv = MultiValue([1, 5])
        assert compare_values(Op.EQ, mv, 5) is TV.TRUE
        assert compare_values(Op.EQ, mv, 7) is TV.FALSE
        assert compare_values(Op.LT, mv, 2) is TV.TRUE

    def test_multivalue_contains(self):
        mv = MultiValue(["a", "b"])
        assert compare_values(Op.CONTAINS, mv, "a") is TV.TRUE
        assert compare_values(Op.CONTAINS, mv, "z") is TV.FALSE

    def test_contains_on_scalar_raises(self):
        with pytest.raises(QueryError):
            compare_values(Op.CONTAINS, "a", "a")

    def test_empty_multivalue_is_unknown(self):
        assert compare_values(Op.EQ, MultiValue([]), 1) is TV.UNKNOWN

    def test_meter_counts(self):
        meter = EvalMeter()
        compare_values(Op.EQ, 1, 1, meter)
        assert meter.comparisons == 1


class TestTruthinessMisuse:
    """Predicate results are TVs — Python's boolean operators must fail.

    A caller writing ``if evaluate_predicate(...)`` or chaining results
    with ``and``/``or``/``not`` would silently collapse UNKNOWN; the
    TV.__bool__ guard turns that bug class into an immediate TypeError.
    """

    def _unknown(self):
        # p over a NULL attribute evaluates to UNKNOWN.
        pred = Predicate(Path.parse("x"), Op.EQ, 1)
        return evaluate_predicate(obj("a", x=NULL), pred, make_deref()).tv

    def test_result_is_unknown(self):
        assert self._unknown() is TV.UNKNOWN

    def test_if_on_result_raises(self):
        with pytest.raises(TypeError):
            if self._unknown():  # pragma: no cover - raises before body
                pass

    def test_not_on_result_raises(self):
        with pytest.raises(TypeError):
            not self._unknown()

    def test_and_chain_raises(self):
        with pytest.raises(TypeError):
            self._unknown() and TV.TRUE

    def test_or_chain_raises(self):
        with pytest.raises(TypeError):
            self._unknown() or TV.TRUE

    def test_conjunction_result_also_guarded(self):
        preds = [Predicate(Path.parse("x"), Op.EQ, 1)]
        outcome = evaluate_conjunction(
            obj("a", x=NULL), preds, make_deref()
        )
        with pytest.raises(TypeError):
            bool(outcome.tv)


class TestWalkPath:
    def test_direct_attribute(self):
        walk = walk_path(obj("a", x=5), Path.parse("x"), make_deref())
        assert walk.value == 5
        assert not walk.is_missing

    def test_nested(self):
        target = obj("t", y=7)
        root = obj("r", ref=target.loid)
        walk = walk_path(root, Path.parse("ref.y"), make_deref(target))
        assert walk.value == 7
        assert [o.loid.value for o in walk.visited] == ["r", "t"]

    def test_missing_attribute_on_root(self):
        walk = walk_path(obj("a"), Path.parse("x"), make_deref())
        assert walk.is_missing
        assert walk.missing.attribute == "x"
        assert walk.missing.depth == 0
        assert walk.missing.holder_id == LOid("DB", "a")

    def test_null_intermediate_blames_holder(self):
        root = obj("r", ref=NULL)
        walk = walk_path(root, Path.parse("ref.y"), make_deref())
        assert walk.is_missing
        assert walk.missing.attribute == "ref"
        assert walk.missing.depth == 0

    def test_missing_on_branch_object(self):
        target = obj("t")  # y missing
        root = obj("r", ref=target.loid)
        walk = walk_path(root, Path.parse("ref.y"), make_deref(target))
        assert walk.is_missing
        assert walk.missing.holder_id == target.loid
        assert walk.missing.depth == 1

    def test_dangling_reference_is_missing(self):
        root = obj("r", ref=LOid("DB", "gone"))
        walk = walk_path(root, Path.parse("ref.y"), make_deref())
        assert walk.is_missing
        assert walk.missing.holder_id == root.loid

    def test_primitive_midpath_raises(self):
        root = obj("r", x=1)
        with pytest.raises(QueryError):
            walk_path(root, Path.parse("x.y"), make_deref())

    def test_meter_derefs(self):
        target = obj("t", y=1)
        root = obj("r", ref=target.loid)
        meter = EvalMeter()
        walk_path(root, Path.parse("ref.y"), make_deref(target), meter)
        assert meter.derefs == 1


class TestEvaluatePredicate:
    def test_true(self):
        outcome = evaluate_predicate(
            obj("a", x=5), Predicate.of("x", "=", 5), make_deref()
        )
        assert outcome.tv is TV.TRUE
        assert outcome.missing is None

    def test_false(self):
        outcome = evaluate_predicate(
            obj("a", x=5), Predicate.of("x", "=", 6), make_deref()
        )
        assert outcome.tv is TV.FALSE

    def test_unknown_carries_location(self):
        outcome = evaluate_predicate(
            obj("a"), Predicate.of("x", "=", 6), make_deref()
        )
        assert outcome.tv is TV.UNKNOWN
        assert outcome.missing is not None


class TestConjunctionAndDnf:
    def test_conjunction_unsolved(self):
        o = obj("a", x=5)
        preds = [Predicate.of("x", "=", 5), Predicate.of("y", "=", 1)]
        outcome = evaluate_conjunction(o, preds, make_deref())
        assert outcome.tv is TV.UNKNOWN
        assert [u.predicate.path.first for u in outcome.unsolved] == ["y"]

    def test_conjunction_short_circuit(self):
        o = obj("a", x=5)
        preds = [Predicate.of("x", "=", 0), Predicate.of("y", "=", 1)]
        outcome = evaluate_conjunction(o, preds, make_deref(), short_circuit=True)
        assert outcome.tv is TV.FALSE
        assert len(outcome.outcomes) == 1

    def test_empty_dnf_is_true(self):
        assert evaluate_dnf(obj("a"), (), make_deref()).tv is TV.TRUE

    def test_dnf_any_true(self):
        o = obj("a", x=5)
        where = (
            (Predicate.of("x", "=", 0),),
            (Predicate.of("x", "=", 5),),
        )
        assert evaluate_dnf(o, where, make_deref()).tv is TV.TRUE

    def test_dnf_unknown_collects_unsolved(self):
        o = obj("a", x=5)
        where = (
            (Predicate.of("x", "=", 0),),        # FALSE disjunct
            (Predicate.of("y", "=", 1),),        # UNKNOWN disjunct
        )
        outcome = evaluate_dnf(o, where, make_deref())
        assert outcome.tv is TV.UNKNOWN
        assert [u.predicate.path.first for u in outcome.unsolved] == ["y"]

    def test_dnf_all_false(self):
        o = obj("a", x=5)
        where = ((Predicate.of("x", "=", 0),), (Predicate.of("x", "=", 1),))
        assert evaluate_dnf(o, where, make_deref()).tv is TV.FALSE

    def test_unsolved_empty_when_true(self):
        o = obj("a", x=5)
        where = ((Predicate.of("x", "=", 5),), (Predicate.of("y", "=", 1),))
        outcome = evaluate_dnf(o, where, make_deref())
        assert outcome.tv is TV.TRUE
        assert outcome.unsolved == ()
