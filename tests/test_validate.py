"""Unit tests for the federation consistency auditor."""

import pytest

from helpers import make_workload
from repro.integration.validate import check_federation
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.values import NULL
from repro.workload.paper_example import build_school_federation


class TestCleanFederations:
    def test_school_is_clean(self, school):
        report = check_federation(school)
        assert report.ok, [str(f) for f in report.findings]
        assert report.warnings == []
        assert report.objects_audited == 20  # all Figure 4 objects

    def test_generated_is_clean(self):
        workload = make_workload(seed=17, scale=0.03)
        report = check_federation(workload.system)
        assert report.ok, [str(f) for f in report.findings[:5]]
        assert report.warnings == []
        assert report.objects_audited > 0

    def test_summary(self, school):
        report = check_federation(school)
        assert "20 objects audited" in report.summary()
        assert "0 error(s)" in report.summary()


class TestDetections:
    def test_dangling_reference(self, school):
        school.db("DB1").get(LOid("DB1", "s1")).values["advisor"] = LOid(
            "DB1", "ghost"
        )
        report = check_federation(school)
        assert not report.ok
        assert any(f.category == "reference" for f in report.errors)

    def test_wrong_domain_reference(self, school):
        # advisor points at a Department instead of a Teacher.
        school.db("DB1").get(LOid("DB1", "s1")).values["advisor"] = LOid(
            "DB1", "d1"
        )
        report = check_federation(school)
        assert any("declared Teacher" in f.message for f in report.errors)

    def test_schema_violation(self, school):
        school.db("DB1").get(LOid("DB1", "s1")).values["bogus"] = 1
        report = check_federation(school)
        assert any(f.category == "schema" for f in report.errors)

    def test_uncatalogued_object(self, school):
        school.db("DB1").insert(
            LocalObject(LOid("DB1", "s99"), "Student",
                        {"s-no": 1, "name": "Ghost"})
        )
        report = check_federation(school)
        assert any(
            f.category == "catalog" and "no GOid" in f.message
            for f in report.errors
        )

    def test_catalog_pointing_nowhere(self, school):
        from repro.objectdb.ids import GOid

        school.catalog.table("Student").add(
            GOid("gs99"), LOid("DB1", "nothing")
        )
        report = check_federation(school)
        assert any(
            "no such object is stored" in f.message for f in report.errors
        )

    def test_replica_disagreement_is_warning(self, school):
        # John's name differs between DB1 and DB2.
        school.db("DB2").get(LOid("DB2", "s2'")).values["name"] = "Jon"
        report = check_federation(school)
        assert report.ok  # warnings only
        assert any(f.category == "consistency" for f in report.warnings)

    def test_max_findings_cap(self, school):
        for i in range(30):
            school.db("DB1").insert(
                LocalObject(LOid("DB1", f"sx{i}"), "Student", {"s-no": i})
            )
        report = check_federation(school, max_findings=5)
        assert len(report.findings) <= 6


class TestNullsAreFine:
    def test_nulls_never_flagged(self, school):
        for obj in school.db("DB1").extent("Teacher").values():
            obj.values["department"] = NULL
        report = check_federation(school)
        assert report.ok
