"""Unit tests for replicated mapping-table maintenance."""

import pytest

from repro.errors import MappingError
from repro.integration.replication import ReplicatedCatalog
from repro.objectdb.ids import GOid, LOid
from repro.workload.paper_example import figure5_catalog


def l1(v):
    return LOid("DB1", v)


class TestEagerReplication:
    def test_record_propagates_immediately(self):
        rc = ReplicatedCatalog(["DB1", "DB2"])
        rc.record("S", GOid("g1"), l1("s1"))
        for site in ("DB1", "DB2"):
            assert rc.replica(site).goid_of("S", l1("s1")) == GOid("g1")
        assert rc.verify_consistent()

    def test_conflicting_update_rejected_at_primary(self):
        rc = ReplicatedCatalog(["DB1"])
        rc.record("S", GOid("g1"), l1("s1"))
        with pytest.raises(MappingError):
            rc.record("S", GOid("g2"), l1("s1"))
        assert rc.verify_consistent()  # failed update never hits the log


class TestBatchedReplication:
    def test_pending_and_sync(self):
        rc = ReplicatedCatalog(["DB1", "DB2"], eager=False)
        rc.record("S", GOid("g1"), l1("s1"))
        rc.record("S", GOid("g2"), l1("s2"))
        assert rc.pending("DB1") == 2
        assert not rc.verify_consistent()
        report = rc.sync()
        assert report.updates == 4  # 2 updates x 2 sites
        assert report.sites == 2
        assert rc.pending("DB1") == 0
        assert rc.verify_consistent()

    def test_partial_sync(self):
        rc = ReplicatedCatalog(["DB1", "DB2"], eager=False)
        rc.record("S", GOid("g1"), l1("s1"))
        rc.sync(sites=["DB1"])
        assert rc.pending("DB1") == 0
        assert rc.pending("DB2") == 1
        assert not rc.verify_consistent()
        rc.sync()
        assert rc.verify_consistent()

    def test_sync_idempotent(self):
        rc = ReplicatedCatalog(["DB1"], eager=False)
        rc.record("S", GOid("g1"), l1("s1"))
        rc.sync()
        report = rc.sync()
        assert report.updates == 0
        assert report.seconds_network == 0.0


class TestCosts:
    def test_propagation_bytes_and_time(self):
        rc = ReplicatedCatalog(["DB1", "DB2", "DB3"], eager=False)
        for i in range(10):
            rc.record("S", GOid(f"g{i}"), l1(f"s{i}"))
        report = rc.sync()
        per_update = 16 + 16 + 32  # GOid + LOid + class tag
        assert report.bytes_per_site == 10 * per_update
        assert report.total_bytes == 3 * 10 * per_update
        assert report.seconds_network == pytest.approx(
            report.total_bytes * 8e-6
        )


class TestBulkLoad:
    def test_figure5_load(self):
        rc = ReplicatedCatalog(["DB1", "DB2", "DB3"], eager=False)
        report = rc.bulk_load(figure5_catalog())
        assert report.updates > 0
        assert rc.verify_consistent()
        # Replicas answer exactly like the source catalog.
        source = figure5_catalog()
        replica = rc.replica("DB2")
        assert replica.goid_of("Teacher", LOid("DB2", "t1'")) == GOid("gt4")
        assert (
            replica.assistants_of("Teacher", LOid("DB1", "t2"))
            == source.assistants_of("Teacher", LOid("DB1", "t2"))
        )

    def test_log_length(self):
        rc = ReplicatedCatalog(["DB1"], eager=False)
        rc.bulk_load(figure5_catalog())
        # Figure 5 holds 20 (GOid, LOid) pairs across its four tables.
        assert rc.log_length == 20


class TestFaultWindow:
    """Replica lag as a fault window: what failover may rely on.

    Relay failover re-issues checks through the global site on the
    assumption that every site's mapping replica answers like the
    primary.  These tests pin the window in which that assumption is
    false (lazy replication, updates logged but unsynced) and prove it
    closes completely after one sync round.
    """

    def test_lagging_replica_misses_new_entity(self):
        rc = ReplicatedCatalog(["DB1", "DB2"], eager=False)
        rc.record("S", GOid("g1"), l1("s1"))
        # Inside the window: the replica cannot resolve the new entity,
        # so a check routed via this site would come back UNKNOWN.
        assert rc.replica("DB2").goid_of("S", l1("s1")) is None
        assert rc.pending("DB2") == 1
        assert not rc.verify_consistent()
        rc.sync()
        assert rc.replica("DB2").goid_of("S", l1("s1")) == GOid("g1")
        assert rc.verify_consistent()

    def test_lagging_replica_misses_isomeric_copy(self):
        rc = ReplicatedCatalog(["DB1", "DB2", "DB3"], eager=False)
        rc.record("S", GOid("g1"), l1("s1"))
        rc.record("S", GOid("g1"), LOid("DB2", "s1'"))
        rc.sync()
        # A later copy registration reopens the window: the stale
        # replica still answers, but without the newest assistant.
        rc.record("S", GOid("g1"), LOid("DB3", "s1''"))
        stale = rc.replica("DB1").assistants_of("S", l1("s1"))
        assert LOid("DB3", "s1''") not in stale
        assert not rc.verify_consistent()
        rc.sync()
        fresh = rc.replica("DB1").assistants_of("S", l1("s1"))
        assert LOid("DB3", "s1''") in fresh
        assert rc.verify_consistent()

    def test_partial_sync_leaves_window_open_elsewhere(self):
        rc = ReplicatedCatalog(["DB1", "DB2", "DB3"], eager=False)
        rc.record("S", GOid("g1"), l1("s1"))
        rc.sync(sites=["DB1", "DB3"])
        assert rc.replica("DB1").goid_of("S", l1("s1")) == GOid("g1")
        assert rc.replica("DB2").goid_of("S", l1("s1")) is None
        assert not rc.verify_consistent()
        rc.sync(sites=["DB2"])
        assert rc.verify_consistent()

    def test_eager_mode_has_no_window(self):
        rc = ReplicatedCatalog(["DB1", "DB2"])
        for i in range(5):
            rc.record("S", GOid(f"g{i}"), l1(f"s{i}"))
            assert rc.verify_consistent()
            assert rc.pending("DB2") == 0


class TestErrors:
    def test_no_sites_rejected(self):
        with pytest.raises(MappingError):
            ReplicatedCatalog([])

    def test_unknown_site(self):
        rc = ReplicatedCatalog(["DB1"])
        with pytest.raises(MappingError):
            rc.replica("DB9")
        with pytest.raises(MappingError):
            rc.pending("DB9")
        with pytest.raises(MappingError):
            rc.sync(sites=["DB9"])
