"""Edge-path tests across modules (kernel guards, meters, reporting)."""

import pytest

from repro.core.predicates import EvalMeter
from repro.core.query import Path
from repro.core.results import GlobalResult, ResultKind
from repro.errors import (
    ReproError,
    SimulationError,
    SqlxSyntaxError,
    UnknownAttributeError,
    UnknownClassError,
)
from repro.objectdb.ids import GOid
from repro.objectdb.values import NULL
from repro.sim.kernel import Simulator, Timeout


class TestErrorMessages:
    def test_unknown_class_names_scope(self):
        err = UnknownClassError("Foo", where="db 'DB1'")
        assert "Foo" in str(err) and "DB1" in str(err)
        assert err.class_name == "Foo"

    def test_unknown_attribute(self):
        err = UnknownAttributeError("Student", "salary")
        assert "Student" in str(err) and "salary" in str(err)

    def test_sqlx_error_position(self):
        err = SqlxSyntaxError("bad token", position=7)
        assert "position 7" in str(err)
        assert err.position == 7

    def test_sqlx_error_without_position(self):
        err = SqlxSyntaxError("bad token")
        assert "position" not in str(err)

    def test_hierarchy(self):
        assert issubclass(UnknownClassError, ReproError)
        assert issubclass(SimulationError, ReproError)


class TestKernelGuards:
    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield Timeout(1.0)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_event_value_passes_through(self):
        sim = Simulator()
        evt = sim.event()
        got = []

        def waiter():
            value = yield evt
            got.append(value)

        sim.process(waiter())
        sim.schedule(1.0, lambda: evt.trigger({"payload": 3}))
        sim.run()
        assert got == [{"payload": 3}]

    def test_resource_names(self):
        sim = Simulator()
        res = sim.resource("disk", capacity=3)
        assert res.name == "disk"
        assert res.capacity == 3


class TestEvalMeter:
    def test_merge(self):
        a = EvalMeter(comparisons=2, derefs=1)
        b = EvalMeter(comparisons=3, derefs=4)
        a.merge(b)
        assert a.comparisons == 5
        assert a.derefs == 5


class TestGlobalResultHelpers:
    def test_value_and_row(self):
        result = GlobalResult(
            goid=GOid("g1"),
            kind=ResultKind.CERTAIN,
            bindings={Path.parse("a"): 1},
        )
        assert result.value(Path.parse("a")) == 1
        assert result.value(Path.parse("zz")) is NULL
        assert result.row([Path.parse("a"), Path.parse("zz")]) == (1, NULL)
        assert result.is_certain


class TestCliStudyAllFigures:
    def test_study_all(self, capsys):
        from repro.cli import main

        assert main(["study", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 10" in out and "Figure 11" in out


class TestGeneratorEdges:
    def test_single_db_federation(self):
        from helpers import make_workload
        from repro.core.engine import GlobalQueryEngine

        workload = make_workload(seed=901, scale=0.03, n_dbs=1)
        engine = GlobalQueryEngine(workload.system)
        outcomes = engine.compare(workload.query)
        # One site: no isomerism, but strategies still agree.
        assert set(outcomes) == {"CA", "BL", "PL"}

    def test_analytic_single_db(self):
        import random

        from repro.analytic.model import AnalyticModel
        from repro.workload.params import sample_params

        params = sample_params(random.Random(3), n_dbs=1)
        outcomes = AnalyticModel(params).evaluate_all()
        for outcome in outcomes.values():
            assert outcome.total_time > 0


class TestShapeReport:
    def test_keys_present(self):
        from repro.bench.experiments import figure9
        from repro.bench.reporting import shape_report

        series = figure9(samples=3, object_counts=(1000, 2000))
        facts = shape_report(series)
        for strategy in ("CA", "BL", "PL"):
            assert f"{strategy}_total_monotone_up" in facts
            assert f"{strategy}_response_monotone_up" in facts


class TestApiDocsGenerator:
    def test_generates(self, tmp_path, monkeypatch):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "gen_api_docs",
            pathlib.Path(__file__).parent.parent / "scripts" / "gen_api_docs.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "OUTPUT", tmp_path / "API.md")
        assert module.main() == 0
        text = (tmp_path / "API.md").read_text()
        assert "GlobalQueryEngine" in text
        assert "ComponentDatabase" in text
        assert "AnalyticModel" in text
