"""Condition algebra, compound conditions, and incremental repair.

Covers the `repro.conditions` package three ways: unit tests of the
3VL algebra (atom status against live :class:`SystemState` views,
strong-Kleene connectives, attach/mechanism helpers, byte-exact
:class:`DegradationReason` renders); compound outage-AND-flux
conjunctions through the engine's flux demotion; and end-to-end
answer repair on the school federation — partial recovery that stays
maybe but remains repairable, chained repair converging on the
fault-free baseline, and early discharge of an unchecked copy from an
isomeric sibling's verdict without re-contacting the dead site.
"""

import types

import pytest

from repro.conditions import (
    And,
    DegradationReason,
    FluxEpoch,
    NullAttr,
    Or,
    ReasonKind,
    RepairError,
    SiteDown,
    SystemState,
    UncheckedCopy,
    attach,
    condition_sites,
    mechanism,
    rank_mechanisms,
)
from repro.core.certification import SATISFIED
from repro.core.engine import GlobalQueryEngine, _demote_uncertified
from repro.core.options import ExecutionOptions
from repro.core.results import GlobalResult, ResultKind
from repro.core.tvl import TV
from repro.faults import ExecutionContext, FaultPlan, OutageWindow
from repro.objectdb.ids import GOid
from repro.resilience.failover import pending_skips_of
from repro.workload.paper_example import Q1_TEXT

DB2_DOWN = FaultPlan.single_site_loss("DB2")
DB3_DOWN = FaultPlan.single_site_loss("DB3")
DB2_DB3_DOWN = FaultPlan(outages=(
    OutageWindow("DB2", 0.0, 1e9),
    OutageWindow("DB3", 0.0, 1e9),
))


def goid(value):
    return GOid(value=value)


def maybe_row(value, *conditions):
    row = GlobalResult(goid=goid(value), kind=ResultKind.MAYBE)
    attach(row, *conditions)
    return row


class TestSystemState:
    def test_healed_view_marks_present_sites_dischargeable(self, school):
        state = SystemState(system=school)
        assert state.site_status("DB1") is TV.TRUE
        assert state.site_status("DB2") is TV.TRUE

    def test_excised_site_is_permanently_false(self, school):
        assert SystemState(system=school).site_status("DBX") is TV.FALSE

    def test_outage_blocks_without_refuting(self, school):
        ctx = ExecutionContext(DB2_DOWN)
        state = SystemState(system=school, ctx=ctx)
        assert state.site_status("DB2") is TV.UNKNOWN
        assert state.site_status("DB1") is TV.TRUE

    def test_flux_label_open_vs_closed(self, school):
        state = SystemState(system=school, flux_labels=("w1",))
        assert state.flux_status("w1") is TV.UNKNOWN
        assert state.flux_status("w2") is TV.TRUE

    def test_current_snapshots_epoch(self, school):
        state = SystemState.current(school)
        assert state.epoch == school.schema_epoch
        assert state.ctx is None


class TestAtoms:
    def test_null_attr_never_discharges(self, school):
        atom = NullAttr(site="DB1", goid=goid("gs2"), attr="city")
        assert atom.status(SystemState(system=school)) is TV.FALSE

    def test_site_down_tracks_live_reachability(self, school):
        atom = SiteDown(site="DB2")
        healed = SystemState(system=school)
        blocked = SystemState(system=school, ctx=ExecutionContext(DB2_DOWN))
        assert atom.status(healed) is TV.TRUE
        assert atom.status(blocked) is TV.UNKNOWN
        assert SiteDown(site="DBX").status(healed) is TV.FALSE

    def test_unchecked_copy_follows_holder_site(self, school):
        atom = UncheckedCopy(site="DB2", goid=goid("gt1"))
        blocked = SystemState(system=school, ctx=ExecutionContext(DB2_DOWN))
        assert atom.status(blocked) is TV.UNKNOWN
        assert atom.status(SystemState(system=school)) is TV.TRUE

    def test_flux_epoch_clears_when_window_closes(self, school):
        atom = FluxEpoch(epoch=2, event="drop:DB1.K1.a@2")
        open_ = SystemState(system=school, flux_labels=("drop:DB1.K1.a@2",))
        assert atom.status(open_) is TV.UNKNOWN
        assert atom.status(SystemState(system=school)) is TV.TRUE

    def test_describe_renderings(self):
        assert str(NullAttr("DB1", goid("gs1"), "a.b = 'x'")) == (
            "null[DB1:gs1:a.b = 'x']"
        )
        assert str(NullAttr("", goid("gs1"), "p")) == "null[*:gs1:p]"
        assert str(SiteDown("DB2")) == "site-down[DB2]"
        assert str(UncheckedCopy("DB2", goid("gt1"))) == "unchecked[DB2:gt1]"
        assert str(FluxEpoch(3, "w")) == "flux[w@3]"


class TestConnectives:
    """Strong-Kleene over atoms with known statuses: NullAttr is FALSE,
    a reachable SiteDown is TRUE, an outaged one UNKNOWN."""

    @pytest.fixture()
    def state(self, school):
        return SystemState(system=school, ctx=ExecutionContext(DB2_DOWN))

    def test_and_truth_table(self, state):
        true = SiteDown("DB1")
        unknown = SiteDown("DB2")
        false = NullAttr("DB1", goid("g"), "p")
        assert And((true, true)).status(state) is TV.TRUE
        assert And((true, unknown)).status(state) is TV.UNKNOWN
        assert And((false, unknown)).status(state) is TV.FALSE
        assert And(()).status(state) is TV.TRUE

    def test_or_truth_table(self, state):
        true = SiteDown("DB1")
        unknown = SiteDown("DB2")
        false = NullAttr("DB1", goid("g"), "p")
        assert Or((false, unknown)).status(state) is TV.UNKNOWN
        assert Or((true, unknown)).status(state) is TV.TRUE
        assert Or((false, false)).status(state) is TV.FALSE
        assert Or(()).status(state) is TV.FALSE

    def test_atoms_flatten_nested_connectives(self):
        a = SiteDown("DB1")
        b = NullAttr("DB1", goid("g"), "p")
        c = FluxEpoch(1, "w")
        nested = And((Or((a, b)), c))
        assert list(nested.atoms()) == [a, b, c]

    def test_connective_describe(self):
        a, b = SiteDown("DB1"), SiteDown("DB2")
        assert str(And((a, b))) == "(site-down[DB1] & site-down[DB2])"
        assert str(Or((a, b))) == "(site-down[DB1] | site-down[DB2])"


class TestAttachAndRanking:
    def test_attach_dedupes_and_sorts(self):
        row = maybe_row("g")
        attach(row, SiteDown("DB2"), NullAttr("DB1", goid("g"), "p"))
        attach(row, SiteDown("DB2"), UncheckedCopy("DB2", goid("t")))
        assert [str(c) for c in row.conditions] == [
            "null[DB1:g:p]",
            "site-down[DB2]",
            "unchecked[DB2:t]",
        ]

    def test_condition_sites_names_repair_targets(self):
        conditions = (
            NullAttr("DB1", goid("g"), "p"),
            UncheckedCopy("DB3", goid("t")),
            SiteDown("DB2"),
            FluxEpoch(1, "w"),
        )
        assert condition_sites(conditions) == ("DB2", "DB3")

    def test_mechanism_classification(self):
        null = NullAttr("DB1", goid("g"), "p")
        assert mechanism(()) == "sampling"
        assert mechanism((null,)) == "sampling"
        assert mechanism((null, SiteDown("DB2"))) == "systematic"
        assert mechanism((FluxEpoch(1, "w"),)) == "systematic"

    def test_rank_mechanisms_counts_maybe_rows(self):
        results = types.SimpleNamespace(maybe=[
            maybe_row("a", NullAttr("DB1", goid("a"), "p")),
            maybe_row("b", SiteDown("DB2")),
            maybe_row("c"),
        ])
        assert rank_mechanisms(results) == (2, 1)


class TestDegradationReason:
    """The structured reasons must render the historical note strings
    byte for byte — committed bench baselines match on them."""

    def test_site_unavailable(self):
        reason = DegradationReason.site_unavailable("DB2")
        assert reason.kind is ReasonKind.SITE_UNAVAILABLE
        assert str(reason) == "uncertified: site DB2 unavailable"

    def test_outerjoin_incomplete_sorts_sites(self):
        reason = DegradationReason.outerjoin_incomplete(["DB3", "DB1"])
        assert str(reason) == (
            "uncertified: outerjoin incomplete (site DB1, DB3 unavailable)"
        )

    def test_schema_flux(self):
        reason = DegradationReason.schema_flux("drop:DB1.K1.a@2")
        assert str(reason) == (
            "uncertified: schema in flux (drop:DB1.K1.a@2)"
        )


class FluxStub:
    """Minimal stand-in for the evolution controller's flux view."""

    def __init__(self, label, attrs):
        self.uncertified_attrs = set(attrs)
        self.open_events = [
            (label, types.SimpleNamespace(touched_attrs=set(attrs)))
        ]


class TestCompoundConditions:
    """Outage AND open-window conjunctions through flux demotion."""

    LABEL = "drop:DB2.Teacher.speciality@1"

    def test_flux_atoms_join_site_blocked_maybes(self, school_engine):
        degraded = school_engine.execute(
            Q1_TEXT, "BL", options=ExecutionOptions(fault_plan=DB2_DOWN)
        )
        query = school_engine.parse(Q1_TEXT)
        flux = FluxStub(self.LABEL, {"speciality"})
        demoted, labels = _demote_uncertified(
            degraded.results, query, flux, epoch=3
        )
        assert demoted == 0 and labels == [self.LABEL]
        rows = {str(r.goid): r for r in degraded.results.maybe}
        # gs1 is blocked by the DB2 outage: its conjunction now also
        # requires the window to close.
        gs1 = [str(c) for c in rows["gs1"].conditions]
        assert "site-down[DB2]" in gs1
        assert f"flux[{self.LABEL}@3]" in gs1
        # gs2 is maybe on genuine nulls only — no flux atom.
        assert all(
            not str(c).startswith("flux[") for c in rows["gs2"].conditions
        )

    def test_flux_demotes_certain_rows_with_atoms(self, school_engine):
        baseline = school_engine.execute(Q1_TEXT, "BL")
        query = school_engine.parse(Q1_TEXT)
        certified = {str(r.goid) for r in baseline.results.certain}
        assert certified, "baseline must certify at least one row"
        flux = FluxStub(self.LABEL, {"speciality"})
        demoted, _ = _demote_uncertified(
            baseline.results, query, flux, epoch=2
        )
        assert demoted == len(certified)
        assert not baseline.results.certain
        rows = {str(r.goid): r for r in baseline.results.maybe}
        for value in certified:
            row = rows[value]
            assert (
                f"uncertified: schema in flux ({self.LABEL})" in row.notes
            )
            assert f"flux[{self.LABEL}@2]" in [
                str(c) for c in row.conditions
            ]

    def test_unreferenced_window_is_inert(self, school_engine):
        baseline = school_engine.execute(Q1_TEXT, "BL")
        query = school_engine.parse(Q1_TEXT)
        flux = FluxStub("drop:DB1.Student.sex@1", {"sex"})
        demoted, labels = _demote_uncertified(
            baseline.results, query, flux, epoch=2
        )
        assert (demoted, labels) == (0, [])
        assert baseline.results.certain


class TestAnswerRepair:
    def test_fault_free_report_is_a_noop_repair(self, school_engine):
        report = school_engine.execute(Q1_TEXT, "BL")
        repaired = school_engine.recertify(report)
        assert repaired.results.to_dicts() == report.results.to_dicts()
        assert repaired.repair_summary.messages == 0
        assert repaired.repair_summary.sites_contacted == ()

    def test_degraded_without_conditions_is_unrepairable(
        self, school_engine
    ):
        report = school_engine.execute(
            Q1_TEXT,
            "BL",
            options=ExecutionOptions(fault_plan=DB2_DOWN, conditions=False),
        )
        assert report.repair is None
        assert all(
            not row.conditions for row in report.results.all_results()
        )
        with pytest.raises(RepairError):
            school_engine.recertify(report)

    def test_partial_recovery_stays_maybe_but_repairable(
        self, school_engine
    ):
        degraded = school_engine.execute(
            Q1_TEXT, "BL", options=ExecutionOptions(fault_plan=DB2_DB3_DOWN)
        )
        assert not degraded.results.certain
        assert degraded.repair is not None

        # DB2 heals, DB3 stays dark: repair ships DB2's evidence but
        # must leave DB3-blocked rows conditional — and repairable.
        partial = school_engine.recertify(
            degraded, options=ExecutionOptions(fault_plan=DB3_DOWN)
        )
        summary = partial.repair_summary
        assert summary.sites_contacted == ("DB2",)
        assert not summary.fully_repaired
        assert summary.outstanding > 0
        assert partial.repair is not None
        rows = {str(r.goid): [str(c) for c in r.conditions]
                for r in partial.results.maybe}
        # gs4 only surfaced once DB2 healed; its teacher copy at DB3 is
        # still unchecked, so it enters conditionally, not certified.
        assert "unchecked[DB3:gt4]" in rows["gs4"]
        assert "unchecked[DB3:gt2]" in rows["gs3"]

        # DB3 heals: the chained repair converges on the fault-free
        # baseline, monotonically.
        full = school_engine.recertify(partial)
        assert full.repair_summary.fully_repaired
        assert full.repair_summary.sites_contacted == ("DB3",)
        assert full.repair_summary.promoted >= 1
        baseline = school_engine.execute(Q1_TEXT, "BL")
        assert full.results.to_dicts() == baseline.results.to_dicts()
        certified = {r.goid for r in partial.results.certain}
        assert certified <= {r.goid for r in full.results.certain}

    def test_isomeric_verdict_discharges_without_contact(
        self, school, school_engine
    ):
        """A settled verdict from an isomeric sibling copy clears an
        ``unchecked`` atom with zero messages to the dead site."""
        degraded = school_engine.execute(
            Q1_TEXT, "BL", options=ExecutionOptions(fault_plan=DB2_DOWN)
        )
        state = degraded.repair
        assert state is not None and state.skipped_requests
        for src, request in state.skipped_requests:
            for skip in pending_skips_of(school, src, request):
                placements = school.catalog.table(
                    skip.global_class
                ).loids_of(skip.goid)
                for site in sorted(placements):
                    if site != "DB2":
                        state.verdicts.add(
                            placements[site], skip.predicate, SATISFIED
                        )

        repaired = school_engine.recertify(
            degraded, options=ExecutionOptions(fault_plan=DB2_DOWN)
        )
        summary = repaired.repair_summary
        assert summary.discharged >= 1
        assert summary.messages == 0
        assert summary.sites_contacted == ()
        rows = {str(r.goid): [str(c) for c in r.conditions]
                for r in repaired.results.maybe}
        # The copy-check condition cleared from the sibling's verdict;
        # the placement outage itself is still outstanding.
        assert "unchecked[DB2:gt1]" not in rows["gs1"]
        assert "site-down[DB2]" in rows["gs1"]

    def test_conditions_excluded_from_exports(self, school_engine):
        degraded = school_engine.execute(
            Q1_TEXT, "BL", options=ExecutionOptions(fault_plan=DB2_DOWN)
        )
        assert any(row.conditions for row in degraded.results.maybe)
        for record in degraded.results.to_dicts():
            assert "conditions" not in record
