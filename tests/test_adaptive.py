"""Tests for the adaptive strategy (analytic-model-driven selection)."""

import pytest

from helpers import make_workload
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers
from repro.core.strategies import AdaptiveStrategy, extract_params, strategy_by_name
from repro.errors import QueryError
from repro.sqlx import parse_query
from repro.workload.paper_example import Q1_TEXT, expected_q1_answers


class TestExtraction:
    def test_school_q1_params(self, school):
        params = extract_params(school, parse_query(Q1_TEXT))
        assert params.db_names == ("DB1", "DB2", "DB3")
        # Chain: Student, then branch classes.
        names_by_index = {0: "Student"}
        root = params.classes[0]
        assert root.per_db["DB1"].n_objects == 3
        assert root.per_db["DB2"].n_objects == 3
        assert root.per_db["DB3"].n_objects == 0  # no Student at DB3
        # Root-class predicates: none end on Student itself.
        assert root.n_predicates == 0

    def test_predicates_assigned_to_final_class(self, school):
        params = extract_params(school, parse_query(Q1_TEXT))
        # Teacher carries speciality; Department carries name; Address city.
        total = sum(c.n_predicates for c in params.classes)
        assert total == 3

    def test_null_ratio_sampled(self, school):
        query = parse_query(
            "Select X.name From Student X Where X.age > 25"
        )
        params = extract_params(school, query)
        root = params.classes[0]
        # DB1 defines age with no nulls; DB2 lacks it entirely.
        assert root.per_db["DB1"].n_local_pred_attrs == 1
        assert root.per_db["DB1"].r_missing == 0.0
        assert root.per_db["DB2"].n_local_pred_attrs == 0

    def test_invalid_query_rejected(self, school):
        from repro.core.query import Query

        with pytest.raises(QueryError):
            extract_params(school, Query.conjunctive("Ghost", ["x"]))


class TestAdaptiveExecution:
    def test_auto_answers_match_paper(self, school):
        engine = GlobalQueryEngine(school)
        outcome = engine.execute(Q1_TEXT, "AUTO")
        expected = expected_q1_answers()
        assert tuple(outcome.results.certain_rows()) == expected["certain"]
        assert tuple(outcome.results.maybe_rows()) == expected["maybe"]
        assert outcome.metrics.strategy.startswith("AUTO->")

    def test_choice_recorded(self, school):
        strategy = AdaptiveStrategy()
        strategy.execute(school, parse_query(Q1_TEXT))
        assert strategy.last_choice in ("CA", "BL", "PL")
        assert set(strategy.last_predictions) == {"CA", "BL", "PL"}

    def test_objectives(self, school):
        query = parse_query(Q1_TEXT)
        response = AdaptiveStrategy(objective="response").predict(school, query)
        total = AdaptiveStrategy(objective="total").predict(school, query)
        assert all(v > 0 for v in response.values())
        assert all(v > 0 for v in total.values())

    def test_bad_objective_rejected(self):
        with pytest.raises(QueryError):
            AdaptiveStrategy(objective="latency")

    def test_registry_lookup(self):
        assert strategy_by_name("auto").name == "AUTO"

    def test_auto_equivalent_on_generated(self):
        workload = make_workload(seed=404, scale=0.02)
        engine = GlobalQueryEngine(workload.system)
        baseline = engine.execute(workload.query, "CA")
        auto = engine.execute(workload.query, "AUTO")
        assert same_answers(baseline.results, auto.results)

    def test_choice_tracks_objective_ranking(self):
        workload = make_workload(seed=405, scale=0.02)
        strategy = AdaptiveStrategy(objective="response")
        strategy.execute(workload.system, workload.query)
        predictions = strategy.last_predictions
        assert strategy.last_choice == min(predictions, key=predictions.get)


class TestFaultAwarePrediction:
    def test_clean_prediction_unchanged_by_none_ctx(self, school):
        strategy = AdaptiveStrategy()
        query = parse_query(Q1_TEXT)
        assert strategy.predict(school, query) == strategy.predict(
            school, query, ctx=None
        )
        assert strategy.last_unreachable == ()

    def test_down_site_penalizes_ca(self, school):
        from repro.faults import FaultPlan
        from repro.faults.injector import ExecutionContext

        strategy = AdaptiveStrategy()
        query = parse_query(Q1_TEXT)
        clean = strategy.predict(school, query)
        ctx = ExecutionContext(FaultPlan.single_site_loss("DB2"))
        faulted = strategy.predict(school, query, ctx)
        assert strategy.last_unreachable == ("DB2",)
        assert faulted["CA"] > clean["CA"]
        # Localized predictions are untouched.
        assert faulted["BL"] == clean["BL"]
        assert faulted["PL"] == clean["PL"]

    def test_predict_does_not_consume_negotiations(self, school):
        """Prediction must read the plan, never negotiate: availability
        bookkeeping belongs to the delegate's execution alone."""
        from repro.faults import FaultPlan
        from repro.faults.injector import ExecutionContext

        ctx = ExecutionContext(FaultPlan.single_site_loss("DB1"))
        AdaptiveStrategy().predict(school, parse_query(Q1_TEXT), ctx)
        assert ctx.contacted == []
        assert ctx.skipped == []

    def test_fully_lossy_link_counts_as_unreachable(self, school):
        from repro.faults import FaultPlan
        from repro.faults.injector import ExecutionContext

        # Two stacked 0.9-loss faults compose to 0.99: hopeless delivery.
        ctx = ExecutionContext(FaultPlan.from_spec(
            "link:*>DB3:loss0.9,link:GPS>DB3:loss0.9"
        ))
        strategy = AdaptiveStrategy()
        strategy.predict(school, parse_query(Q1_TEXT), ctx)
        assert "DB3" in strategy.last_unreachable

    def test_auto_event_records_unreachable(self, school):
        from repro.faults import FaultPlan

        report = GlobalQueryEngine(school).execute(
            Q1_TEXT, "AUTO", fault_plan=FaultPlan.single_site_loss("DB1")
        )
        events = {e.name: e.attr_dict() for e in report.metrics.events}
        assert events["auto.predict"]["unreachable"] == "DB1"

    def test_signature_variants_ranked_when_built(self, school):
        strategy = AdaptiveStrategy()
        query = parse_query(Q1_TEXT)
        assert set(strategy.predict(school, query)) == {"CA", "BL", "PL"}
        school.build_signatures()
        ranked = set(strategy.predict(school, query))
        assert {"BL-S", "PL-S"} <= ranked
