"""Unit tests for schemas, attributes and path resolution."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownClassError
from repro.objectdb.schema import (
    AttrKind,
    AttributeDef,
    ClassDef,
    ComponentSchema,
    Schema,
    complex_attr,
    missing_attributes,
    primitive,
)


def school_db1_schema() -> Schema:
    return Schema(
        [
            ClassDef.of(
                "Student",
                [
                    primitive("name"),
                    complex_attr("advisor", "Teacher"),
                ],
            ),
            ClassDef.of(
                "Teacher",
                [primitive("name"), complex_attr("department", "Department")],
            ),
            ClassDef.of("Department", [primitive("name")]),
        ]
    )


class TestAttributeDef:
    def test_complex_requires_domain(self):
        with pytest.raises(SchemaError):
            AttributeDef(name="x", kind=AttrKind.COMPLEX)

    def test_primitive_rejects_domain(self):
        with pytest.raises(SchemaError):
            AttributeDef(name="x", kind=AttrKind.PRIMITIVE, domain="Y")

    def test_helpers(self):
        assert not primitive("a").is_complex
        assert complex_attr("r", "C").is_complex
        assert complex_attr("r", "C").domain == "C"

    def test_multi_valued_flag(self):
        assert primitive("a", multi_valued=True).multi_valued
        assert not primitive("a").multi_valued


class TestClassDef:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            ClassDef.of("C", [primitive("a"), primitive("a")])

    def test_lookup(self):
        cdef = ClassDef.of("C", [primitive("a"), complex_attr("r", "D")])
        assert cdef.has_attribute("a")
        assert not cdef.has_attribute("z")
        assert cdef.attribute("r").domain == "D"
        with pytest.raises(UnknownAttributeError):
            cdef.attribute("z")

    def test_partitions(self):
        cdef = ClassDef.of("C", [primitive("a"), complex_attr("r", "D")])
        assert [a.name for a in cdef.primitive_attributes()] == ["a"]
        assert [a.name for a in cdef.complex_attributes()] == ["r"]
        assert cdef.attribute_names() == ["a", "r"]


class TestSchema:
    def test_duplicate_class_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef.of("C", []), ClassDef.of("C", [])])

    def test_undefined_domain_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef.of("C", [complex_attr("r", "Nowhere")])])

    def test_contains_and_lookup(self):
        schema = school_db1_schema()
        assert "Student" in schema
        assert "Nope" not in schema
        assert schema.cls("Teacher").name == "Teacher"
        with pytest.raises(UnknownClassError):
            schema.cls("Nope")
        assert len(schema) == 3
        assert set(schema.class_names) == {"Student", "Teacher", "Department"}


class TestPathResolution:
    def test_single_step(self):
        schema = school_db1_schema()
        chain = schema.resolve_path("Student", ("name",))
        assert len(chain) == 1 and chain[0].name == "name"

    def test_nested(self):
        schema = school_db1_schema()
        chain = schema.resolve_path("Student", ("advisor", "department", "name"))
        assert [a.name for a in chain] == ["advisor", "department", "name"]

    def test_final_complex_allowed(self):
        schema = school_db1_schema()
        chain = schema.resolve_path("Student", ("advisor",))
        assert chain[0].is_complex

    def test_primitive_midpath_rejected(self):
        schema = school_db1_schema()
        with pytest.raises(SchemaError):
            schema.resolve_path("Student", ("name", "x"))

    def test_unknown_step_rejected(self):
        schema = school_db1_schema()
        with pytest.raises(UnknownAttributeError):
            schema.resolve_path("Student", ("advisor", "salary"))

    def test_empty_path_rejected(self):
        with pytest.raises(SchemaError):
            school_db1_schema().resolve_path("Student", ())

    def test_classes_on_path(self):
        schema = school_db1_schema()
        assert schema.classes_on_path(
            "Student", ("advisor", "department", "name")
        ) == ["Student", "Teacher", "Department"]
        assert schema.classes_on_path("Student", ("name",)) == ["Student"]


class TestComponentSchema:
    def test_of(self):
        cs = ComponentSchema.of("DB1", [ClassDef.of("C", [primitive("a")])])
        assert cs.db_name == "DB1"
        assert "C" in cs
        assert cs.cls("C").has_attribute("a")
        assert cs.class_names == ["C"]


class TestMissingAttributes:
    def test_union_minus_local(self):
        global_attrs = {
            "a": primitive("a"),
            "b": primitive("b"),
            "r": complex_attr("r", "D"),
        }
        local = ClassDef.of("C", [primitive("a")])
        missing = missing_attributes(global_attrs, local)
        assert {m.name for m in missing} == {"b", "r"}

    def test_nothing_missing(self):
        global_attrs = {"a": primitive("a")}
        local = ClassDef.of("C", [primitive("a")])
        assert missing_attributes(global_attrs, local) == []
