"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_demo(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "Select X.a From C X"])
        assert args.strategy == "BL"

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "q", "--strategy", "ZZ"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_demo_output(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Hedy" in out and "Tony" in out
        assert "CA:" in out and "BL:" in out and "PL:" in out

    def test_query_command(self, capsys):
        code = main([
            "query",
            "Select X.name From Student X Where X.sex = female",
            "--strategy", "CA",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Mary" in out and "Hedy" in out and "Fanny" in out

    def test_query_reports_unsolved(self, capsys):
        main(["query",
              "Select X.name From Student X Where X.age > 25"])
        out = capsys.readouterr().out
        assert "unsolved" in out

    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "15 us/byte" in out
        assert "Table 2" in out and "5000 ~ 6000" in out

    def test_study_single_figure(self, capsys):
        assert main(["study", "--samples", "3", "--figures", "11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "selectivity" in out

    def test_study_unknown_figure(self, capsys):
        assert main(["study", "--figures", "99"]) == 2

    def test_compare_command(self, capsys):
        assert main(["compare", "--seed", "3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "PL-S" in out


class TestAutoStrategy:
    def test_query_with_auto(self, capsys):
        from repro.cli import main

        code = main([
            "query",
            "Select X.name From Student X Where X.age > 25",
            "--strategy", "AUTO",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "certain" in out


class TestTrafficCommand:
    ARGS = [
        "traffic", "--workers", "2", "--queries", "4",
        "--seed", "13", "--scale", "0.02",
    ]

    def test_traffic_smoke(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "q/s" in out and "latency p50/p95/p99" in out
        assert "0 violations" in out

    def test_traffic_json_deterministic(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(self.ARGS + ["--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["violations"] == []
        assert first["completed"] + first["shed"] == 8

    def test_traffic_defaults(self):
        args = build_parser().parse_args(["traffic"])
        assert args.workers == 8 and args.verify
