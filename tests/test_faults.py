"""Unit tests for the fault layer: plans, policies, the injector."""

import pytest

from repro.errors import ExecutionTimeout, FaultPlanError, UnavailableError
from repro.faults import (
    DEGRADE,
    EMPTY_PLAN,
    FAIL_FAST,
    ExecutionContext,
    ExecutionPolicy,
    FaultInjector,
    FaultPlan,
    LinkFault,
    OutageWindow,
    resolve_policy,
)


class TestOutageWindow:
    def test_covers_half_open(self):
        window = OutageWindow("DB1", 1.0, 2.0)
        assert not window.covers(0.999)
        assert window.covers(1.0)
        assert window.covers(2.999)
        assert not window.covers(3.0)  # recovers exactly at the end

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            OutageWindow("", 0.0, 1.0)
        with pytest.raises(FaultPlanError):
            OutageWindow("DB1", -0.1, 1.0)
        with pytest.raises(FaultPlanError):
            OutageWindow("DB1", 0.0, 0.0)


class TestLinkFault:
    def test_wildcards(self):
        fault = LinkFault(src="*", dst="DB1", loss=0.5)
        assert fault.matches("DB2", "DB1")
        assert fault.matches("DB3", "DB1")
        assert not fault.matches("DB1", "DB2")

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            LinkFault(latency_multiplier=0.5)  # would speed the link up
        with pytest.raises(FaultPlanError):
            LinkFault(loss=1.0)  # certain loss would never terminate


class TestFaultPlan:
    def test_empty_plan_is_inactive(self):
        assert not EMPTY_PLAN.active
        assert not FaultPlan(seed=42).active
        # A no-op link fault keeps the plan inactive too.
        assert not FaultPlan(links=(LinkFault(),)).active

    def test_next_up_walks_chained_windows(self):
        plan = FaultPlan(outages=(
            OutageWindow("DB1", 0.0, 1.0),
            OutageWindow("DB1", 1.0, 1.0),
            OutageWindow("DB1", 5.0, 1.0),
        ))
        assert plan.next_up("DB1", 0.5) == 2.0
        assert plan.next_up("DB1", 3.0) == 3.0
        assert plan.next_up("DB1", 5.5) == 6.0
        assert plan.next_up("DB2", 0.5) == 0.5

    def test_link_faults_compose(self):
        plan = FaultPlan(links=(
            LinkFault(dst="DB1", latency_multiplier=2.0, loss=0.5),
            LinkFault(src="DB2", latency_multiplier=3.0, loss=0.5),
        ))
        multiplier, loss = plan.link("DB2", "DB1")
        assert multiplier == pytest.approx(6.0)
        assert loss == pytest.approx(0.75)  # independent drops
        assert plan.link("DB3", "DB2") == (1.0, 0.0)

    def test_fault_windows_filter_and_sort(self):
        plan = FaultPlan(outages=(
            OutageWindow("DB2", 1.0, 1.0),
            OutageWindow("DB1", 0.0, 1.0),
        ))
        assert plan.fault_windows(["DB1", "DB2", "DB9"]) == (
            ("DB1", 0.0, 1.0), ("DB2", 1.0, 2.0),
        )
        assert plan.fault_windows(["DB9"]) == ()

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=3,
            outages=(OutageWindow("DB1", 0.5, 1.5),),
            links=(LinkFault(src="DB2", dst="*", loss=0.25),),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_spec(self):
        plan = FaultPlan.from_spec(
            "DB2@0:1.5, DB3@0.2:0.5, link:*>DB1:x2:loss0.3", seed=9
        )
        assert plan.seed == 9
        assert plan.is_down("DB2", 1.0)
        assert plan.is_down("DB3", 0.3)
        assert plan.link("DB4", "DB1") == (2.0, pytest.approx(0.3))

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec("DB2")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_spec("DB2@zero:1")

    def test_chaos_is_deterministic_and_bounded(self):
        sites = ["DB1", "DB2", "DB3"]
        assert FaultPlan.chaos(sites, 0.5, seed=1) == FaultPlan.chaos(
            sites, 0.5, seed=1
        )
        assert FaultPlan.chaos(sites, 0.5, seed=1) != FaultPlan.chaos(
            sites, 0.5, seed=2
        )
        assert not FaultPlan.chaos(sites, 0.0, seed=1).outages
        assert len(FaultPlan.chaos(sites, 1.0, seed=1).outages) == len(sites)
        with pytest.raises(FaultPlanError):
            FaultPlan.chaos(sites, 1.5)


class TestExecutionPolicy:
    def test_backoff_grows_exponentially(self):
        policy = ExecutionPolicy(jitter=0.0)
        assert policy.backoff_s(1, 0.0) == pytest.approx(
            2.0 * policy.backoff_s(0, 0.0)
        )

    def test_jitter_stretches_backoff(self):
        policy = ExecutionPolicy(jitter=0.5)
        assert policy.backoff_s(0, 1.0) == pytest.approx(
            1.5 * policy.backoff_s(0, 0.0)
        )

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            ExecutionPolicy(timeout_s=0.0)
        with pytest.raises(FaultPlanError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(FaultPlanError):
            ExecutionPolicy(jitter=1.5)
        with pytest.raises(FaultPlanError):
            ExecutionPolicy(deadline_s=0.0)

    def test_resolve(self):
        assert resolve_policy(None) is DEGRADE
        assert resolve_policy("fail-fast") is FAIL_FAST
        assert resolve_policy(DEGRADE) is DEGRADE
        with pytest.raises(FaultPlanError):
            resolve_policy("yolo")


class TestFaultInjector:
    def test_down_site_exhausts_retries(self):
        plan = FaultPlan.single_site_loss("DB1")
        injector = FaultInjector(plan)
        negotiation = injector.negotiate("G", "DB1")
        assert not negotiation.ok
        assert len(negotiation.attempts) == DEGRADE.max_retries + 1
        assert negotiation.reason == "down"
        assert negotiation.wait_s > DEGRADE.timeout_s

    def test_up_site_succeeds_first_try(self):
        injector = FaultInjector(FaultPlan.single_site_loss("DB1"))
        negotiation = injector.negotiate("G", "DB2")
        assert negotiation.ok
        assert negotiation.retries == 0
        assert negotiation.wait_s == 0.0

    def test_recovery_mid_ladder(self):
        """A short outage: the retry ladder outlives the window and the
        final attempt lands after recovery."""
        plan = FaultPlan(outages=(OutageWindow("DB1", 0.0, 0.3),))
        negotiation = FaultInjector(plan).negotiate("G", "DB1")
        assert negotiation.ok
        assert negotiation.retries >= 1
        assert negotiation.attempts[-1].outcome == "ok"

    def test_memoized_per_link(self):
        injector = FaultInjector(FaultPlan.single_site_loss("DB1"))
        assert injector.negotiate("G", "DB1") is injector.negotiate("G", "DB1")

    def test_loss_draws_deterministic_in_seed(self):
        plan = FaultPlan(links=(LinkFault(dst="DB1", loss=0.7),))
        first = FaultInjector(plan, seed=5).negotiate("G", "DB1")
        again = FaultInjector(plan, seed=5).negotiate("G", "DB1")
        other = FaultInjector(plan, seed=6).negotiate("G", "DB1")
        assert first == again
        # Different seeds give different attempt histories (0.7 loss on
        # three attempts: outcome patterns differ with high probability).
        assert first != other


class TestExecutionContext:
    def test_bookkeeping(self):
        ctx = ExecutionContext(FaultPlan.single_site_loss("DB1"))
        assert ctx.reachable("G", "DB2")
        assert not ctx.reachable("G", "DB1")
        ctx.note_skipped_check()
        availability = ctx.availability()
        assert not availability.complete
        assert availability.sites_contacted == ("DB2",)
        assert availability.sites_skipped == ("DB1",)
        assert availability.checks_skipped == 1
        assert availability.fault_wait_s == pytest.approx(ctx.wait_s)

    def test_wait_counted_once_per_link(self):
        ctx = ExecutionContext(FaultPlan.single_site_loss("DB1"))
        ctx.contact("G", "DB1")
        waited = ctx.wait_s
        ctx.contact("G", "DB1")  # memoized: no extra wait
        assert ctx.wait_s == pytest.approx(waited)
        assert ctx.timeouts == DEGRADE.max_retries + 1

    def test_fail_fast_raises(self):
        ctx = ExecutionContext(
            FaultPlan.single_site_loss("DB1"), policy=FAIL_FAST
        )
        with pytest.raises(UnavailableError):
            ctx.contact("G", "DB1")

    def test_deadline_raises(self):
        policy = ExecutionPolicy(name="tight", deadline_s=0.1)
        ctx = ExecutionContext(FaultPlan.single_site_loss("DB1"), policy)
        with pytest.raises(ExecutionTimeout):
            ctx.contact("G", "DB1")

    def test_complete_when_nothing_skipped(self):
        ctx = ExecutionContext(FaultPlan.single_site_loss("DB1"))
        ctx.contact("G", "DB2")
        assert ctx.complete
        assert ctx.availability().summary() == "complete"
