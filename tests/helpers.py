"""Shared test helpers (importable without conftest name clashes)."""

from __future__ import annotations

import random

from repro.workload.generator import generate
from repro.workload.params import sample_params


def make_workload(seed: int, scale: float = 0.03, **kwargs):
    """One generated workload, deterministic in *seed*."""
    rng = random.Random(seed)
    params = sample_params(rng, **kwargs)
    params.seed = seed
    return generate(params, scale=scale)
