#!/usr/bin/env python3
"""Reproduce the paper's performance study (Figures 9-11) at the console.

Runs the three experiments of Section 4 with the analytic model (the
paper's own methodology: average over sampled Table 2 parameter sets)
and prints each figure as a table plus an ASCII chart.  Use --samples to
trade precision for speed (the paper uses 500).

Run:  python examples/performance_study.py [--samples N]
"""

import argparse

from repro.bench.experiments import figure9, figure10, figure11
from repro.bench.reporting import ascii_chart, series_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=100,
                        help="parameter sets per setting (paper: 500)")
    args = parser.parse_args()

    experiments = (
        (figure9, "Figure 9 — varying the number of objects per class"),
        (figure10, "Figure 10 — varying the number of component databases"),
        (figure11, "Figure 11 — varying the local predicate selectivity"),
    )
    for build, title in experiments:
        series = build(samples=args.samples)
        print("=" * 72)
        print(title)
        print("=" * 72)
        print("\n(a) total execution time\n")
        print(series_table(series, "total"))
        print("\n(b) response time\n")
        print(series_table(series, "response"))
        print()
        print(ascii_chart(series, "total", width=40))
        print()

    print("Headline observations (cf. Section 4.2):")
    print(" * BL has the best total execution time at the default N_db=3.")
    print(" * Localized response times stay well below CA's everywhere.")
    print(" * With many databases PL's total time passes CA's (Figure 10a).")
    print(" * Selectivity moves BL/PL but never CA (Figure 11).")


if __name__ == "__main__":
    main()
