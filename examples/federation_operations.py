#!/usr/bin/env python3
"""Operating a federation: audit, replicate the catalog, save/restore.

Day-2 concerns around the paper's machinery:

* :func:`repro.integration.validate.check_federation` audits schema
  conformance, referential integrity, catalog coverage and replica
  consistency — and pinpoints injected corruption;
* :class:`repro.integration.replication.ReplicatedCatalog` maintains the
  per-site GOid mapping replicas the localized strategies consult, with
  measurable propagation traffic;
* :mod:`repro.objectdb.serialize` round-trips the whole federation
  through JSON.

Run:  python examples/federation_operations.py
"""

import tempfile

from repro.core.engine import GlobalQueryEngine
from repro.integration.replication import ReplicatedCatalog
from repro.integration.validate import check_federation
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.serialize import load_federation, save_federation
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def main() -> None:
    system = build_school_federation()

    print("1) Audit the pristine federation")
    report = check_federation(system)
    print(f"   {report.summary()}\n")

    print("2) Inject corruption and re-audit")
    system.db("DB1").get(LOid("DB1", "s1")).values["advisor"] = LOid(
        "DB1", "nobody"
    )
    system.db("DB2").get(LOid("DB2", "s2'")).values["name"] = "Jon"
    report = check_federation(system)
    print(f"   {report.summary()}")
    for finding in report.findings:
        print(f"   {finding}")
    print()

    print("3) Replicate the GOid mapping tables (Section 4.1's replication)")
    replicated = ReplicatedCatalog(
        ["DB1", "DB2", "DB3"], eager=False
    )
    load_report = replicated.bulk_load(build_school_federation().catalog)
    print(f"   initial load: {load_report.updates} updates shipped, "
          f"{load_report.total_bytes} bytes, "
          f"{load_report.seconds_network * 1000:.3f} ms on the wire")
    # A new student enrolls; the update propagates lazily.
    replicated.record("Student", GOid("gs6"), LOid("DB1", "s4"))
    print(f"   pending at DB3 before sync: {replicated.pending('DB3')}")
    sync_report = replicated.sync()
    print(f"   after sync: consistent={replicated.verify_consistent()}, "
          f"{sync_report.updates} replica updates applied\n")

    print("4) Save and restore the federation through JSON")
    clean = build_school_federation()
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    save_federation(clean, path)
    restored = load_federation(path)
    outcome = GlobalQueryEngine(restored).execute(Q1_TEXT, "BL")
    print(f"   saved to {path}")
    print(f"   restored federation answers Q1: "
          f"certain={outcome.results.certain_rows()} "
          f"maybe={outcome.results.maybe_rows()}")


if __name__ == "__main__":
    main()
