#!/usr/bin/env python3
"""Build a custom federation from scratch with the public API.

A two-hospital scenario: both hospitals store patients, but with
heterogeneous schemas — the city clinic records insurance and the ward a
patient stays in; the university hospital records blood type and the
treating physician.  Some patients visit both hospitals (isomeric
objects, discovered by matching the national id).  The example shows:

* declaring component schemas and inserting objects (with nulls);
* integrating them into a global schema with a multi-valued attribute
  (``phone`` collects the numbers each hospital has on file);
* a disjunctive (OR) query over missing data;
* how an assistant object turns a maybe result into a certain one.

Run:  python examples/hospital_federation.py
"""

from repro import DistributedSystem, GlobalQueryEngine
from repro.integration.global_schema import ClassCorrespondence
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import NULL


def build_city_clinic() -> ComponentDatabase:
    schema = ComponentSchema.of(
        "CityClinic",
        [
            ClassDef.of(
                "Patient",
                [
                    primitive("national_id"),
                    primitive("name"),
                    primitive("phone"),
                    primitive("insurance"),
                    complex_attr("ward", "Ward"),
                ],
            ),
            ClassDef.of("Ward", [primitive("label"), primitive("floor")]),
        ],
    )
    db = ComponentDatabase(schema)
    db.insert(LocalObject(LOid("CityClinic", "w1"), "Ward",
                          {"label": "cardiology", "floor": 3}))
    db.insert(LocalObject(LOid("CityClinic", "w2"), "Ward",
                          {"label": "oncology", "floor": 5}))
    patients = [
        ("p1", 1001, "Iris", "555-0101", "ACME Health", "w1"),
        ("p2", 1002, "Ben", "555-0102", NULL, "w2"),       # insurance unknown
        ("p3", 1003, "Cora", "555-0103", "MediCo", "w1"),
    ]
    for pid, nid, name, phone, insurance, ward in patients:
        db.insert(
            LocalObject(
                LOid("CityClinic", pid), "Patient",
                {
                    "national_id": nid, "name": name, "phone": phone,
                    "insurance": insurance,
                    "ward": LOid("CityClinic", ward),
                },
            )
        )
    return db


def build_university_hospital() -> ComponentDatabase:
    schema = ComponentSchema.of(
        "UniHospital",
        [
            ClassDef.of(
                "Person",  # same semantics, different class name
                [
                    primitive("national_id"),
                    primitive("name"),
                    primitive("phone"),
                    primitive("blood_type"),
                    complex_attr("physician", "Physician"),
                ],
            ),
            ClassDef.of(
                "Physician", [primitive("name"), primitive("speciality")]
            ),
        ],
    )
    db = ComponentDatabase(schema)
    db.insert(LocalObject(LOid("UniHospital", "d1"), "Physician",
                          {"name": "Dr. Wu", "speciality": "cardiology"}))
    patients = [
        # Ben also visits the university hospital: his insurance is
        # unknown at the clinic, but his blood type lives here.
        ("u1", 1002, "Ben", "555-9902", "O+", "d1"),
        ("u2", 1004, "Dana", "555-9904", "AB-", "d1"),
    ]
    for pid, nid, name, phone, blood, doc in patients:
        db.insert(
            LocalObject(
                LOid("UniHospital", pid), "Person",
                {
                    "national_id": nid, "name": name, "phone": phone,
                    "blood_type": blood,
                    "physician": LOid("UniHospital", doc),
                },
            )
        )
    return db


def main() -> None:
    system = DistributedSystem.build(
        [build_city_clinic(), build_university_hospital()],
        [
            ClassCorrespondence.of(
                "Patient",
                [("CityClinic", "Patient"), ("UniHospital", "Person")],
                key_attribute="national_id",
                multi_valued_attributes=["phone"],
            ),
            ClassCorrespondence.of(
                "Ward", [("CityClinic", "Ward")], key_attribute="label"
            ),
            ClassCorrespondence.of(
                "Physician", [("UniHospital", "Physician")], key_attribute="name"
            ),
        ],
    )
    engine = GlobalQueryEngine(system)

    print("Global Patient class integrates both hospitals:")
    print(" ", system.global_schema.cls("Patient").attribute_names())
    print("Missing at CityClinic:",
          system.global_schema.missing_attribute_names("CityClinic", "Patient"))
    print("Missing at UniHospital:",
          system.global_schema.missing_attribute_names("UniHospital", "Patient"))
    print()

    print("Q1: who has blood type O+?  (blood_type is missing at the clinic)")
    outcome = engine.execute(
        "Select X.name, X.blood_type From Patient X Where X.blood_type = 'O+'",
        strategy="BL",
    )
    print("  certain:", outcome.results.certain_rows())
    print("  maybe:  ", outcome.results.maybe_rows())
    print("  (Ben is certain — his university record assists his clinic "
          "record;\n   Iris and Cora stay maybe: nobody knows their blood type.)")
    print()

    print("Q2 (disjunctive): cardiology patients — by ward OR by physician")
    outcome = engine.execute(
        "Select X.name From Patient X "
        "Where X.ward.label = cardiology or "
        "X.physician.speciality = cardiology",
        strategy="PL",
    )
    print("  certain:", outcome.results.certain_rows())
    print("  maybe:  ", outcome.results.maybe_rows())
    print()

    print("Q3 (multi-valued): who can be reached at 555-9902?")
    outcome = engine.execute(
        "Select X.name, X.phone From Patient X "
        "Where X.phone contains '555-9902'",
        strategy="CA",
    )
    for result in outcome.results.certain:
        row = result.row(outcome.results.targets)
        print(f"  certain: {row[0]} with phones {sorted(row[1])}")


if __name__ == "__main__":
    main()
