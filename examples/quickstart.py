#!/usr/bin/env python3
"""Quickstart: run the paper's query Q1 on the school federation.

Builds the three-site school federation of the paper's running example
(Figures 1-5), parses Q1 from its SQL/X text, and executes it with each
of the paper's strategies — all of which return the documented answer:

    certain: (Hedy, Kelly)     maybe: (Tony, Haley)

Run:  python examples/quickstart.py
"""

from repro import GlobalQueryEngine
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def main() -> None:
    system = build_school_federation()
    engine = GlobalQueryEngine(system)

    print("Query Q1 (SQL/X):")
    print(f"  {Q1_TEXT}\n")

    for strategy in ("CA", "BL", "PL"):
        outcome = engine.execute(Q1_TEXT, strategy=strategy)
        results = outcome.results
        metrics = outcome.metrics
        print(f"--- {strategy} ---")
        print(f"  certain results: {results.certain_rows()}")
        print(f"  maybe results:   {results.maybe_rows()}")
        for maybe in results.maybe:
            unsolved = ", ".join(str(p) for p in maybe.unsolved)
            print(f"    {maybe.goid} is maybe because of: {unsolved}")
        print(
            f"  simulated cost:  total={metrics.total_time * 1000:.2f} ms, "
            f"response={metrics.response_time * 1000:.2f} ms, "
            f"network={metrics.work.bytes_network} bytes"
        )
        print()

    print(
        "All strategies agree on the answer; they differ only in where\n"
        "the work happens — which the simulated costs above show."
    )


if __name__ == "__main__":
    main()
