#!/usr/bin/env python3
"""Compare CA / BL / PL / BL-S / PL-S on a synthetic Table 2 federation.

Generates a concrete three-site federation from the paper's workload
parameters (scaled down so it runs in seconds), executes the query under
all five strategies, verifies they agree, and prints a cost comparison:
total execution time, response time, bytes moved, assistants checked.

Run:  python examples/strategy_comparison.py [seed]
"""

import random
import sys

from repro import GlobalQueryEngine
from repro.bench.reporting import format_table
from repro.workload.generator import generate
from repro.workload.params import sample_params

STRATEGIES = ("CA", "BL", "PL", "BL-S", "PL-S")


def main(seed: int = 2026) -> None:
    rng = random.Random(seed)
    params = sample_params(rng, n_classes_range=(2, 3))
    params.seed = seed
    workload = generate(params, scale=0.1)

    print(f"Federation: {params.n_dbs} sites, {params.n_classes} global "
          f"classes, ~{sum(c.per_db[d].n_objects for c in params.classes for d in params.db_names) // 10} objects (scaled)")
    print(f"Query: {workload.query}\n")

    engine = GlobalQueryEngine(workload.system)
    outcomes = engine.compare(workload.query, strategies=list(STRATEGIES))

    first = outcomes["CA"].results
    print(f"Answer (identical under every strategy): {first.summary()}\n")

    rows = []
    for name in STRATEGIES:
        outcome = outcomes[name]
        work = outcome.metrics.work
        rows.append(
            [
                name,
                f"{outcome.total_time:.3f}",
                f"{outcome.response_time:.3f}",
                f"{work.bytes_network}",
                f"{work.bytes_disk}",
                f"{work.assistants_checked}",
                f"{work.signature_comparisons}",
            ]
        )
    print(
        format_table(
            [
                "strategy", "total (s)", "response (s)", "net bytes",
                "disk bytes", "assistants checked", "sig comparisons",
            ],
            rows,
        )
    )

    bl, pl, ca = outcomes["BL"], outcomes["PL"], outcomes["CA"]
    print()
    if bl.total_time < ca.total_time:
        print("* BL beats CA on total work: local filtering cuts transfers.")
    else:
        print("* CA beats BL on total work here: the local predicates are "
              "unselective (Figure 11's regime).")
    print(f"* Localized response advantage over CA: "
          f"{ca.response_time / bl.response_time:.2f}x (inter-site parallelism).")
    print(f"* PL checked {pl.metrics.work.assistants_checked} assistants vs "
          f"BL's {bl.metrics.work.assistants_checked} — PL dispatches before "
          "filtering (its characteristic overhead).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2026)
