#!/usr/bin/env python3
"""Walkthrough of the paper's localized protocol, step by step.

Follows Section 2.3's worked example on the school federation: query
decomposition into Q1'/Q1'', the local results R1/R2 with their unsolved
predicates and unsolved items, the assistant-object checks, and the
certification that eliminates John and Mary, keeps Tony maybe, and turns
Hedy into a certain result.

Run:  python examples/school_walkthrough.py
"""

from repro.core.certification import CertificationStats, certify
from repro.core.decompose import decompose
from repro.core.strategies import collect_verdicts, plan_dispatch, run_checks
from repro.sqlx import parse_query
from repro.workload.paper_example import Q1_TEXT, build_school_federation


def main() -> None:
    system = build_school_federation()
    query = parse_query(Q1_TEXT)

    print("=" * 72)
    print("STEP 1 — decompose the global query into local queries")
    print("=" * 72)
    decomposed = decompose(query, system.global_schema)
    for db_name, local_query in decomposed.local_queries.items():
        print(f"\nLocal query for {db_name} (root class {local_query.range_class}):")
        for predicate in local_query.local_predicates:
            print(f"  local predicate: {predicate}")
        for removed in local_query.removed:
            print(
                f"  removed (missing at path step {removed.missing_depth}): "
                f"{removed.predicate}"
            )

    print()
    print("=" * 72)
    print("STEP 2 — evaluate local predicates at each site (phase P)")
    print("=" * 72)
    local_results = {}
    for db_name, local_query in decomposed.local_queries.items():
        result = system.db(db_name).execute_local(local_query)
        local_results[db_name] = result
        print(f"\n{db_name} local results "
              f"({result.objects_scanned} objects scanned):")
        for row in result.rows:
            name = next(iter(row.bindings.values()))
            print(f"  {row.loid} ({name}) -> {row.kind.value}")
            for unsolved in row.unsolved:
                print(f"      unsolved on root: {unsolved.original}")
            for item in row.unsolved_items:
                predicates = ", ".join(
                    str(u.relative_predicate) for u in item.unsolved
                )
                print(
                    f"      unsolved item {item.loid} "
                    f"(via {item.reached_via}): {predicates}"
                )

    print()
    print("=" * 72)
    print("STEP 3 — look up assistants and check them (phase O)")
    print("=" * 72)
    reports = []
    for db_name, result in local_results.items():
        items = [i for row in result.maybe_rows for i in row.unsolved_items]
        plan = plan_dispatch(db_name, items, system)
        for request in plan.requests:
            loids = ", ".join(str(l) for l in request.loids)
            predicates = ", ".join(str(p) for p in request.predicates)
            print(f"\n{db_name} sends to {request.db_name}: "
                  f"check [{loids}] against [{predicates}]")
        site_reports = run_checks(plan.requests, system)
        for report in site_reports:
            for predicate, loids in report.satisfied.items():
                for loid in loids:
                    print(f"  {report.db_name}: {loid} SATISFIES {predicate}")
            for predicate, loids in report.violated.items():
                for loid in loids:
                    print(f"  {report.db_name}: {loid} VIOLATES  {predicate}")
        reports.extend(site_reports)

    print()
    print("=" * 72)
    print("STEP 4 — certification at the global site (phase I)")
    print("=" * 72)
    stats = CertificationStats()
    answer = certify(
        query,
        system.global_schema,
        system.catalog,
        local_results,
        collect_verdicts(reports),
        stats,
    )
    print(f"\n  entity groups examined:      {stats.groups}")
    print(f"  eliminated by absence:       {stats.eliminated_by_absence}"
          "   (John: his DB2 copy failed the city predicate)")
    print(f"  eliminated by violation:     {stats.eliminated_by_violation}"
          "   (Mary: Abel's DB3 copy is in EE, not CS)")
    print(f"  promoted to certain:         {stats.promoted_to_certain}"
          "   (Hedy: Kelly's DB3 copy is in CS)")
    print(f"  remained maybe:              {stats.remained_maybe}"
          "   (Tony: nobody knows his address or Haley's speciality)")

    print("\nFinal answer:")
    print(f"  certain: {answer.sort().certain_rows()}")
    print(f"  maybe:   {answer.maybe_rows()}")


if __name__ == "__main__":
    main()
