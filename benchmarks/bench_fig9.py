"""Figure 9: total execution time and response time vs. objects per class.

Paper claims reproduced here (Section 4.2, first experiment):

* 9(a): total execution time of BL and PL is shorter than CA's, and BL
  beats PL (phase-O overhead does not pay off at N_db = 3);
* 9(b): the response time of BL and PL is much shorter than CA's thanks
  to inter-site parallelism;
* all curves grow with the number of objects.
"""

from bench_common import SAMPLES, run_once, write_result

from repro.bench.experiments import figure9
from repro.bench.reporting import series_table, shape_report


def test_figure9_total_and_response(benchmark):
    series = run_once(benchmark, lambda: figure9(samples=SAMPLES))
    text = (
        "Figure 9(a) — total execution time\n"
        + series_table(series, "total")
        + "\n\nFigure 9(b) — response time\n"
        + series_table(series, "response")
    )
    write_result("figure9", text)

    for point in series.points:
        # 9(a): BL < PL < CA in total execution time.
        assert point.total_time["BL"] < point.total_time["CA"]
        assert point.total_time["PL"] < point.total_time["CA"]
        assert point.total_time["BL"] <= point.total_time["PL"]
        # 9(b): localized response times well below CA's.
        assert point.response_time["BL"] < point.response_time["CA"] * 0.8
        assert point.response_time["PL"] < point.response_time["CA"] * 0.8

    facts = shape_report(series)
    assert facts["CA_total_monotone_up"]
    assert facts["BL_total_monotone_up"]
    assert facts["PL_total_monotone_up"]
    assert facts["CA_response_monotone_up"]
    assert facts["localized_response_beats_ca_everywhere"]
    assert facts["bl_total_below_pl_everywhere"]
