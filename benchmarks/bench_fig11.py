"""Figure 11: total execution time and response time vs. local selectivity.

Paper claims reproduced here (Section 4.2, third experiment; N_o drawn
from [1000, 2000]):

* varying the selectivity does not influence CA at all;
* BL's and PL's times increase with the selectivity (fewer objects are
  eliminated locally, so more data transfers and integrates);
* the effect on BL is stronger than on PL (BL's assistant checking also
  scales with the surviving rows; PL's does not).
"""

from bench_common import SAMPLES, run_once, write_result

from repro.bench.experiments import figure11
from repro.bench.reporting import series_table


def test_figure11_total_and_response(benchmark):
    series = run_once(benchmark, lambda: figure11(samples=SAMPLES))
    text = (
        "Figure 11(a) — total execution time\n"
        + series_table(series, "total")
        + "\n\nFigure 11(b) — response time\n"
        + series_table(series, "response")
    )
    write_result("figure11", text)

    ca = series.totals("CA")
    bl = series.totals("BL")
    pl = series.totals("PL")

    # CA flat across the sweep.
    assert max(ca) - min(ca) < 1e-9 * max(ca) + 1e-6

    # BL and PL strictly increase with selectivity.
    assert all(b2 > b1 for b1, b2 in zip(bl, bl[1:]))
    assert all(p2 > p1 for p1, p2 in zip(pl, pl[1:]))

    # The growth of BL exceeds the growth of PL.
    assert (bl[-1] - bl[0]) > (pl[-1] - pl[0])

    # Same ordering facts for response time.
    ca_r = series.responses("CA")
    bl_r = series.responses("BL")
    assert max(ca_r) - min(ca_r) < 1e-9 * max(ca_r) + 1e-6
    assert bl_r[-1] > bl_r[0]
