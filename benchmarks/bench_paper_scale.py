"""Full paper-scale concrete run: N_o = 5000-6000 objects per class/site.

Everything else runs scaled down for speed; this bench proves the
engine handles Table 2's actual extent sizes — a three-site federation
with tens of thousands of live objects — and that the strategies still
agree there.
"""

from bench_common import make_workload, run_once, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine


def run_full_scale():
    workload = make_workload(seed=777, scale=1.0, n_classes_range=(2, 2))
    total_objects = sum(
        db.count(cls)
        for db in workload.system.databases.values()
        for cls in db.schema.class_names
    )
    engine = GlobalQueryEngine(workload.system)
    outcomes = engine.compare(workload.query)  # raises on disagreement
    return total_objects, outcomes


def test_paper_scale_execution(benchmark):
    total_objects, outcomes = run_once(benchmark, run_full_scale)

    rows = [
        [
            name,
            f"{o.total_time:.2f}",
            f"{o.response_time:.2f}",
            str(o.metrics.work.bytes_network),
            f"{o.metrics.certain_results}+{o.metrics.maybe_results}m",
        ]
        for name, o in outcomes.items()
    ]
    text = (
        f"federation: {total_objects} live objects across 3 sites\n\n"
        + format_table(
            ["strategy", "total(s)", "response(s)", "net bytes", "answers"],
            rows,
        )
    )
    write_result("paper_scale", text)

    assert total_objects > 25_000  # Table 2 scale: 2 classes x 3 sites x ~5500
    ca, bl = outcomes["CA"], outcomes["BL"]
    assert ca.metrics.work.objects_shipped > 25_000
    assert bl.response_time < ca.response_time
