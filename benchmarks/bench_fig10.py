"""Figure 10: total execution time and response time vs. N_db.

Paper claims reproduced here (Section 4.2, second experiment):

* the ratio of objects with isomeric copies (R_iso) grows with N_db, so
  the number of assistant objects to check grows — BL and PL's total
  execution time grows at a higher *rate* than CA's;
* 10(a): PL's total execution time eventually passes CA's;
* 10(b): parallel local processing keeps BL/PL response times below CA's
  at every database count.
"""

from bench_common import SAMPLES, run_once, write_result

from repro.bench.experiments import figure10
from repro.bench.reporting import series_table


def test_figure10_total_and_response(benchmark):
    series = run_once(benchmark, lambda: figure10(samples=SAMPLES))
    text = (
        "Figure 10(a) — total execution time\n"
        + series_table(series, "total")
        + "\n\nFigure 10(b) — response time\n"
        + series_table(series, "response")
    )
    write_result("figure10", text)

    first, last = series.points[0], series.points[-1]

    # Localized strategies grow at a higher rate than CA.
    ca_growth = last.total_time["CA"] / first.total_time["CA"]
    bl_growth = last.total_time["BL"] / first.total_time["BL"]
    pl_growth = last.total_time["PL"] / first.total_time["PL"]
    assert bl_growth > ca_growth
    assert pl_growth > bl_growth

    # 10(a): PL starts below CA and passes it at high N_db.
    assert first.total_time["PL"] < first.total_time["CA"]
    assert last.total_time["PL"] > last.total_time["CA"]

    # 10(b): localized response stays below CA everywhere.
    for point in series.points:
        assert point.response_time["BL"] < point.response_time["CA"]
        assert point.response_time["PL"] < point.response_time["CA"]
