"""Figure 9 rechecked with *concrete* executions (no analytic model).

The figure benches drive the paper's own parameter-driven methodology;
this bench materializes real federations at three object scales, runs
the actual CA/BL/PL implementations on the DES, and re-asserts Figure
9's orderings on measured executions — closing the loop between the
model and the system.
"""

from bench_common import make_workload, run_once, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine

#: Object-count scales (x Table 2's 5000-6000) and averaging seeds.
SCALES = (0.02, 0.06, 0.1)
SEEDS = (201, 202, 203, 204)


def sweep():
    points = []
    for scale in SCALES:
        totals = {"CA": 0.0, "BL": 0.0, "PL": 0.0}
        responses = {"CA": 0.0, "BL": 0.0, "PL": 0.0}
        for seed in SEEDS:
            workload = make_workload(
                seed=seed, scale=scale, n_classes_range=(2, 3)
            )
            engine = GlobalQueryEngine(workload.system)
            outcomes = engine.compare(workload.query)  # checks agreement
            for name, outcome in outcomes.items():
                totals[name] += outcome.total_time / len(SEEDS)
                responses[name] += outcome.response_time / len(SEEDS)
        points.append((scale, totals, responses))
    return points


def test_figure9_shape_holds_on_concrete_des(benchmark):
    points = run_once(benchmark, sweep)

    rows = []
    for scale, totals, responses in points:
        approx_objects = int(5500 * scale)
        rows.append(
            [f"~{approx_objects}"]
            + [f"{totals[n]:.3f}" for n in ("CA", "BL", "PL")]
            + [f"{responses[n]:.3f}" for n in ("CA", "BL", "PL")]
        )
    text = format_table(
        ["objects/class", "CA total(s)", "BL total(s)", "PL total(s)",
         "CA resp(s)", "BL resp(s)", "PL resp(s)"],
        rows,
    )
    write_result("figure9_concrete", text)

    for _scale, totals, responses in points:
        # 9(a): localized totals beat CA, BL <= PL (averaged).
        assert totals["BL"] < totals["CA"]
        assert totals["BL"] <= totals["PL"] * 1.001
        # 9(b): localized response beats CA.
        assert responses["BL"] < responses["CA"]
        assert responses["PL"] < responses["CA"]
    # Growth with object count, every strategy.
    for name in ("CA", "BL", "PL"):
        series = [totals[name] for _s, totals, _r in points]
        assert series[0] < series[-1]
