"""Soak test: strategy equivalence fuzzing over many random federations.

Runs a batch of generated federations (random N_db, class-chain depth,
predicate mixes, null ratios) through all five strategies and fails on
the first disagreement.  This is the repository's widest single sweep of
the equivalence oracle; the unit suite runs a smaller version.
"""

import random

from bench_common import make_workload, run_once, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers

BATCH = 60
STRATEGIES = ("CA", "BL", "PL", "BL-S", "PL-S")


def soak():
    rng = random.Random(9999)
    stats = {"runs": 0, "entities": 0, "certain": 0, "maybe": 0}
    for _ in range(BATCH):
        seed = rng.randrange(1_000_000)
        n_dbs = rng.choice((2, 3, 3, 4, 5))
        workload = make_workload(
            seed=seed, scale=0.015, n_dbs=n_dbs,
        )
        engine = GlobalQueryEngine(workload.system)
        baseline = engine.execute(workload.query, "CA")
        for name in STRATEGIES[1:]:
            outcome = engine.execute(workload.query, name)
            if not same_answers(baseline.results, outcome.results):
                raise AssertionError(
                    f"{name} disagrees with CA on seed={seed} n_dbs={n_dbs}"
                )
        stats["runs"] += 1
        stats["entities"] += workload.entities_per_class[0]
        stats["certain"] += len(baseline.results.certain)
        stats["maybe"] += len(baseline.results.maybe)
    return stats


def test_equivalence_soak(benchmark):
    stats = run_once(benchmark, soak)
    text = format_table(
        ["runs", "root entities", "certain answers", "maybe answers"],
        [[str(stats["runs"]), str(stats["entities"]),
          str(stats["certain"]), str(stats["maybe"])]],
    )
    write_result("soak", text)
    assert stats["runs"] == BATCH
    assert stats["maybe"] > 0  # the fuzz actually exercised missing data
    assert stats["certain"] > 0
