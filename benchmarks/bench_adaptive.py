"""Adaptive-planner bench: static vs trace-fed AUTO, plus prune savings.

Two sweeps over the school federation's Q1:

* **pick-accuracy A/B** — for the fault-free reference and a ladder of
  peer-link storms (DB1->DB3 and DB2->DB3 degraded: the localized
  strategies pay the stalls on their assistant-check exchanges, CA never
  touches those links), run AUTO under ``planner=static`` and
  ``planner=feedback`` (three warm-up executions feed the trace store)
  and score each pick against the ground truth — the argmin of the
  *concretely executed* CA/BL/PL response times under the same plan.
  The contract: trace-fed AUTO is at least as accurate as static AUTO,
  flips its pick somewhere in the storm ladder, never changes an
  answer, and matches static's fault-free response exactly (no warm-path
  regression).
* **constraint-prune savings** — the two sound prunes A/B'd against
  ``planner=static``: a range-pruned site (``s-no >= 810000`` proves
  DB1's whole block empty) and a provably-UNKNOWN assistant check
  (DB2's ``speciality`` column nulled).  The contract per cell: the
  answer digest is identical, the prune counters fire, and the pruned
  run is never slower.

Runs standalone (CI calls it twice, diffs the JSON for determinism, and
checks it against the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick \
        --json out.json --check benchmarks/results/BENCH_adaptive.json

The JSON output is fully determined by ``(--seed, --storms, --quick)``:
no timestamps, no dict-order dependence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.core.query import Predicate, Query
from repro.faults.plan import FaultPlan, LinkFault
from repro.objectdb.values import NULL
from repro.workload.paper_example import Q1_TEXT, build_school_federation

SCHEMA = "BENCH_adaptive/v1"

#: Strategies executed concretely per scenario to establish ground truth.
GROUND = ("CA", "BL", "PL")

#: Peer-link loss ladder (with an 8x latency multiplier on survivors).
FULL_STORMS = (0.3, 0.6, 0.8)
QUICK_STORMS = (0.6,)
PEER_MULTIPLIER = 8.0

#: Executions that feed the trace store before the measured pick.
WARMUPS = 3


def _storm_plan(seed, loss):
    """Degrade only the peer links into DB3 — the check-exchange paths."""
    return FaultPlan(seed=seed, links=(
        LinkFault(src="DB1", dst="DB3",
                  latency_multiplier=PEER_MULTIPLIER, loss=loss),
        LinkFault(src="DB2", dst="DB3",
                  latency_multiplier=PEER_MULTIPLIER, loss=loss),
    ))


def _scenarios(storms, seed):
    yield "none", None
    for loss in storms:
        yield f"peer:{loss:g}", _storm_plan(seed, loss)


def _digest(report):
    """Stable fingerprint of the answer (certain + maybe rows)."""
    payload = json.dumps(report.results.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _event_attrs(report, name):
    for event in report.metrics.events:
        if event.name == name:
            return dict(event.attrs)
    raise AssertionError(f"missing {name} event")


def ground_truth(plan):
    """Concrete response time per strategy under *plan* (fresh engines)."""
    concrete = {}
    for strategy in GROUND:
        engine = GlobalQueryEngine(build_school_federation())
        options = engine.options
        if plan is not None:
            options = options.with_(fault_plan=plan)
        report = engine.execute(Q1_TEXT, strategy, options=options)
        concrete[strategy] = round(report.response_time, 6)
    return concrete


def auto_cell(mode, plan, concrete):
    """One measured AUTO pick after WARMUPS trace-feeding executions.

    A fresh engine per cell: the static cell must not benefit from the
    feedback cell's observations or vice versa.  The warm-ups run under
    the same plan/mode, so by the measured run the feedback store has
    seen the storm (and the static cell has seen nothing it can use).
    """
    engine = GlobalQueryEngine(build_school_federation())
    options = engine.options.with_(planner=mode)
    if plan is not None:
        options = options.with_(fault_plan=plan)
    for _ in range(WARMUPS):
        engine.execute(Q1_TEXT, "AUTO", options=options)
    report = engine.execute(Q1_TEXT, "AUTO", options=options)
    predict = _event_attrs(report, "auto.predict")
    outcome = _event_attrs(report, "auto.outcome")
    choice = predict["choice"]
    best = min(concrete.values())
    return {
        "mode": mode,
        "choice": choice,
        "accurate": concrete[choice] <= best + 1e-9,
        "used_feedback": predict["used_feedback"] == "true",
        "rank_of_actual": int(outcome["rank_of_actual"]),
        "mispredicted": outcome["mispredicted"] == "true",
        "certain": len(report.results.certain),
        "maybe": len(report.results.maybe),
        "answer_digest": _digest(report),
        "response_s": round(report.response_time, 6),
    }


def accuracy_sweep(storms, seed):
    rows = []
    for label, plan in _scenarios(storms, seed):
        concrete = ground_truth(plan)
        best = min(concrete, key=concrete.get)
        for mode in ("static", "feedback"):
            cell = auto_cell(mode, plan, concrete)
            rows.append({
                "scenario": label,
                "ground_truth": best,
                "concrete": concrete,
                **cell,
            })
    _assert_accuracy_contract(rows)
    return rows


def _assert_accuracy_contract(rows):
    by_key = {(r["scenario"], r["mode"]): r for r in rows}
    scenarios = sorted({r["scenario"] for r in rows})
    static_hits = sum(by_key[(s, "static")]["accurate"] for s in scenarios)
    feedback_hits = sum(by_key[(s, "feedback")]["accurate"]
                        for s in scenarios)
    if feedback_hits < static_hits:
        raise AssertionError(
            f"trace-fed AUTO picked worse than static: "
            f"{feedback_hits}/{len(scenarios)} vs "
            f"{static_hits}/{len(scenarios)}"
        )
    # No warm-path regression: with nothing observed (fault-free runs
    # feed no trace), feedback mode is byte-identical to static on the
    # fault-free reference — same pick, same response.
    clean_static = by_key[("none", "static")]
    clean_feedback = by_key[("none", "feedback")]
    if clean_feedback["choice"] != clean_static["choice"]:
        raise AssertionError(
            f"fault-free pick moved under feedback mode: "
            f"{clean_static['choice']} -> {clean_feedback['choice']}"
        )
    if clean_feedback["response_s"] != clean_static["response_s"]:
        raise AssertionError(
            f"fault-free response moved under feedback mode: "
            f"{clean_static['response_s']} -> "
            f"{clean_feedback['response_s']}"
        )
    flipped = [s for s in scenarios
               if by_key[(s, "feedback")]["choice"]
               != by_key[(s, "static")]["choice"]]
    if not flipped:
        raise AssertionError("no scenario flipped the trace-fed pick — "
                             "the sweep exercises nothing")
    for scenario in scenarios:
        left = by_key[(scenario, "static")]
        right = by_key[(scenario, "feedback")]
        if left["answer_digest"] != right["answer_digest"]:
            raise AssertionError(
                f"{scenario}: planner mode changed the answer"
            )


# --- constraint-prune savings ------------------------------------------------


def _site_prune_setup():
    system = build_school_federation()
    query = Query.conjunctive(
        "Student", ["name"], [Predicate.of("s-no", ">=", 810000)]
    )
    return system, query


def _check_prune_setup():
    system = build_school_federation()
    db2 = system.db("DB2")
    for obj in db2.extent("Teacher").values():
        obj.values["speciality"] = NULL
    db2.note_mutation("Teacher")
    return system, Q1_TEXT


PRUNE_CASES = (
    ("site-prune", _site_prune_setup),
    ("check-prune", _check_prune_setup),
)


def prune_sweep():
    rows = []
    for label, setup in PRUNE_CASES:
        cells = {}
        for mode in ("static", "constraints"):
            system, query = setup()
            engine = GlobalQueryEngine(system)
            report = engine.execute(
                query, "BL", options=engine.options.with_(planner=mode)
            )
            cells[mode] = {
                "case": label,
                "mode": mode,
                "certain": len(report.results.certain),
                "maybe": len(report.results.maybe),
                "answer_digest": _digest(report),
                "sites_pruned": report.metrics.work.sites_pruned,
                "checks_pruned": report.metrics.work.checks_pruned,
                "assistants_checked":
                    report.metrics.work.assistants_checked,
                "objects_scanned": report.metrics.work.objects_scanned,
                "response_s": round(report.response_time, 6),
                "total_s": round(report.total_time, 6),
            }
        static, pruned = cells["static"], cells["constraints"]
        if pruned["answer_digest"] != static["answer_digest"]:
            raise AssertionError(f"{label}: pruning changed the answer")
        if pruned["sites_pruned"] + pruned["checks_pruned"] == 0:
            raise AssertionError(f"{label}: no prune fired")
        if pruned["total_s"] > static["total_s"]:
            raise AssertionError(
                f"{label}: pruned run slower ({pruned['total_s']} > "
                f"{static['total_s']})"
            )
        rows.extend([static, pruned])
    return rows


def sweep(storms, seed):
    return {
        "schema": SCHEMA,
        "query": Q1_TEXT,
        "seed": seed,
        "storms": list(storms),
        "warmups": WARMUPS,
        "accuracy": accuracy_sweep(storms, seed),
        "prunes": prune_sweep(),
    }


def render(result):
    headers = ["scenario", "mode", "pick", "truth", "accurate", "fed",
               "rank", "response (s)", "answer"]
    table_rows = [
        [row["scenario"], row["mode"], row["choice"], row["ground_truth"],
         "yes" if row["accurate"] else "NO",
         "yes" if row["used_feedback"] else "no",
         str(row["rank_of_actual"]), f"{row['response_s']:.3f}",
         f"{row['certain']}+{row['maybe']}m"]
        for row in result["accuracy"]
    ]
    text = format_table(headers, table_rows)
    headers = ["case", "mode", "sites pruned", "checks pruned",
               "assistants", "scanned", "total (s)", "answer"]
    table_rows = [
        [row["case"], row["mode"], str(row["sites_pruned"]),
         str(row["checks_pruned"]), str(row["assistants_checked"]),
         str(row["objects_scanned"]), f"{row['total_s']:.3f}",
         f"{row['certain']}+{row['maybe']}m"]
        for row in result["prunes"]
    ]
    return text + "\n\nconstraint-prune savings:\n" + \
        format_table(headers, table_rows)


#: Per-row fields compared by --check (all deterministic).
ACCURACY_CHECKED = ("choice", "ground_truth", "accurate", "used_feedback",
                    "rank_of_actual", "certain", "maybe", "answer_digest",
                    "response_s")
PRUNE_CHECKED = ("certain", "maybe", "answer_digest", "sites_pruned",
                 "checks_pruned", "assistants_checked", "objects_scanned",
                 "response_s", "total_s")


def check_against(result, baseline_path):
    """Deterministic-field diffs vs the committed baseline.

    Compares rows present in both runs (the CI quick sweep is a subset
    of the committed full sweep).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    diffs = []

    def compare(kind, rows, base_rows, key_fields, checked):
        base_by_key = {
            tuple(r[k] for k in key_fields): r for r in base_rows
        }
        for row in rows:
            key = tuple(row[k] for k in key_fields)
            base = base_by_key.get(key)
            if base is None:
                continue
            for fname in checked:
                if row[fname] != base[fname]:
                    diffs.append(
                        f"{kind} {'/'.join(str(k) for k in key)}."
                        f"{fname}: {base[fname]} -> {row[fname]}"
                    )

    compare("accuracy", result["accuracy"], baseline["accuracy"],
            ("scenario", "mode"), ACCURACY_CHECKED)
    compare("prune", result["prunes"], baseline["prunes"],
            ("case", "mode"), PRUNE_CHECKED)
    return diffs


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer storm rates (CI smoke)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--storms", default="",
                        help="comma-separated peer-loss rates, e.g. 0.3,0.6")
    parser.add_argument("--json", default="", dest="json_path",
                        help="also write the machine-readable result here")
    parser.add_argument("--check", default="", dest="check_path",
                        help="fail when deterministic fields differ from "
                             "this committed baseline JSON")
    args = parser.parse_args(argv)

    if args.storms:
        storms = tuple(float(r) for r in args.storms.split(","))
    else:
        storms = QUICK_STORMS if args.quick else FULL_STORMS

    result = sweep(storms, args.seed)
    text = render(result)
    print(text)
    write_result("adaptive", text)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")

    if args.check_path:
        diffs = check_against(result, args.check_path)
        if diffs:
            print(f"\nBASELINE REGRESSION vs {args.check_path}:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(f"\nbaseline check OK vs {args.check_path}")
    return 0


def test_adaptive_sweep(benchmark):
    """pytest-benchmark entry point (quick storms)."""
    from bench_common import run_once

    result = run_once(benchmark, lambda: sweep(QUICK_STORMS, seed=3))
    write_result("adaptive", render(result))
    by_key = {(r["scenario"], r["mode"]): r for r in result["accuracy"]}
    # The differentiator: somewhere in the ladder the trace-fed pick is
    # accurate where the static pick is not.
    gains = [
        s for s in {r["scenario"] for r in result["accuracy"]}
        if by_key[(s, "feedback")]["accurate"]
        and not by_key[(s, "static")]["accurate"]
    ]
    assert gains
    assert all(r["sites_pruned"] or r["checks_pruned"]
               for r in result["prunes"] if r["mode"] == "constraints")


if __name__ == "__main__":
    sys.exit(main())
