"""Ablation: shared vs. uncontended network channel.

The paper attributes part of the localized strategies' N_db sensitivity
to "the transfer time gets longer when more component databases transfer
data simultaneously" — i.e. network contention.  This ablation re-runs
the Figure 10 sweep with one private channel per site pair: total
execution time is unchanged (it sums raw durations) while CA's response
time, dominated by serialized bulk transfers, improves the most.
"""

from bench_common import SAMPLES, run_once, write_result

from repro.bench.experiments import figure10
from repro.bench.reporting import format_table

ABLATION_SAMPLES = max(30, SAMPLES // 3)


def test_network_contention_ablation(benchmark):
    def sweep():
        shared = figure10(samples=ABLATION_SAMPLES, db_counts=(3, 6))
        private = figure10(
            samples=ABLATION_SAMPLES, db_counts=(3, 6), shared_network=False
        )
        return shared, private

    shared, private = run_once(benchmark, sweep)

    rows = []
    for p_shared, p_private in zip(shared.points, private.points):
        for strategy in ("CA", "BL", "PL"):
            rows.append(
                [
                    f"{p_shared.x:g}",
                    strategy,
                    f"{p_shared.response_time[strategy]:.3f}",
                    f"{p_private.response_time[strategy]:.3f}",
                ]
            )
    text = format_table(
        ["N_db", "strategy", "response shared(s)", "response private(s)"], rows
    )
    write_result("ablation_network", text)

    for p_shared, p_private in zip(shared.points, private.points):
        for strategy in ("CA", "BL", "PL"):
            # Totals are contention-free sums: unchanged.
            assert p_private.total_time[strategy] == (
                p_shared.total_time[strategy]
            )
            # Removing contention can only help response time.
            assert (
                p_private.response_time[strategy]
                <= p_shared.response_time[strategy] + 1e-9
            )
        # CA benefits the most in absolute terms: it moves all the data.
        ca_gain = p_shared.response_time["CA"] - p_private.response_time["CA"]
        bl_gain = p_shared.response_time["BL"] - p_private.response_time["BL"]
        assert ca_gain >= bl_gain
