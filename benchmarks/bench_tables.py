"""Tables 1-2 and Figure 8: parameters and strategy executing flows.

* Table 1 / Table 2 are regenerated from the live configuration objects
  (so a drifting constant would fail here, not silently skew figures);
* Figure 8 shows each strategy's executing flow — reproduced as the
  measured per-phase time breakdown of a real Q1 execution, which also
  checks the phase *order* (O -> I -> P for CA, P -> O -> I for BL,
  O -> P -> I for PL, per Section 3).
"""

from bench_common import run_once, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.sim.costs import table1_rows
from repro.sim.taskgraph import PHASE_I, PHASE_O, PHASE_P, PHASE_SCAN, PHASE_XFER
from repro.workload.paper_example import Q1_TEXT, build_school_federation
from repro.workload.params import table2_rows


def test_table1_system_parameters(benchmark):
    rows = run_once(benchmark, table1_rows)
    text = format_table(["parameter", "description", "setting"], rows)
    write_result("table1", text)
    settings = {row[0]: row[2] for row in rows}
    assert settings["S_a"] == "32 bytes"
    assert settings["S_GOid"] == "16 bytes"
    assert settings["S_LOid"] == "16 bytes"
    assert settings["S_s"] == "32 bytes"
    assert settings["T_d"] == "15 us/byte"
    assert settings["T_net"] == "8 us/byte"
    assert settings["T_c"] == "0.5 us/comparison"
    assert settings["N_iso"] == "2"


def test_table2_database_and_query_parameters(benchmark):
    rows = run_once(benchmark, table2_rows)
    text = format_table(["parameter", "description", "default setting"], rows)
    write_result("table2", text)
    settings = {row[0]: row[2] for row in rows}
    assert settings["N_db"] == "3"
    assert settings["N_c"] == "1 ~ 4"
    assert settings["N_o^{i,k}"] == "5000 ~ 6000"
    assert settings["R_ps^k"] == "0.45^sqrt(N_p^k)"
    assert settings["R_iso^k"] == "1 - 0.9^(N_db-1)"


def test_figure8_executing_flows(benchmark):
    """Per-strategy phase breakdown of Q1 on the school federation."""

    def run_all():
        system = build_school_federation()
        engine = GlobalQueryEngine(system)
        return {
            name: engine.execute(Q1_TEXT, name).metrics
            for name in ("CA", "BL", "PL")
        }

    metrics = run_once(benchmark, run_all)
    phases = (PHASE_SCAN, PHASE_P, PHASE_O, PHASE_I, PHASE_XFER)
    rows = []
    for name, m in metrics.items():
        rows.append(
            [name]
            + [f"{m.phase_time.get(ph, 0.0) * 1000:.3f}" for ph in phases]
        )
    text = format_table(
        ["strategy"] + [f"{ph} (ms)" for ph in phases], rows
    )
    write_result("figure8_flows", text)

    # CA has no phase-O/P work at component sites (all at the GPS after
    # integration); the localized strategies spend phase O on lookups and
    # assistant checks.
    assert metrics["CA"].phase_time.get(PHASE_I, 0) > 0
    assert metrics["BL"].phase_time.get(PHASE_O, 0) > 0
    assert metrics["PL"].phase_time.get(PHASE_O, 0) > 0
    assert metrics["PL"].phase_time.get(PHASE_O, 0) >= metrics["BL"].phase_time.get(PHASE_O, 0)
