"""Shared benchmark helpers (importable without conftest name clashes).

Set ``REPRO_SAMPLES`` to control how many Table 2 parameter sets each
figure sweep averages (the paper uses 500; the default of 150 keeps a
full benchmark run under a couple of minutes).  Every figure bench
writes its reproduced rows to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
import pathlib

#: Parameter sets averaged per x-axis setting (paper: 500).
SAMPLES = int(os.environ.get("REPRO_SAMPLES", "150"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist one experiment's reproduced rows for inspection."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def run_once(benchmark, fn):
    """Benchmark *fn* with a single timed round (sweeps are long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def make_workload(seed: int, scale: float = 0.03, **kwargs):
    """One generated workload, deterministic in *seed*."""
    import random

    from repro.workload.generator import generate
    from repro.workload.params import sample_params

    rng = random.Random(seed)
    params = sample_params(rng, **kwargs)
    params.seed = seed
    return generate(params, scale=scale)
