"""Chaos bench: fault rate x strategy, measuring time AND completeness.

Sweeps the school federation's Q1 through CA/BL/PL under

* the fault-free reference,
* every single-site loss (``FaultPlan.single_site_loss``), and
* random chaos plans at increasing per-site outage rates
  (``FaultPlan.chaos``),

and reports, per cell: total/response time, certain/maybe counts, and
*completeness* — the certain count as a fraction of that strategy's
fault-free certain count.  This is the experiment behind the headline
robustness claim: losing one site collapses CA's fused outerjoin to
zero certainty while BL/PL still certify every row whose provenance
avoids the dead site.

Runs standalone (CI calls it twice and diffs the JSON for determinism)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --json out.json

The JSON output is fully determined by ``(--seed, --rates, --quick)``:
no timestamps, no dict-order dependence.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.faults import FaultPlan
from repro.workload.paper_example import Q1_TEXT, build_school_federation

STRATEGIES = ("CA", "BL", "PL")
FULL_RATES = (0.25, 0.5, 0.75, 1.0)
QUICK_RATES = (0.5, 1.0)


#: Chaos window horizon, matched to Q1's simulated timescale (~80 ms)
#: so random windows actually land inside the execution.
CHAOS_HORIZON = 0.1


def _scenarios(sites, rates, seed):
    """(label, plan) pairs; the fault-free reference comes first."""
    yield "none", None
    for site in sites:
        yield f"loss:{site}", FaultPlan.single_site_loss(site, seed=seed)
    for rate in rates:
        yield f"chaos:{rate:g}", FaultPlan.chaos(
            sites, rate, seed=seed, horizon=CHAOS_HORIZON
        )


def _assert_fault_visibility(report, plan):
    """Every faulted run must surface its faults in the observability
    layer — the bench doubles as a smoke test for that contract."""
    events = {event.name for event in report.metrics.events}
    if "faults.plan" not in events:
        raise AssertionError("active plan left no faults.plan event")
    if plan.outages and not report.metrics.fault_windows:
        raise AssertionError("outages missing from metrics.fault_windows")
    snapshot = report.registry.snapshot()
    for name in ("work.retries", "work.timeouts", "work.messages_lost"):
        if name not in snapshot:
            raise AssertionError(f"counter {name} missing from registry")


def run_cell(strategy, plan, seed):
    """One (strategy, scenario) execution on a fresh federation."""
    engine = GlobalQueryEngine(build_school_federation())
    report = engine.execute(Q1_TEXT, strategy,
                            fault_plan=plan, fault_seed=seed)
    if plan is not None and plan.active:
        _assert_fault_visibility(report, plan)
    return {
        "certain": len(report.results.certain),
        "maybe": len(report.results.maybe),
        "total_s": round(report.total_time, 6),
        "response_s": round(report.response_time, 6),
        "retries": report.metrics.work.retries,
        "timeouts": report.metrics.work.timeouts,
        "complete": report.availability.complete,
        "availability": report.availability.summary(),
    }


def sweep(rates, seed):
    sites = sorted(build_school_federation().databases)
    rows = []
    reference = {}
    for label, plan in _scenarios(sites, rates, seed):
        for strategy in STRATEGIES:
            cell = run_cell(strategy, plan, seed)
            if label == "none":
                reference[strategy] = cell["certain"]
            base = reference[strategy]
            cell["completeness"] = (
                round(cell["certain"] / base, 4) if base else 1.0
            )
            rows.append({"scenario": label, "strategy": strategy, **cell})
    return {"query": Q1_TEXT, "seed": seed, "sites": sites, "rows": rows}


def render(result):
    headers = ["scenario", "strategy", "certain", "maybe", "completeness",
               "total (s)", "response (s)", "retries", "availability"]
    table_rows = [
        [row["scenario"], row["strategy"], str(row["certain"]),
         str(row["maybe"]), f"{row['completeness']:.2f}",
         f"{row['total_s']:.3f}", f"{row['response_s']:.3f}",
         str(row["retries"]), row["availability"]]
        for row in result["rows"]
    ]
    return format_table(headers, table_rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer chaos rates (CI smoke)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rates", default="",
                        help="comma-separated chaos rates, e.g. 0.25,0.5")
    parser.add_argument("--json", default="", dest="json_path",
                        help="also write the machine-readable result here")
    args = parser.parse_args(argv)

    if args.rates:
        rates = tuple(float(r) for r in args.rates.split(","))
    else:
        rates = QUICK_RATES if args.quick else FULL_RATES

    result = sweep(rates, args.seed)
    text = render(result)
    print(text)
    write_result("chaos", text)

    # The acceptance contrast: under any single-site loss CA certifies
    # strictly less than the localized strategies do.
    by_key = {(r["scenario"], r["strategy"]): r for r in result["rows"]}
    degraded = [s for s in result["sites"]
                if not by_key[(f"loss:{s}", "CA")]["complete"]]
    for site in degraded:
        ca = by_key[(f"loss:{site}", "CA")]["certain"]
        bl = by_key[(f"loss:{site}", "BL")]["certain"]
        pl = by_key[(f"loss:{site}", "PL")]["certain"]
        if not (ca <= bl and ca <= pl):
            raise AssertionError(
                f"loss:{site}: CA certified {ca} > localized ({bl}/{pl})"
            )

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")
    return 0


def test_chaos_sweep(benchmark):
    """pytest-benchmark entry point (quick rates)."""
    from bench_common import run_once

    result = run_once(benchmark, lambda: sweep(QUICK_RATES, seed=7))
    write_result("chaos", render(result))
    losses = [r for r in result["rows"] if r["scenario"].startswith("loss:")]
    assert any(not r["complete"] for r in losses)
    # CA never certifies more than BL/PL under a single-site loss.
    by_key = {(r["scenario"], r["strategy"]): r for r in result["rows"]}
    for site in result["sites"]:
        assert (by_key[(f"loss:{site}", "CA")]["certain"]
                <= by_key[(f"loss:{site}", "BL")]["certain"])


if __name__ == "__main__":
    sys.exit(main())
