"""Chaos bench: fault rate x strategy, measuring time AND completeness.

Sweeps the school federation's Q1 through CA/BL/PL under

* the fault-free reference,
* every single-site loss (``FaultPlan.single_site_loss``), and
* random chaos plans at increasing per-site outage rates
  (``FaultPlan.chaos``),

and reports, per cell: total/response time, certain/maybe counts, and
*completeness* — the certain count as a fraction of that strategy's
fault-free certain count.  This is the experiment behind the headline
robustness claim: losing one site collapses CA's fused outerjoin to
zero certainty while BL/PL still certify every row whose provenance
avoids the dead site.

A second sweep A/B-tests replica failover: every component->component
link degrades (global-site links stay clean — the sites themselves are
alive), and each localized strategy runs with failover off, on, and
on+hedging.  The contract enforced per cell: failover never certifies
less than the eager-demotion baseline, strictly more somewhere in the
sweep, a fully-recovered answer is byte-identical to the fault-free
run, and hedging never changes any answer.

Runs standalone (CI calls it twice, diffs the JSON for determinism, and
checks it against the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick \
        --json out.json --check benchmarks/results/BENCH_chaos.json

The JSON output is fully determined by ``(--seed, --rates, --quick)``:
no timestamps, no dict-order dependence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.faults import FaultPlan
from repro.workload.paper_example import Q1_TEXT, build_school_federation

SCHEMA = "BENCH_chaos/v1"
STRATEGIES = ("CA", "BL", "PL")
FULL_RATES = (0.25, 0.5, 0.75, 1.0)
QUICK_RATES = (0.5, 1.0)

#: Failover A/B sweep: loss probability applied to every
#: component->component link (the global site stays reachable, so each
#: skipped check has an isomeric copy a relay can still certify).
LOCALIZED = ("BL", "PL")
FULL_STORM_RATES = (0.5, 0.9, 0.97)
QUICK_STORM_RATES = (0.9, 0.97)
FAILOVER_SEED = 0
HEDGE_POLICY = "degrade:hedge=0.05"


#: Chaos window horizon, matched to Q1's simulated timescale (~80 ms)
#: so random windows actually land inside the execution.
CHAOS_HORIZON = 0.1


def _scenarios(sites, rates, seed):
    """(label, plan) pairs; the fault-free reference comes first."""
    yield "none", None
    for site in sites:
        yield f"loss:{site}", FaultPlan.single_site_loss(site, seed=seed)
    for rate in rates:
        yield f"chaos:{rate:g}", FaultPlan.chaos(
            sites, rate, seed=seed, horizon=CHAOS_HORIZON
        )


def _assert_fault_visibility(report, plan):
    """Every faulted run must surface its faults in the observability
    layer — the bench doubles as a smoke test for that contract."""
    events = {event.name for event in report.metrics.events}
    if "faults.plan" not in events:
        raise AssertionError("active plan left no faults.plan event")
    if plan.outages and not report.metrics.fault_windows:
        raise AssertionError("outages missing from metrics.fault_windows")
    snapshot = report.registry.snapshot()
    for name in ("work.retries", "work.timeouts", "work.messages_lost"):
        if name not in snapshot:
            raise AssertionError(f"counter {name} missing from registry")


def run_cell(strategy, plan, seed):
    """One (strategy, scenario) execution on a fresh federation."""
    engine = GlobalQueryEngine(build_school_federation())
    report = engine.execute(Q1_TEXT, strategy,
                            fault_plan=plan, fault_seed=seed)
    if plan is not None and plan.active:
        _assert_fault_visibility(report, plan)
    return {
        "certain": len(report.results.certain),
        "maybe": len(report.results.maybe),
        "total_s": round(report.total_time, 6),
        "response_s": round(report.response_time, 6),
        "retries": report.metrics.work.retries,
        "timeouts": report.metrics.work.timeouts,
        "complete": report.availability.complete,
        "availability": report.availability.summary(),
    }


def sweep(rates, seed, storm_rates):
    sites = sorted(build_school_federation().databases)
    rows = []
    reference = {}
    for label, plan in _scenarios(sites, rates, seed):
        for strategy in STRATEGIES:
            cell = run_cell(strategy, plan, seed)
            if label == "none":
                reference[strategy] = cell["certain"]
            base = reference[strategy]
            cell["completeness"] = (
                round(cell["certain"] / base, 4) if base else 1.0
            )
            rows.append({"scenario": label, "strategy": strategy, **cell})
    return {
        "schema": SCHEMA,
        "query": Q1_TEXT,
        "seed": seed,
        "sites": sites,
        "rows": rows,
        "failover": failover_sweep(sites, storm_rates),
    }


# --- failover A/B sweep ------------------------------------------------------


def _storm_plan(sites, loss):
    """All component->component links at *loss*; global links clean."""
    spec = ",".join(
        f"link:{src}>{dst}:loss{loss:g}"
        for src in sites
        for dst in sites
        if src != dst
    )
    return FaultPlan.from_spec(spec)


def _digest(report):
    """Stable fingerprint of the answer (certain + maybe rows)."""
    payload = json.dumps(report.results.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_failover_cell(strategy, plan, mode):
    """One (strategy, storm, failover-mode) execution."""
    engine = GlobalQueryEngine(build_school_federation())
    report = engine.execute(
        Q1_TEXT,
        strategy,
        fault_plan=plan,
        fault_seed=FAILOVER_SEED,
        failover=mode != "off",
        policy=HEDGE_POLICY if mode == "hedge" else None,
    )
    avail = report.availability
    return {
        "mode": mode,
        "certain": len(report.results.certain),
        "maybe": len(report.results.maybe),
        "answer_digest": _digest(report),
        "checks_skipped": avail.checks_skipped,
        "checks_failed_over": avail.checks_failed_over,
        "hedges": avail.hedges,
        "hedges_won": avail.hedges_won,
        "fully_recovered": avail.fully_recovered,
        "contacts_suppressed": avail.contacts_suppressed,
        "total_s": round(report.total_time, 6),
        "response_s": round(report.response_time, 6),
        "availability": avail.summary(),
    }


def failover_sweep(sites, storm_rates):
    rows = []
    baseline_digest = {}
    for strategy in LOCALIZED:
        engine = GlobalQueryEngine(build_school_federation())
        clean = engine.execute(Q1_TEXT, strategy)
        baseline_digest[strategy] = _digest(clean)
        rows.append({
            "loss": 0.0,
            "strategy": strategy,
            **run_failover_cell(strategy, None, "on"),
        })
    for loss in storm_rates:
        plan = _storm_plan(sites, loss)
        for strategy in LOCALIZED:
            for mode in ("off", "on", "hedge"):
                rows.append({
                    "loss": loss,
                    "strategy": strategy,
                    **run_failover_cell(strategy, plan, mode),
                })
    _assert_failover_contract(rows, baseline_digest)
    return {
        "seed": FAILOVER_SEED,
        "rates": list(storm_rates),
        "hedge_policy": HEDGE_POLICY,
        "baseline_digest": baseline_digest,
        "rows": rows,
    }


def _assert_failover_contract(rows, baseline_digest):
    """The acceptance contract of replica failover, cell by cell."""
    by_key = {(r["loss"], r["strategy"], r["mode"]): r for r in rows}
    strict_gain = False
    for (loss, strategy, mode), row in by_key.items():
        if mode == "off" or loss == 0.0:
            continue
        off = by_key[(loss, strategy, "off")]
        if row["certain"] < off["certain"]:
            raise AssertionError(
                f"loss{loss:g}/{strategy}/{mode}: failover certified "
                f"{row['certain']} < {off['certain']} without it"
            )
        if mode == "on" and off["checks_skipped"] > 0:
            # Every skipped check has a live isomeric copy (only
            # component links are down), so failover must win ground.
            if row["certain"] > off["certain"]:
                strict_gain = True
        if row["fully_recovered"]:
            expected = baseline_digest[strategy]
            if row["answer_digest"] != expected:
                raise AssertionError(
                    f"loss{loss:g}/{strategy}/{mode}: recovered answer "
                    f"digest {row['answer_digest']} != fault-free "
                    f"{expected}"
                )
        if mode == "hedge":
            on = by_key[(loss, strategy, "on")]
            if row["answer_digest"] != on["answer_digest"]:
                raise AssertionError(
                    f"loss{loss:g}/{strategy}: hedging changed the "
                    "answer"
                )
    if not strict_gain:
        raise AssertionError(
            "no storm cell showed failover strictly beating eager "
            "demotion — the sweep exercises nothing"
        )


def render(result):
    headers = ["scenario", "strategy", "certain", "maybe", "completeness",
               "total (s)", "response (s)", "retries", "availability"]
    table_rows = [
        [row["scenario"], row["strategy"], str(row["certain"]),
         str(row["maybe"]), f"{row['completeness']:.2f}",
         f"{row['total_s']:.3f}", f"{row['response_s']:.3f}",
         str(row["retries"]), row["availability"]]
        for row in result["rows"]
    ]
    text = format_table(headers, table_rows)
    headers = ["link loss", "strategy", "mode", "certain", "maybe",
               "skipped", "failover", "hedges", "recovered",
               "response (s)"]
    table_rows = [
        [f"{row['loss']:g}", row["strategy"], row["mode"],
         str(row["certain"]), str(row["maybe"]),
         str(row["checks_skipped"]), str(row["checks_failed_over"]),
         f"{row['hedges_won']}/{row['hedges']}",
         "yes" if row["fully_recovered"] else "no",
         f"{row['response_s']:.3f}"]
        for row in result["failover"]["rows"]
    ]
    return text + "\n\nfailover A/B (component-link storms):\n" + \
        format_table(headers, table_rows)


#: Per-row fields compared by --check (all deterministic; the chaos and
#: failover sweeps carry no wall-clock fields at all).
CHAOS_CHECKED = ("certain", "maybe", "completeness", "total_s",
                 "response_s", "retries", "availability")
FAILOVER_CHECKED = ("certain", "maybe", "answer_digest", "checks_skipped",
                    "checks_failed_over", "hedges", "hedges_won",
                    "fully_recovered", "contacts_suppressed", "total_s",
                    "response_s")


def check_against(result, baseline_path):
    """Deterministic-field diffs vs the committed baseline.

    Compares rows present in both runs (the CI quick sweep is a subset
    of the committed full sweep).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    diffs = []

    def compare(kind, rows, base_rows, key_fields, checked):
        base_by_key = {
            tuple(r[k] for k in key_fields): r for r in base_rows
        }
        for row in rows:
            key = tuple(row[k] for k in key_fields)
            base = base_by_key.get(key)
            if base is None:
                continue
            for fname in checked:
                if row[fname] != base[fname]:
                    diffs.append(
                        f"{kind} {'/'.join(str(k) for k in key)}."
                        f"{fname}: {base[fname]} -> {row[fname]}"
                    )

    compare("chaos", result["rows"], baseline["rows"],
            ("scenario", "strategy"), CHAOS_CHECKED)
    compare("failover", result["failover"]["rows"],
            baseline["failover"]["rows"],
            ("loss", "strategy", "mode"), FAILOVER_CHECKED)
    return diffs


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer chaos rates (CI smoke)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rates", default="",
                        help="comma-separated chaos rates, e.g. 0.25,0.5")
    parser.add_argument("--json", default="", dest="json_path",
                        help="also write the machine-readable result here")
    parser.add_argument("--check", default="", dest="check_path",
                        help="fail when deterministic fields differ from "
                             "this committed baseline JSON")
    args = parser.parse_args(argv)

    if args.rates:
        rates = tuple(float(r) for r in args.rates.split(","))
    else:
        rates = QUICK_RATES if args.quick else FULL_RATES
    storm_rates = QUICK_STORM_RATES if args.quick else FULL_STORM_RATES

    result = sweep(rates, args.seed, storm_rates)
    text = render(result)
    print(text)
    write_result("chaos", text)

    # The acceptance contrast: under any single-site loss CA certifies
    # strictly less than the localized strategies do.
    by_key = {(r["scenario"], r["strategy"]): r for r in result["rows"]}
    degraded = [s for s in result["sites"]
                if not by_key[(f"loss:{s}", "CA")]["complete"]]
    for site in degraded:
        ca = by_key[(f"loss:{site}", "CA")]["certain"]
        bl = by_key[(f"loss:{site}", "BL")]["certain"]
        pl = by_key[(f"loss:{site}", "PL")]["certain"]
        if not (ca <= bl and ca <= pl):
            raise AssertionError(
                f"loss:{site}: CA certified {ca} > localized ({bl}/{pl})"
            )

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")

    if args.check_path:
        diffs = check_against(result, args.check_path)
        if diffs:
            print(f"\nBASELINE REGRESSION vs {args.check_path}:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(f"\nbaseline check OK vs {args.check_path}")
    return 0


def test_chaos_sweep(benchmark):
    """pytest-benchmark entry point (quick rates)."""
    from bench_common import run_once

    result = run_once(
        benchmark, lambda: sweep(QUICK_RATES, seed=7,
                                 storm_rates=QUICK_STORM_RATES)
    )
    write_result("chaos", render(result))
    losses = [r for r in result["rows"] if r["scenario"].startswith("loss:")]
    assert any(not r["complete"] for r in losses)
    # CA never certifies more than BL/PL under a single-site loss.
    by_key = {(r["scenario"], r["strategy"]): r for r in result["rows"]}
    for site in result["sites"]:
        assert (by_key[(f"loss:{site}", "CA")]["certain"]
                <= by_key[(f"loss:{site}", "BL")]["certain"])
    # The failover contract already ran inside sweep(); spot-check that
    # at least one storm cell fully recovered the fault-free answer.
    fo_rows = result["failover"]["rows"]
    assert any(r["fully_recovered"] for r in fo_rows if r["mode"] == "on")


if __name__ == "__main__":
    sys.exit(main())
