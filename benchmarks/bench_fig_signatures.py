"""Extension figure: the signature variants across the Figure 10 sweep.

The paper's Section 5 proposes object signatures for "reducing the
amount of data transfer" in the localized approaches, and Table 2
already carries the filter's selectivity (R_ss) — so this is the figure
the authors sketched but never plotted: BL vs BL-S and PL vs PL-S total
execution time as the number of component databases (and with it the
volume of assistant checking) grows.
"""

import random

from bench_common import SAMPLES, run_once, write_result

from repro.analytic.model import AnalyticModel
from repro.bench.reporting import format_table
from repro.workload.params import sample_params

DB_COUNTS = (2, 4, 6, 8)
VARIANTS = ("BL", "BL-S", "PL", "PL-S")


def sweep():
    points = []
    for n_dbs in DB_COUNTS:
        totals = {name: 0.0 for name in VARIANTS}
        net = {name: 0.0 for name in VARIANTS}
        rng = random.Random(55)
        samples = max(30, SAMPLES // 2)
        for _ in range(samples):
            params = sample_params(rng, n_dbs=n_dbs)
            model = AnalyticModel(params)
            for name in VARIANTS:
                outcome = model.evaluate(name)
                totals[name] += outcome.total_time / samples
                net[name] += outcome.work.bytes_network / samples
        points.append((n_dbs, totals, net))
    return points


def test_signature_variants_figure(benchmark):
    points = run_once(benchmark, sweep)

    rows = [
        [str(n_dbs)]
        + [f"{totals[name]:.2f}" for name in VARIANTS]
        + [f"{net[name] / 1024:.0f}" for name in VARIANTS]
        for n_dbs, totals, net in points
    ]
    text = format_table(
        ["N_db"]
        + [f"{name} total(s)" for name in VARIANTS]
        + [f"{name} net(KiB)" for name in VARIANTS],
        rows,
    )
    write_result("figure_signatures", text)

    for n_dbs, totals, net in points:
        # Signatures never hurt total time or transfer volume...
        assert totals["BL-S"] <= totals["BL"] * 1.001
        assert totals["PL-S"] <= totals["PL"] * 1.001
        assert net["BL-S"] <= net["BL"]
        assert net["PL-S"] <= net["PL"]
    # ...and the PL-S saving grows with N_db (more checking to filter).
    first, last = points[0], points[-1]
    saving_first = first[1]["PL"] - first[1]["PL-S"]
    saving_last = last[1]["PL"] - last[1]["PL-S"]
    assert saving_last > saving_first
