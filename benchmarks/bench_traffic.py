"""Traffic bench: concurrent workload throughput + latency percentiles.

Drives the :mod:`repro.traffic` engine over a set of scenarios — N
seeded workers interleaving a weighted point/scan/paper query mix
through the simulation kernel against one shared federation, behind an
admission gate — and reports, per scenario:

* throughput (completed queries per simulated second) and the p50/p95/
  p99 submission-to-finish latency on the traffic clock;
* shed count (admission-control refusals) and gate queueing totals;
* shared-cache traffic: per-run hit/miss totals and cross-worker hits;
* serial verification: every distinct executed query is re-run serially
  on a fresh engine and its answer digest must match the interleaved
  run's (``violations`` must be 0).

Everything reported is a pure function of the scenario seeds: the JSON
output carries no wall-clock and is byte-identical across runs.  CI
runs the quick scenarios twice, diffs the two JSON files, and checks
against the committed baseline::

    PYTHONPATH=src python benchmarks/bench_traffic.py --quick \
        --json BENCH_traffic.json --check benchmarks/results/BENCH_traffic.json

Ad-hoc runs (``--workers 64 --queries 2000 --seed 1996``) execute one
scenario with those knobs (--queries is the *total* across workers).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import make_workload, write_result

from repro.bench.reporting import format_table
from repro.traffic import AdmissionControl, TrafficEngine, default_mix

SCHEMA = "BENCH_traffic/v1"

#: Named scenarios.  ``queries`` is the total across all workers.  The
#: quick pair is a strict subset of the full set, so the CI smoke run
#: checks against the same committed baseline.
SCENARIOS = {
    "smooth-4": dict(
        workload_seed=1996, workers=4, queries=96, seed=101,
        strategy="BL", max_in_flight=8, queue_depth=32,
    ),
    "contended-8": dict(
        workload_seed=1996, workers=8, queries=128, seed=202,
        strategy="BL", max_in_flight=2, queue_depth=4,
    ),
    "signatures-8": dict(
        workload_seed=304, workers=8, queries=160, seed=303,
        strategy="BL-S", max_in_flight=4, queue_depth=16,
    ),
    "fleet-64": dict(
        workload_seed=1996, workers=64, queries=2000, seed=1996,
        strategy="BL", max_in_flight=8, queue_depth=32,
    ),
}
QUICK_NAMES = ("smooth-4", "contended-8")
FULL_NAMES = tuple(SCENARIOS)

#: Fields compared by --check (all deterministic; there is no wall
#: clock anywhere in the JSON).
CHECKED_FIELDS = (
    "completed",
    "shed",
    "makespan_s",
    "throughput_qps",
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "cache_hits",
    "cache_misses",
    "shared_hits",
    "verified",
)


def run_scenario(name: str, spec: dict, verify: bool = True) -> dict:
    """One scenario on a fresh federation; returns the JSON cell."""
    workload = make_workload(spec["workload_seed"])
    engine = TrafficEngine(
        workload.system,
        default_mix(workload),
        workers=spec["workers"],
        total_queries=spec["queries"],
        seed=spec["seed"],
        strategy=spec["strategy"],
        admission=AdmissionControl(
            max_in_flight=spec["max_in_flight"],
            queue_depth=spec["queue_depth"],
        ),
    )
    start = time.perf_counter()
    report = engine.run(verify=verify)
    wall_s = time.perf_counter() - start
    _assert_contract(name, spec, report)
    print(f"# {name}: wall {wall_s:.1f}s", file=sys.stderr)
    cell = {"scenario": name, "workload_seed": spec["workload_seed"]}
    cell.update(report.to_dict())
    return cell


def _assert_contract(name: str, spec: dict, report) -> None:
    """Invariants every scenario must satisfy."""
    if report.violations:
        raise AssertionError(
            f"{name}: {len(report.violations)} serial-verification "
            f"violation(s), e.g. {report.violations[0]}"
        )
    if report.completed + report.shed != spec["queries"]:
        raise AssertionError(
            f"{name}: {report.completed} completed + {report.shed} shed "
            f"!= {spec['queries']} submitted"
        )
    if report.completed != report.verified:
        raise AssertionError(
            f"{name}: verified {report.verified} of {report.completed} "
            "completed queries"
        )
    if report.completed and report.throughput_qps <= 0:
        raise AssertionError(f"{name}: no throughput reported")
    if report.shed != report.gate_rejected:
        raise AssertionError(
            f"{name}: shed records ({report.shed}) disagree with the "
            f"gate's rejection count ({report.gate_rejected})"
        )
    per_worker_hits = sum(w.cache_hits for w in report.per_worker)
    per_worker_misses = sum(w.cache_misses for w in report.per_worker)
    if (per_worker_hits, per_worker_misses) != (
        report.cache_hits, report.cache_misses
    ):
        raise AssertionError(
            f"{name}: per-worker cache deltas "
            f"({per_worker_hits}/{per_worker_misses}) do not sum to the "
            f"global delta ({report.cache_hits}/{report.cache_misses})"
        )


def sweep(names, verify: bool = True) -> dict:
    cells = [
        run_scenario(name, SCENARIOS[name], verify=verify)
        for name in names
    ]
    contended = [c for c in cells if c["scenario"] == "contended-8"]
    if contended and contended[0]["shed"] == 0:
        raise AssertionError(
            "contended-8 shed nothing: admission control is not engaging"
        )
    return {"schema": SCHEMA, "scenarios": list(names), "cells": cells}


def check_against(result: dict, baseline_path: str) -> list:
    """Deterministic-field diffs vs the committed baseline.

    Compares the scenarios present in both runs (the CI quick set is a
    subset of the committed full set)."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base_by_name = {c["scenario"]: c for c in baseline["cells"]}
    diffs = []
    for cell in result["cells"]:
        base = base_by_name.get(cell["scenario"])
        if base is None:
            continue
        for fname in CHECKED_FIELDS:
            if cell[fname] != base[fname]:
                diffs.append(
                    f"{cell['scenario']}.{fname}: "
                    f"{base[fname]} -> {cell[fname]}"
                )
    return diffs


def render(result: dict) -> str:
    headers = [
        "scenario", "workers", "queries", "done", "shed", "q/s",
        "p50 (s)", "p95 (s)", "p99 (s)", "hits", "shared",
    ]
    rows = [
        [
            c["scenario"], str(c["workers"]), str(c["queries_total"]),
            str(c["completed"]), str(c["shed"]),
            f"{c['throughput_qps']:.2f}",
            f"{c['latency_p50_s']:.3f}", f"{c['latency_p95_s']:.3f}",
            f"{c['latency_p99_s']:.3f}",
            str(c["cache_hits"]), str(c["shared_hits"]),
        ]
        for c in result["cells"]
    ]
    return format_table(headers, rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="quick scenario pair (CI smoke)")
    parser.add_argument("--workers", type=int, default=None,
                        help="ad-hoc run: worker count")
    parser.add_argument("--queries", type=int, default=None,
                        help="ad-hoc run: total queries across workers")
    parser.add_argument("--seed", type=int, default=1996,
                        help="ad-hoc run: root traffic seed")
    parser.add_argument("--strategy", default="BL",
                        help="ad-hoc run: execution strategy")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip serial answer verification")
    parser.add_argument("--json", default="", dest="json_path",
                        help="write the machine-readable result here")
    parser.add_argument("--check", default="", dest="check_path",
                        help="fail when deterministic fields differ from "
                             "this committed baseline JSON")
    args = parser.parse_args(argv)

    verify = not args.no_verify
    if args.workers is not None or args.queries is not None:
        workers = args.workers or 8
        queries = args.queries or 50 * workers
        name = f"adhoc-{workers}x{queries}"
        spec = dict(
            workload_seed=1996, workers=workers, queries=queries,
            seed=args.seed, strategy=args.strategy,
            max_in_flight=8, queue_depth=32,
        )
        result = {
            "schema": SCHEMA,
            "scenarios": [name],
            "cells": [run_scenario(name, spec, verify=verify)],
        }
    else:
        names = QUICK_NAMES if args.quick else FULL_NAMES
        result = sweep(names, verify=verify)

    text = render(result)
    print(text)
    write_result("traffic", text)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")

    if args.check_path:
        diffs = check_against(result, args.check_path)
        if diffs:
            print(f"\nBASELINE REGRESSION vs {args.check_path}:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(f"\nbaseline check OK vs {args.check_path}")
    return 0


def test_traffic_sweep(benchmark):
    """pytest-benchmark entry point (quick scenarios)."""
    from bench_common import run_once

    result = run_once(benchmark, lambda: sweep(QUICK_NAMES))
    write_result("traffic", render(result))
    for cell in result["cells"]:
        assert cell["violations"] == []


if __name__ == "__main__":
    sys.exit(main())
