"""Evolution bench: membership/schema churn under concurrent traffic.

Drives the :mod:`repro.traffic` engine with an active
:class:`~repro.evolution.plan.EvolutionPlan` — sites joining and
leaving, attributes renamed and dropped, all on the traffic clock —
and sweeps the propagation lag to show how the consistency contract
degrades answers instead of corrupting them.  Per scenario:

* throughput and p50/p95/p99 latency alongside the churn (epoch
  transitions cost schema re-integration and a federation-wide
  decomposition-cache flush);
* the straddle rate: what fraction of queries executed while a
  propagation window was open (annotated, possibly demoted — never a
  wrong certain answer);
* mean propagation lag per window and the final schema epoch;
* serial verification: every interleaved answer is replayed against a
  fresh federation stepped to the same epoch (``violations`` must
  be 0).

Everything reported is a pure function of the scenario seeds; CI runs
the quick scenarios twice, diffs the JSON byte-for-byte, and checks
against the committed baseline::

    PYTHONPATH=src python benchmarks/bench_evolution.py --quick \
        --json BENCH_evolution.json \
        --check benchmarks/results/BENCH_evolution.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import make_workload, write_result

from repro.bench.reporting import format_table
from repro.evolution import EvolutionPlan, mix_referenced_attributes, resolve_auto
from repro.traffic import TrafficEngine, default_mix

SCHEMA = "BENCH_evolution/v1"

#: The churn sweep.  ``spec`` is the evolution plan (auto targets are
#: resolved against the generated federation, protecting every
#: attribute the traffic mix references); ``lag`` is the per-site
#: propagation lag, the knob that widens the straddling windows.
SCENARIOS = {
    "calm-lag50ms": dict(
        workload_seed=1996, workers=8, queries=64, seed=11, strategy="BL",
        spec="join@2,rename@5,drop@8", lag=0.05,
    ),
    "churn-lag1s": dict(
        workload_seed=1996, workers=8, queries=64, seed=11, strategy="BL",
        spec="join@2,rename@5,drop@8", lag=1.0,
    ),
    "storm-lag4s": dict(
        workload_seed=1996, workers=16, queries=96, seed=23, strategy="BL",
        spec="join@1,add@3,rename@5,drop@7,leave@9", lag=4.0,
    ),
    # The acceptance scenario: a join, a leave and a rename all firing
    # mid-run under 64 workers.  The join goes first so the federation
    # is dense enough for a feasible leave (at this scale every seed
    # site is the sole definer of some referenced attribute).
    "fleet-64": dict(
        workload_seed=1996, workers=64, queries=512, seed=1996,
        strategy="BL", spec="join@5,leave@30,rename@60", lag=2.0,
        min_transitions=6,
    ),
}
QUICK_NAMES = ("calm-lag50ms", "churn-lag1s")
FULL_NAMES = tuple(SCENARIOS)

#: Fields compared by --check (all deterministic).
CHECKED_FIELDS = (
    "completed",
    "shed",
    "makespan_s",
    "throughput_qps",
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "verified",
)
#: Deterministic subfields of the report's ``evolution`` block.
CHECKED_EVOLUTION_FIELDS = (
    "plan",
    "transitions",
    "final_epoch",
    "queries_straddled",
    "propagation_lag_mean_s",
)


def build_plan(spec: dict, workload, mix) -> EvolutionPlan:
    plan = EvolutionPlan.from_spec(
        spec["spec"], seed=spec["seed"], propagation_lag_s=spec["lag"]
    )
    resolved = resolve_auto(
        plan, workload.system, workload.query,
        extra_referenced=mix_referenced_attributes(mix),
    )
    if not resolved.active:
        raise AssertionError(f"no feasible evolution events for {spec}")
    return resolved


def run_scenario(name: str, spec: dict, verify: bool = True) -> dict:
    """One churned scenario on a fresh federation; returns the JSON cell."""
    workload = make_workload(spec["workload_seed"])
    mix = default_mix(workload)
    plan = build_plan(spec, workload, mix)
    engine = TrafficEngine(
        workload.system,
        mix,
        workers=spec["workers"],
        total_queries=spec["queries"],
        seed=spec["seed"],
        strategy=spec["strategy"],
        evolution=plan,
        system_factory=lambda: make_workload(spec["workload_seed"]).system,
    )
    start = time.perf_counter()
    report = engine.run(verify=verify)
    wall_s = time.perf_counter() - start
    _assert_contract(name, spec, report)
    print(f"# {name}: wall {wall_s:.1f}s", file=sys.stderr)
    cell = {
        "scenario": name,
        "workload_seed": spec["workload_seed"],
        "propagation_lag_s": spec["lag"],
        "straddle_rate": round(
            report.queries_straddled / max(1, report.completed), 6
        ),
    }
    cell.update(report.to_dict())
    return cell


def _assert_contract(name: str, spec: dict, report) -> None:
    """Invariants every churned scenario must satisfy."""
    if report.violations:
        raise AssertionError(
            f"{name}: {len(report.violations)} serial-verification "
            f"violation(s), e.g. {report.violations[0]}"
        )
    if report.completed != report.verified:
        raise AssertionError(
            f"{name}: verified {report.verified} of {report.completed} "
            "completed queries"
        )
    expected = 2 * len(
        EvolutionPlan.from_spec(spec["spec"]).events
    )
    if report.evo_transitions > expected:
        raise AssertionError(
            f"{name}: {report.evo_transitions} transitions from "
            f"{expected // 2} planned events"
        )
    if report.evo_transitions == 0:
        raise AssertionError(f"{name}: evolution plan never fired")
    if report.evo_transitions < spec.get("min_transitions", 0):
        raise AssertionError(
            f"{name}: only {report.evo_transitions} transitions applied, "
            f"expected at least {spec['min_transitions']}"
        )
    if report.final_epoch != report.evo_transitions:
        raise AssertionError(
            f"{name}: final epoch {report.final_epoch} != "
            f"{report.evo_transitions} applied transitions"
        )


def sweep(names, verify: bool = True) -> dict:
    cells = [
        run_scenario(name, SCENARIOS[name], verify=verify)
        for name in names
    ]
    # The sweep's point: wider windows straddle more queries.
    by_name = {c["scenario"]: c for c in cells}
    if "calm-lag50ms" in by_name and "churn-lag1s" in by_name:
        calm = by_name["calm-lag50ms"]["straddle_rate"]
        churn = by_name["churn-lag1s"]["straddle_rate"]
        if churn < calm:
            raise AssertionError(
                f"straddle rate fell as windows widened "
                f"({calm} -> {churn})"
            )
    return {"schema": SCHEMA, "scenarios": list(names), "cells": cells}


def check_against(result: dict, baseline_path: str) -> list:
    """Deterministic-field diffs vs the committed baseline."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base_by_name = {c["scenario"]: c for c in baseline["cells"]}
    diffs = []
    for cell in result["cells"]:
        base = base_by_name.get(cell["scenario"])
        if base is None:
            continue
        for fname in CHECKED_FIELDS:
            if cell[fname] != base[fname]:
                diffs.append(
                    f"{cell['scenario']}.{fname}: "
                    f"{base[fname]} -> {cell[fname]}"
                )
        for fname in CHECKED_EVOLUTION_FIELDS:
            if cell["evolution"][fname] != base["evolution"][fname]:
                diffs.append(
                    f"{cell['scenario']}.evolution.{fname}: "
                    f"{base['evolution'][fname]} -> "
                    f"{cell['evolution'][fname]}"
                )
    return diffs


def render(result: dict) -> str:
    headers = [
        "scenario", "workers", "done", "lag (s)", "epochs",
        "straddled", "rate", "q/s", "p95 (s)", "verified",
    ]
    rows = [
        [
            c["scenario"], str(c["workers"]), str(c["completed"]),
            f"{c['propagation_lag_s']:.2f}",
            str(c["evolution"]["final_epoch"]),
            str(c["evolution"]["queries_straddled"]),
            f"{c['straddle_rate']:.3f}",
            f"{c['throughput_qps']:.2f}",
            f"{c['latency_p95_s']:.3f}",
            str(c["verified"]),
        ]
        for c in result["cells"]
    ]
    return format_table(headers, rows)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="quick scenario pair (CI smoke)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip serial answer verification")
    parser.add_argument("--json", default="", dest="json_path",
                        help="write the machine-readable result here")
    parser.add_argument("--check", default="", dest="check_path",
                        help="fail when deterministic fields differ from "
                             "this committed baseline JSON")
    args = parser.parse_args(argv)

    names = QUICK_NAMES if args.quick else FULL_NAMES
    result = sweep(names, verify=not args.no_verify)

    text = render(result)
    print(text)
    write_result("evolution", text)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")

    if args.check_path:
        diffs = check_against(result, args.check_path)
        if diffs:
            print(f"\nBASELINE REGRESSION vs {args.check_path}:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(f"\nbaseline check OK vs {args.check_path}")
    return 0


def test_evolution_sweep(benchmark):
    """pytest-benchmark entry point (quick scenarios)."""
    from bench_common import run_once

    result = run_once(benchmark, lambda: sweep(QUICK_NAMES))
    write_result("evolution", render(result))
    for cell in result["cells"]:
        assert cell["violations"] == []


if __name__ == "__main__":
    sys.exit(main())
