"""Hot-path bench: batched check dispatch, cache warmth, columnar kernels.

Sweeps generated federations over an (N_db x extent scale) grid and, per
strategy, runs each query

* **batched** (the default wire protocol: one check request/reply pair
  per ``(src, dst)`` link),
* **batched again** (same engine — measures mapping-index/decomposition
  cache hits on a repeated query),
* **unbatched** (``batch_checks=False``: the historical
  one-message-pair-per-request protocol), and
* **row path** (``columnar=False``: per-object evaluation instead of the
  columnar extent kernels),

recording network messages, bytes, simulated total/response time, cache
traffic and wall-clock.  The bench enforces the batching and columnar
contracts:

* answers are byte-identical between the batched and unbatched runs
  *and* between the columnar and row paths (same ResultSet JSON, cell by
  cell);
* batching never sends more messages, and strictly fewer in aggregate
  for every localized strategy;
* a repeated query hits the caches (warm hit rate > 0);
* warm local evaluation over the columnar kernels is at least 5x faster
  than the row path at the sweep's largest grid cell (the
  ``local_eval`` section records the wall-clock for every cell).

Runs standalone; CI runs the quick grid and diffs against the committed
baseline::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \
        --json BENCH_hotpath.json --check benchmarks/results/BENCH_hotpath.json

The JSON output is fully determined by the grid: no timestamps and no
dict-order dependence.  ``wall_s`` fields and the ``local_eval`` timing
section are informational only and are ignored by ``--check``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import make_workload, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine

SCHEMA = "BENCH_hotpath/v2"
STRATEGIES = ("CA", "BL", "PL", "BL-S", "PL-S")
LOCALIZED = ("BL", "PL", "BL-S", "PL-S")

#: Workload seed per federation size.  Chosen so every drawn parameter
#: set actually produces missing data (phase-O check traffic) — a
#: federation without unsolved items exercises neither batching nor the
#: chase path.
WORKLOAD_SEEDS = {3: 103, 4: 304, 5: 105}

FULL_GRID = tuple(
    (n_db, scale) for n_db in (3, 4, 5) for scale in (0.03, 0.06)
)
QUICK_GRID = ((3, 0.03), (4, 0.03))

#: Fields compared by --check (everything deterministic; wall_s is not).
CHECKED_FIELDS = (
    "answer_digest",
    "row_path_digest",
    "messages_batched",
    "messages_unbatched",
    "bytes_batched",
    "bytes_unbatched",
    "total_s",
    "response_s",
    "warm_cache_hits",
    "warm_cache_misses",
)

#: Minimum warm local-eval speedup (columnar vs row path) the sweep's
#: largest grid cell must reach.
MIN_COLUMNAR_SPEEDUP = 5.0


def _digest(report) -> str:
    """Stable fingerprint of the answer (certain + maybe rows)."""
    payload = json.dumps(report.results.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_cell(n_db: int, scale: float, strategy: str) -> dict:
    """One (workload, strategy) cell on a fresh federation."""
    workload = make_workload(WORKLOAD_SEEDS[n_db], scale, n_dbs=n_db)
    engine = GlobalQueryEngine(workload.system)

    start = time.perf_counter()
    cold = engine.execute(workload.query, strategy)
    wall_s = time.perf_counter() - start
    warm = engine.execute(workload.query, strategy)
    unbatched = engine.execute(
        workload.query, strategy, batch_checks=False
    )
    row_path = engine.execute(
        workload.query, strategy, engine.options.with_(columnar=False)
    )

    cold_digest = _digest(cold)
    if _digest(unbatched) != cold_digest:
        raise AssertionError(
            f"{strategy} ndb{n_db} scale{scale:g}: batched and unbatched "
            "answers differ"
        )
    if _digest(warm) != cold_digest:
        raise AssertionError(
            f"{strategy} ndb{n_db} scale{scale:g}: repeated query changed "
            "the answer"
        )
    row_path_digest = _digest(row_path)
    if row_path_digest != cold_digest:
        raise AssertionError(
            f"{strategy} ndb{n_db} scale{scale:g}: columnar and row-path "
            "answers differ"
        )
    batched_msgs = cold.metrics.work.messages
    unbatched_msgs = unbatched.metrics.work.messages
    if batched_msgs > unbatched_msgs:
        raise AssertionError(
            f"{strategy} ndb{n_db} scale{scale:g}: batching sent more "
            f"messages ({batched_msgs} > {unbatched_msgs})"
        )
    warm_work = warm.metrics.work
    return {
        "workload": f"ndb{n_db}-scale{scale:g}",
        "n_db": n_db,
        "scale": scale,
        "strategy": strategy,
        "answer_digest": cold_digest,
        "row_path_digest": row_path_digest,
        "certain": len(cold.results.certain),
        "maybe": len(cold.results.maybe),
        "messages_batched": batched_msgs,
        "messages_unbatched": unbatched_msgs,
        "bytes_batched": cold.metrics.work.bytes_network,
        "bytes_unbatched": unbatched.metrics.work.bytes_network,
        "total_s": round(cold.total_time, 6),
        "response_s": round(cold.response_time, 6),
        "cold_cache_hits": cold.metrics.work.cache_hits,
        "cold_cache_misses": cold.metrics.work.cache_misses,
        "warm_cache_hits": warm_work.cache_hits,
        "warm_cache_misses": warm_work.cache_misses,
        "warm_cache_hit_rate": round(warm_work.cache_hit_rate, 4),
        "wall_s": round(wall_s, 6),
    }


def measure_local_eval(n_db: int, scale: float, reps: int = 3) -> dict:
    """Warm local-evaluation wall-clock: columnar kernels vs row path.

    Times repeated :meth:`ComponentDatabase.execute_local` calls over
    the workload's decomposed local queries — the loop the columnar
    extent exists for — after one warm-up pass on each path.  Timing
    only; answer equality is enforced per cell by :func:`run_cell` and
    object-by-object by the test suite.
    """
    workload = make_workload(WORKLOAD_SEEDS[n_db], scale, n_dbs=n_db)
    system = workload.system
    decomp = system.decompose(workload.query)
    pairs = [
        (system.db(lq.db_name), lq)
        for lq in decomp.local_queries.values()
    ]
    for db, lq in pairs:
        db.execute_local(lq, columnar=True)
        db.execute_local(lq, columnar=False)
    start = time.perf_counter()
    for _ in range(reps):
        for db, lq in pairs:
            db.execute_local(lq, columnar=True)
    columnar_s = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        for db, lq in pairs:
            db.execute_local(lq, columnar=False)
    row_s = (time.perf_counter() - start) / reps
    return {
        "workload": f"ndb{n_db}-scale{scale:g}",
        "n_db": n_db,
        "scale": scale,
        "columnar_wall_s": round(columnar_s, 6),
        "row_wall_s": round(row_s, 6),
        "speedup": round(row_s / columnar_s, 2),
    }


def sweep(grid) -> dict:
    cells = []
    for n_db, scale in grid:
        for strategy in STRATEGIES:
            cells.append(run_cell(n_db, scale, strategy))
    local_eval = [measure_local_eval(n_db, scale) for n_db, scale in grid]
    _assert_contract(cells, local_eval)
    return {
        "schema": SCHEMA,
        "seeds": {str(k): v for k, v in sorted(WORKLOAD_SEEDS.items())},
        "grid": [{"n_db": n, "scale": s} for n, s in grid],
        "cells": cells,
        "local_eval": local_eval,
    }


def _assert_contract(cells, local_eval) -> None:
    """Aggregate guarantees the per-cell checks cannot express."""
    largest = max(local_eval, key=lambda e: (e["n_db"], e["scale"]))
    if largest["speedup"] < MIN_COLUMNAR_SPEEDUP:
        raise AssertionError(
            f"{largest['workload']}: columnar local eval only "
            f"{largest['speedup']}x faster than the row path "
            f"(contract: >= {MIN_COLUMNAR_SPEEDUP}x at the largest cell)"
        )
    for strategy in LOCALIZED:
        batched = sum(
            c["messages_batched"] for c in cells
            if c["strategy"] == strategy
        )
        unbatched = sum(
            c["messages_unbatched"] for c in cells
            if c["strategy"] == strategy
        )
        if not batched < unbatched:
            raise AssertionError(
                f"{strategy}: batching did not strictly reduce messages "
                f"across the sweep ({batched} vs {unbatched})"
            )
    warm_lookups = [
        c for c in cells
        if c["warm_cache_hits"] + c["warm_cache_misses"] > 0
    ]
    if not warm_lookups:
        raise AssertionError("no cell recorded any cache traffic")
    for cell in warm_lookups:
        if cell["warm_cache_hit_rate"] <= 0.0:
            raise AssertionError(
                f"{cell['strategy']} {cell['workload']}: repeated query "
                "missed every cache"
            )


def check_against(result: dict, baseline_path: str) -> list:
    """Deterministic-field diffs vs the committed baseline.

    Compares the cells present in both runs (the CI quick grid is a
    subset of the committed full grid); wall-clock is ignored.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base_by_key = {
        (c["workload"], c["strategy"]): c for c in baseline["cells"]
    }
    diffs = []
    for cell in result["cells"]:
        key = (cell["workload"], cell["strategy"])
        base = base_by_key.get(key)
        if base is None:
            continue
        for fname in CHECKED_FIELDS:
            if cell[fname] != base[fname]:
                diffs.append(
                    f"{key[0]}/{key[1]}.{fname}: "
                    f"{base[fname]} -> {cell[fname]}"
                )
    return diffs


def render(result: dict) -> str:
    headers = ["workload", "strategy", "msgs (batched)", "msgs (unbatched)",
               "net bytes", "total (s)", "response (s)", "warm hit rate"]
    rows = [
        [c["workload"], c["strategy"], str(c["messages_batched"]),
         str(c["messages_unbatched"]), str(c["bytes_batched"]),
         f"{c['total_s']:.3f}", f"{c['response_s']:.3f}",
         f"{c['warm_cache_hit_rate']:.2f}"]
        for c in result["cells"]
    ]
    text = format_table(headers, rows)
    eval_headers = ["workload", "columnar (s)", "row path (s)", "speedup"]
    eval_rows = [
        [e["workload"], f"{e['columnar_wall_s']:.4f}",
         f"{e['row_wall_s']:.4f}", f"{e['speedup']:.1f}x"]
        for e in result["local_eval"]
    ]
    return (
        text
        + "\n\nwarm local evaluation (columnar kernels vs row path):\n"
        + format_table(eval_headers, eval_rows)
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid (CI smoke)")
    parser.add_argument("--json", default="", dest="json_path",
                        help="write the machine-readable result here")
    parser.add_argument("--check", default="", dest="check_path",
                        help="fail when deterministic fields differ from "
                             "this committed baseline JSON")
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    result = sweep(grid)
    text = render(result)
    print(text)
    write_result("hotpath", text)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")

    if args.check_path:
        diffs = check_against(result, args.check_path)
        if diffs:
            print(f"\nBASELINE REGRESSION vs {args.check_path}:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(f"\nbaseline check OK vs {args.check_path}")
    return 0


def test_hotpath_sweep(benchmark):
    """pytest-benchmark entry point (quick grid)."""
    from bench_common import run_once

    result = run_once(benchmark, lambda: sweep(QUICK_GRID))
    write_result("hotpath", render(result))
    localized = [c for c in result["cells"] if c["strategy"] in LOCALIZED]
    assert sum(c["messages_batched"] for c in localized) < sum(
        c["messages_unbatched"] for c in localized
    )


if __name__ == "__main__":
    sys.exit(main())
