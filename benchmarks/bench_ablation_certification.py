"""Ablation: the value of object isomerism / certification.

The paper's motivation for certification is that "one object evaluated
to be a maybe result in a component database may be turned into a
certain result when combined with the results from its isomeric
objects".  This ablation quantifies that: it runs BL with certification
and counts how many local maybe results the certification engine
promoted to certain, eliminated, or left maybe — the paper's "more
informative answers" in numbers.
"""

import random

from bench_common import run_once, write_result

from repro.bench.reporting import format_table
from repro.core.certification import CertificationStats, VerdictIndex, certify
from repro.core.decompose import decompose
from repro.core.engine import GlobalQueryEngine
from repro.core.strategies import collect_verdicts, plan_dispatch, run_checks
from repro.workload.generator import generate
from repro.workload.params import sample_params

SEEDS = (31, 32, 33, 34, 35)


def certification_outcomes():
    rows = []
    for seed in SEEDS:
        rng = random.Random(seed)
        params = sample_params(rng, n_classes_range=(2, 3))
        params.seed = seed
        workload = generate(params, scale=0.05)
        system = workload.system
        decomposed = decompose(workload.query, system.global_schema)

        local_results = {}
        reports = []
        local_maybes = 0
        for db_name, lq in decomposed.local_queries.items():
            result = system.db(db_name).execute_local(lq)
            local_results[db_name] = result
            local_maybes += len(result.maybe_rows)
            items = [
                item for row in result.maybe_rows for item in row.unsolved_items
            ]
            plan = plan_dispatch(db_name, items, system)
            reports.extend(run_checks(plan.requests, system))

        # With certification (assistant verdicts applied).
        stats_with = CertificationStats()
        certify(
            workload.query, system.global_schema, system.catalog,
            local_results, collect_verdicts(reports), stats_with,
        )
        # Without: same merge, but no assistant verdicts at all.
        stats_without = CertificationStats()
        certify(
            workload.query, system.global_schema, system.catalog,
            local_results, VerdictIndex(), stats_without,
        )
        rows.append((seed, local_maybes, stats_with, stats_without))
    return rows


def test_certification_value(benchmark):
    runs = run_once(benchmark, certification_outcomes)

    table_rows = [
        [
            str(seed),
            str(local_maybes),
            str(with_.promoted_to_certain),
            str(with_.eliminated_by_violation),
            str(with_.eliminated_by_absence),
            str(with_.remained_maybe),
            str(without.remained_maybe),
        ]
        for seed, local_maybes, with_, without in runs
    ]
    text = format_table(
        [
            "seed", "local maybes", "promoted", "elim(violation)",
            "elim(absence)", "maybe (with)", "maybe (no checks)",
        ],
        table_rows,
    )
    write_result("ablation_certification", text)

    total_resolved = 0
    for _seed, _local_maybes, with_, without in runs:
        # Checking assistants can only shrink the maybe set.
        assert with_.remained_maybe <= without.remained_maybe
        total_resolved += without.remained_maybe - with_.remained_maybe
    # Certification must resolve something across the batch.
    assert total_resolved > 0
