"""Ablation: secondary indexes for local evaluation.

Not in the paper (its sites scan extents); this quantifies what a
selective access path changes in the localized strategies' cost profile:
an index probe turns the sequential root scan into random fetches of the
candidates, which pays off only when the indexed predicate is selective
(the seek charge works against unselective probes — and at Table 2's
~0.45 selectivities it indeed does not pay, which the results table
shows).  Answers must be identical with and without indexes.
"""

from bench_common import make_workload, run_once, write_result
from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers

SEEDS = (71, 72, 73)


def run_pairs():
    rows = []
    for seed in SEEDS:
        plain = make_workload(seed=seed, scale=0.1, n_classes_range=(1, 2))
        indexed = make_workload(seed=seed, scale=0.1, n_classes_range=(1, 2))
        for db in indexed.system.databases.values():
            for class_name in db.schema.class_names:
                for attr in db.schema.cls(class_name).primitive_attributes():
                    if attr.name.startswith("p"):
                        db.create_index(class_name, attr.name, kind="sorted")
        a = GlobalQueryEngine(plain.system).execute(plain.query, "BL")
        b = GlobalQueryEngine(indexed.system).execute(indexed.query, "BL")
        rows.append((seed, a, b))
    return rows


def test_index_ablation(benchmark):
    runs = run_once(benchmark, run_pairs)
    table_rows = []
    for seed, plain, indexed in runs:
        table_rows.append(
            [
                str(seed),
                f"{plain.total_time:.3f}",
                f"{indexed.total_time:.3f}",
                str(plain.metrics.work.objects_scanned),
                str(indexed.metrics.work.objects_scanned),
            ]
        )
    text = format_table(
        ["seed", "BL scan total(s)", "BL indexed total(s)",
         "objects (scan)", "objects (indexed)"],
        table_rows,
    )
    write_result("ablation_indexes", text)

    for _seed, plain, indexed in runs:
        assert same_answers(plain.results, indexed.results)
        # The index can only shrink the candidate set.
        assert (
            indexed.metrics.work.objects_scanned
            <= plain.metrics.work.objects_scanned
        )
