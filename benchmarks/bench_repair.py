"""Repair bench: recertify-vs-reexecute A/B on degraded answers.

Degrades the school federation's Q1 under every single-site loss, for
each strategy, then recovers the answer both ways:

* **repair** — ``engine.recertify(report)``: discharge the degraded
  answer's condition atoms incrementally, contacting only the sites
  named in them (messages from ``RepairSummary.messages``);
* **re-execute** — run the full query again on the healed federation
  (messages from ``metrics.work.messages``).

The acceptance contract, asserted per cell: both routes produce the
fault-free baseline answer byte-for-byte (repair soundness), and
repair spends **strictly fewer messages** than re-execution in every
scenario — that delta is the point of conditional answers.

A second section exercises *chained* partial recovery: degrade with
two sites down, repair while one is still dark (stays conditional,
stays repairable), then repair again fully healed.  Each phase's
messages are recorded; the contract there is convergence — the final
answer equals the fault-free baseline — not the message bound (with
several extents to re-fetch, repair can legitimately approach a
re-run's cost).

Runs standalone (CI calls it twice, diffs the JSON for determinism,
and checks it against the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_repair.py \
        --json out.json --check benchmarks/results/BENCH_repair.json

The JSON output is fully deterministic: no timestamps, no wall-clock
fields, no dict-order dependence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys

if __package__ in (None, ""):  # runnable as a plain script from anywhere
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    _SRC = pathlib.Path(__file__).parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))

from bench_common import write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.core.options import ExecutionOptions
from repro.faults import FaultPlan, OutageWindow
from repro.workload.paper_example import Q1_TEXT, build_school_federation

SCHEMA = "BENCH_repair/v1"
STRATEGIES = ("CA", "BL", "PL")

#: Chained-recovery scenario: both sites down, then DB2 heals first.
CHAINED_DOWN = ("DB2", "DB3")


def _digest(results):
    """Stable fingerprint of an answer (certain + maybe rows)."""
    payload = json.dumps(results.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _plan(*sites):
    return FaultPlan(outages=tuple(
        OutageWindow(site, 0.0, 1e9) for site in sites
    ))


def run_cell(strategy, site, seed):
    """One (strategy, single-site-loss) degradation repaired both ways."""
    engine = GlobalQueryEngine(build_school_federation())
    degraded = engine.execute(
        Q1_TEXT,
        strategy,
        options=ExecutionOptions(fault_plan=_plan(site), fault_seed=seed),
    )
    if degraded.availability.complete:
        raise AssertionError(f"loss:{site}/{strategy}: nothing degraded")
    repaired = engine.recertify(degraded)
    summary = repaired.repair_summary

    # The re-execution route, on a fresh healed federation (no caches
    # warmed by the degraded run).
    reexec = GlobalQueryEngine(build_school_federation()).execute(
        Q1_TEXT, strategy
    )

    baseline_digest = _digest(reexec.results)
    repaired_digest = _digest(repaired.results)
    if repaired_digest != baseline_digest:
        raise AssertionError(
            f"loss:{site}/{strategy}: repaired answer {repaired_digest} "
            f"!= fault-free baseline {baseline_digest}"
        )
    if summary.messages >= reexec.metrics.work.messages:
        raise AssertionError(
            f"loss:{site}/{strategy}: repair spent {summary.messages} "
            f"messages, re-execution only "
            f"{reexec.metrics.work.messages} — repair must be cheaper"
        )
    return {
        "scenario": f"loss:{site}",
        "strategy": strategy,
        "certain_degraded": len(degraded.results.certain),
        "maybe_degraded": len(degraded.results.maybe),
        "repair_messages": summary.messages,
        "reexec_messages": reexec.metrics.work.messages,
        "saved_frac": round(
            1 - summary.messages / reexec.metrics.work.messages, 4
        ),
        "promoted": summary.promoted,
        "dropped": summary.dropped,
        "discharged": summary.discharged,
        "sites_contacted": ",".join(summary.sites_contacted),
        "fully_repaired": summary.fully_repaired,
        "answer_digest": repaired_digest,
    }


def run_chained(strategy, seed):
    """Two-phase recovery: DB2+DB3 down, DB2 heals, then DB3."""
    engine = GlobalQueryEngine(build_school_federation())
    degraded = engine.execute(
        Q1_TEXT,
        strategy,
        options=ExecutionOptions(
            fault_plan=_plan(*CHAINED_DOWN), fault_seed=seed
        ),
    )
    partial = engine.recertify(
        degraded,
        options=ExecutionOptions(fault_plan=_plan(CHAINED_DOWN[1])),
    )
    full = engine.recertify(partial)
    baseline = GlobalQueryEngine(build_school_federation()).execute(
        Q1_TEXT, strategy
    )
    if _digest(full.results) != _digest(baseline.results):
        raise AssertionError(
            f"chained/{strategy}: converged answer differs from the "
            "fault-free baseline"
        )
    if partial.repair_summary.fully_repaired:
        raise AssertionError(
            f"chained/{strategy}: phase 1 claims full repair with "
            f"{CHAINED_DOWN[1]} still down"
        )
    return {
        "strategy": strategy,
        "down": "+".join(CHAINED_DOWN),
        "phase1_messages": partial.repair_summary.messages,
        "phase1_outstanding": partial.repair_summary.outstanding,
        "phase1_sites": ",".join(partial.repair_summary.sites_contacted),
        "phase2_messages": full.repair_summary.messages,
        "phase2_sites": ",".join(full.repair_summary.sites_contacted),
        "converged": full.repair_summary.fully_repaired,
        "answer_digest": _digest(full.results),
    }


def sweep(seed):
    sites = sorted(build_school_federation().databases)
    rows = [
        run_cell(strategy, site, seed)
        for site in sites
        for strategy in STRATEGIES
    ]
    chained = [run_chained(strategy, seed) for strategy in STRATEGIES]
    return {
        "schema": SCHEMA,
        "query": Q1_TEXT,
        "seed": seed,
        "sites": sites,
        "rows": rows,
        "chained": chained,
    }


def render(result):
    headers = ["scenario", "strategy", "repair msgs", "reexec msgs",
               "saved", "promoted", "dropped", "discharged", "sites"]
    table_rows = [
        [row["scenario"], row["strategy"], str(row["repair_messages"]),
         str(row["reexec_messages"]), f"{row['saved_frac']:.0%}",
         str(row["promoted"]), str(row["dropped"]),
         str(row["discharged"]), row["sites_contacted"]]
        for row in result["rows"]
    ]
    text = format_table(headers, table_rows)
    headers = ["strategy", "down", "phase1 msgs", "outstanding",
               "phase2 msgs", "converged"]
    table_rows = [
        [row["strategy"], row["down"], str(row["phase1_messages"]),
         str(row["phase1_outstanding"]), str(row["phase2_messages"]),
         "yes" if row["converged"] else "no"]
        for row in result["chained"]
    ]
    return text + "\n\nchained partial recovery:\n" + \
        format_table(headers, table_rows)


#: Per-row fields compared by --check (all deterministic).
REPAIR_CHECKED = ("certain_degraded", "maybe_degraded", "repair_messages",
                  "reexec_messages", "saved_frac", "promoted", "dropped",
                  "discharged", "sites_contacted", "fully_repaired",
                  "answer_digest")
CHAINED_CHECKED = ("phase1_messages", "phase1_outstanding", "phase1_sites",
                   "phase2_messages", "phase2_sites", "converged",
                   "answer_digest")


def check_against(result, baseline_path):
    """Deterministic-field diffs vs the committed baseline."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    diffs = []

    def compare(kind, rows, base_rows, key_fields, checked):
        base_by_key = {
            tuple(r[k] for k in key_fields): r for r in base_rows
        }
        for row in rows:
            key = tuple(row[k] for k in key_fields)
            base = base_by_key.get(key)
            if base is None:
                continue
            for fname in checked:
                if row[fname] != base[fname]:
                    diffs.append(
                        f"{kind} {'/'.join(str(k) for k in key)}."
                        f"{fname}: {base[fname]} -> {row[fname]}"
                    )

    compare("repair", result["rows"], baseline["rows"],
            ("scenario", "strategy"), REPAIR_CHECKED)
    compare("chained", result["chained"], baseline["chained"],
            ("strategy",), CHAINED_CHECKED)
    return diffs


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default="", dest="json_path",
                        help="also write the machine-readable result here")
    parser.add_argument("--check", default="", dest="check_path",
                        help="fail when deterministic fields differ from "
                             "this committed baseline JSON")
    args = parser.parse_args(argv)

    result = sweep(args.seed)
    text = render(result)
    print(text)
    write_result("repair", text)

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\njson written to {args.json_path}")

    if args.check_path:
        diffs = check_against(result, args.check_path)
        if diffs:
            print(f"\nBASELINE REGRESSION vs {args.check_path}:")
            for diff in diffs:
                print(f"  {diff}")
            return 1
        print(f"\nbaseline check OK vs {args.check_path}")
    return 0


def test_repair_sweep(benchmark):
    """pytest-benchmark entry point."""
    from bench_common import run_once

    result = run_once(benchmark, lambda: sweep(seed=0))
    write_result("repair", render(result))
    # run_cell/run_chained already asserted soundness and the message
    # bound; spot-check the sweep covered every strategy.
    assert {r["strategy"] for r in result["rows"]} == set(STRATEGIES)
    assert all(r["converged"] for r in result["chained"])


if __name__ == "__main__":
    sys.exit(main())
