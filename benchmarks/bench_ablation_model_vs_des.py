"""Ablation: analytic model vs. concrete discrete-event execution.

The figures are produced with the paper-style parameter-driven model;
this bench cross-validates it against real executions of materialized
federations (same parameter sets, scaled object counts).  Absolute times
differ by a bounded calibration factor; the *orderings* the paper reports
must agree: per parameter set, whichever of CA/BL wins on total time in
the DES also wins in the model, and the localized response-time advantage
shows in both.
"""

import random

from bench_common import run_once, write_result

from repro.analytic.model import AnalyticModel
from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.workload.generator import generate
from repro.workload.params import sample_params

SEEDS = (41, 42, 43, 44, 45, 46)
SCALE = 0.05


def run_both():
    rows = []
    for seed in SEEDS:
        rng = random.Random(seed)
        params = sample_params(rng)
        params.seed = seed
        # Analytic model at the same (scaled) object counts as the DES.
        for cls in params.classes:
            for db_params in cls.per_db.values():
                db_params.n_objects = max(1, int(db_params.n_objects * SCALE))
        workload = generate(params, scale=1.0)
        engine = GlobalQueryEngine(workload.system)
        des = {
            name: engine.execute(workload.query, name)
            for name in ("CA", "BL", "PL")
        }
        model = AnalyticModel(params).evaluate_all()
        rows.append((seed, des, model))
    return rows


def test_model_matches_des_orderings(benchmark):
    runs = run_once(benchmark, run_both)

    table_rows = []
    for seed, des, model in runs:
        for name in ("CA", "BL", "PL"):
            table_rows.append(
                [
                    str(seed), name,
                    f"{des[name].total_time:.3f}",
                    f"{model[name].total_time:.3f}",
                    f"{des[name].response_time:.3f}",
                    f"{model[name].response_time:.3f}",
                ]
            )
    text = format_table(
        ["seed", "strategy", "DES total(s)", "model total(s)",
         "DES resp(s)", "model resp(s)"],
        table_rows,
    )
    write_result("ablation_model_vs_des", text)

    agree = 0
    for _seed, des, model in runs:
        des_winner = min(("CA", "BL"), key=lambda n: des[n].total_time)
        model_winner = min(("CA", "BL"), key=lambda n: model[n].total_time)
        agree += des_winner == model_winner
        # Response-time advantage of BL over CA shows in both worlds.
        des_adv = des["BL"].response_time < des["CA"].response_time
        model_adv = model["BL"].response_time < model["CA"].response_time
        if des_adv and not model_adv:
            raise AssertionError("model lost BL's response advantage")
    # The CA-vs-BL total-time winner agrees on a clear majority of sets.
    assert agree >= len(runs) - 1

    # Calibration: per-strategy model totals within one order of
    # magnitude of the DES (they share the cost constants).
    for _seed, des, model in runs:
        for name in ("CA", "BL", "PL"):
            ratio = model[name].total_time / des[name].total_time
            assert 0.2 < ratio < 5.0, (name, ratio)
