"""Microbenchmarks of the substrate operations (pytest-benchmark).

Not a paper figure — performance tracking for the building blocks every
experiment leans on: local query evaluation, outerjoin materialization,
assistant checking, certification, and the DES kernel itself.
"""

import random

import pytest


def _build():
    from repro.core.decompose import decompose
    from repro.workload.generator import generate
    from repro.workload.params import sample_params

    rng = random.Random(1234)
    params = sample_params(rng, n_classes_range=(3, 3))
    params.seed = 1234
    workload = generate(params, scale=0.2)
    decomposed = decompose(workload.query, workload.system.global_schema)
    return workload, decomposed


@pytest.fixture(scope="module")
def setup():
    return _build()


def test_local_query_evaluation(benchmark, setup):
    workload, decomposed = setup
    db_name = next(iter(decomposed.local_queries))
    db = workload.system.db(db_name)
    lq = decomposed.local_queries[db_name]
    result = benchmark(db.execute_local, lq)
    assert result.objects_scanned > 0


def test_phase_o_scan(benchmark, setup):
    workload, decomposed = setup
    db_name = next(iter(decomposed.local_queries))
    db = workload.system.db(db_name)
    lq = decomposed.local_queries[db_name]
    scan, _meter = benchmark(db.collect_unsolved, lq)
    assert scan.objects_scanned > 0


def test_outerjoin_materialization(benchmark, setup):
    from repro.core.decompose import attributes_needed
    from repro.integration.outerjoin import materialize

    workload, _decomposed = setup
    system = workload.system
    classes = (workload.query.range_class,) + workload.query.branch_classes(
        system.global_schema.schema
    )
    exports = {}
    for cls in classes:
        per_db = {}
        for db_name, db in system.databases.items():
            local = system.global_schema.constituent_class(db_name, cls)
            if local is None:
                continue
            needed = attributes_needed(workload.query, system.global_schema, cls)
            per_db[db_name] = db.scan_for_export(
                local,
                tuple(a for a in needed
                      if db.schema.cls(local).has_attribute(a)),
            )
        exports[cls] = per_db

    extent = benchmark(
        materialize, classes, system.global_schema, system.catalog, exports
    )
    assert len(extent) > 0


def test_full_bl_execution(benchmark, setup):
    from repro.core.engine import GlobalQueryEngine

    workload, _decomposed = setup
    engine = GlobalQueryEngine(workload.system)
    outcome = benchmark(engine.execute, workload.query, "BL")
    assert len(outcome.results) > 0


def test_signature_indexing(benchmark, setup):
    from repro.objectdb.signatures import SignatureCatalog

    workload, _decomposed = setup
    db = next(iter(workload.system.databases.values()))
    objects = list(db.extent("K1").values())

    def index():
        catalog = SignatureCatalog()
        catalog.index_extent(objects)
        return catalog

    catalog = benchmark(index)
    assert catalog.lookup("K1", objects[0].loid) is not None


def test_des_kernel_throughput(benchmark):
    """Schedule-and-run a 3-site fan-in graph of 300 nodes."""
    from repro.sim.taskgraph import FederationSim

    def run_graph():
        fed = FederationSim(["A", "B", "C"], global_site="G")
        deps = []
        for site in ("A", "B", "C"):
            prev = None
            for i in range(33):
                node = fed.cpu(
                    site, comparisons=100, label=f"w{i}",
                    deps=[prev] if prev else (),
                )
                prev = node
            deps.append(fed.transfer(site, "G", nbytes=100, deps=[prev]))
        fed.cpu("G", comparisons=10, deps=deps)
        return fed.run()

    outcome = benchmark(run_graph)
    assert outcome.nodes == 103
