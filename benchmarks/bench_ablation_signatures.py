"""Ablation: object-signature pre-filtering (BL-S / PL-S).

Section 5 proposes object signatures "for reducing the amount of data
transfer" in the localized approaches.  This ablation runs concrete
federations and compares BL vs BL-S and PL vs PL-S on network bytes and
assistant checks: the signature variants never ship an assistant whose
equality predicate provably fails, at the price of signature comparisons,
and always return identical answers.
"""

import random

from bench_common import run_once, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.core.results import same_answers
from repro.workload.generator import generate
from repro.workload.params import sample_params

SEEDS = (21, 22, 23, 24)


def run_pairs():
    rows = []
    for seed in SEEDS:
        rng = random.Random(seed)
        params = sample_params(rng, n_classes_range=(2, 3))
        params.seed = seed
        workload = generate(params, scale=0.05)
        engine = GlobalQueryEngine(workload.system)
        outcomes = {
            name: engine.execute(workload.query, name)
            for name in ("BL", "BL-S", "PL", "PL-S")
        }
        rows.append((seed, outcomes))
    return rows


def test_signature_variants(benchmark):
    runs = run_once(benchmark, run_pairs)

    table_rows = []
    for seed, outcomes in runs:
        for plain, signed in (("BL", "BL-S"), ("PL", "PL-S")):
            p, s = outcomes[plain], outcomes[signed]
            table_rows.append(
                [
                    str(seed),
                    plain,
                    str(p.metrics.work.bytes_network),
                    str(s.metrics.work.bytes_network),
                    str(p.metrics.work.assistants_checked),
                    str(s.metrics.work.assistants_checked),
                    str(s.metrics.work.signature_comparisons),
                ]
            )
    text = format_table(
        [
            "seed", "base", "net bytes", "net bytes (sig)",
            "checked", "checked (sig)", "sig comparisons",
        ],
        table_rows,
    )
    write_result("ablation_signatures", text)

    for _seed, outcomes in runs:
        for plain, signed in (("BL", "BL-S"), ("PL", "PL-S")):
            p, s = outcomes[plain], outcomes[signed]
            assert same_answers(p.results, s.results)
            assert (
                s.metrics.work.bytes_network <= p.metrics.work.bytes_network
            )
            assert (
                s.metrics.work.assistants_checked
                <= p.metrics.work.assistants_checked
            )
    # Across the whole batch the filter must actually fire somewhere.
    total_saved = sum(
        outcomes["PL"].metrics.work.assistants_checked
        - outcomes["PL-S"].metrics.work.assistants_checked
        for _seed, outcomes in runs
    )
    assert total_saved > 0
