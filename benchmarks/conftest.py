"""Benchmark fixtures; see bench_common for the shared helpers."""

import pytest

from bench_common import SAMPLES


@pytest.fixture()
def samples():
    return SAMPLES
