"""Ablation: quality of adaptive (model-driven) strategy selection.

Over a batch of generated federations, compare the AUTO strategy's
prediction against ground truth (run all three strategies on the DES and
observe the actual best).  The regret — extra time paid when AUTO picks
a non-optimal strategy — must stay small: the model need not rank
near-ties correctly, only avoid expensive mistakes.
"""

from bench_common import make_workload, run_once, write_result

from repro.bench.reporting import format_table
from repro.core.engine import GlobalQueryEngine
from repro.core.strategies import AdaptiveStrategy

SEEDS = tuple(range(81, 91))


def run_batch():
    rows = []
    for seed in SEEDS:
        workload = make_workload(seed=seed, scale=0.04)
        engine = GlobalQueryEngine(workload.system)
        actual = {
            name: engine.execute(workload.query, name).response_time
            for name in ("CA", "BL", "PL")
        }
        chooser = AdaptiveStrategy(objective="response")
        chooser.execute(workload.system, workload.query)
        rows.append((seed, chooser.last_choice, actual))
    return rows


def test_adaptive_selection_quality(benchmark):
    runs = run_once(benchmark, run_batch)

    table_rows = []
    hits = 0
    total_regret = 0.0
    total_best = 0.0
    for seed, choice, actual in runs:
        best = min(actual, key=actual.get)
        regret = actual[choice] - actual[best]
        hits += choice == best
        total_regret += regret
        total_best += actual[best]
        table_rows.append(
            [str(seed), choice, best,
             f"{actual[choice]:.3f}", f"{actual[best]:.3f}",
             f"{regret:.3f}"]
        )
    text = format_table(
        ["seed", "AUTO chose", "actual best", "chosen resp(s)",
         "best resp(s)", "regret(s)"],
        table_rows,
    )
    write_result("ablation_adaptive", text)

    # The model must rank correctly on a majority...
    assert hits >= len(runs) // 2
    # ...and, more importantly, cheap mistakes only: average regret under
    # 15% of the average optimum.
    assert total_regret <= 0.15 * total_best
