"""repro — reproduction of Koh & Chen, ICDCS 1996.

"Query Execution Strategies for Missing Data in Distributed
Heterogeneous Object Databases": maybe-aware global query processing
over a federation of heterogeneous object databases, with the paper's
three execution strategies (CA, BL, PL), an object-database substrate,
schema integration with GOid mapping tables, a discrete-event cost
simulator, and the paper's full performance study.

Quickstart::

    from repro import GlobalQueryEngine
    from repro.workload.paper_example import build_school_federation, Q1_TEXT

    system = build_school_federation()
    engine = GlobalQueryEngine(system)
    outcome = engine.execute(Q1_TEXT, strategy="BL")
    print(outcome.results.certain_rows())  # [('Hedy', 'Kelly')]
    print(outcome.results.maybe_rows())    # [('Tony', 'Haley')]
"""

from repro.core import (
    DistributedSystem,
    ExecutionReport,
    GlobalQueryEngine,
    GlobalResult,
    Op,
    Path,
    Predicate,
    Query,
    ResultKind,
    ResultSet,
    TV,
)
from repro.core.strategies import (
    ALL_STRATEGIES,
    BasicLocalizedStrategy,
    CentralizedStrategy,
    PAPER_STRATEGIES,
    ParallelLocalizedStrategy,
    SignatureBasicLocalizedStrategy,
    SignatureParallelLocalizedStrategy,
    Strategy,
    StrategyResult,
    strategy_by_name,
)
from repro.errors import ReproError
from repro.sim.costs import CostModel, PAPER_COSTS

__version__ = "1.0.0"

__all__ = [
    "ALL_STRATEGIES",
    "BasicLocalizedStrategy",
    "CentralizedStrategy",
    "CostModel",
    "DistributedSystem",
    "ExecutionReport",
    "GlobalQueryEngine",
    "GlobalResult",
    "Op",
    "PAPER_COSTS",
    "PAPER_STRATEGIES",
    "ParallelLocalizedStrategy",
    "Path",
    "Predicate",
    "Query",
    "ReproError",
    "ResultKind",
    "ResultSet",
    "SignatureBasicLocalizedStrategy",
    "SignatureParallelLocalizedStrategy",
    "Strategy",
    "StrategyResult",
    "TV",
    "strategy_by_name",
]
