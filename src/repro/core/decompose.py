"""Decomposing a global query into per-site local queries.

For every component database holding a constituent of the query's root
class, the localized strategies produce a *local query* (paper, step
BL_G1): the original query rewritten against the local root class, with
the predicates that involve missing attributes of the site's constituent
classes removed (they are statically unsolvable there) and remembered as
:class:`~repro.objectdb.local_query.RemovedPredicate` so that the site can
still locate unsolved items for them.

The key static computation is :func:`missing_depth`: at which step of a
predicate's path expression a given site's schema runs out of data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.query import Conjunction, Path, Predicate, Query
from repro.errors import QueryError
from repro.integration.global_schema import GlobalSchema
from repro.objectdb.local_query import LocalQuery, RemovedPredicate


def missing_depth(
    global_schema: GlobalSchema,
    db_name: str,
    range_class: str,
    path: Path,
) -> Optional[int]:
    """First path step unavailable at *db_name*, or None if fully local.

    Walks the global classes visited by *path* from *range_class* and
    checks, for each step, that the site has a constituent of the visited
    class and that the constituent defines the step's attribute.

    Returns:
        The 0-based index of the first unavailable step, or ``None`` when
        the whole path can be evaluated from the site's own schema.

    Raises:
        QueryError: when the site has no constituent of *range_class* at
            all (such a site receives no local query in the first place).
    """
    visited_classes = global_schema.schema.classes_on_path(range_class, path.steps)
    for depth, step in enumerate(path.steps):
        global_cls = visited_classes[depth]
        local_cls_name = global_schema.constituent_class(db_name, global_cls)
        if local_cls_name is None:
            if depth == 0:
                raise QueryError(
                    f"database {db_name!r} has no constituent of "
                    f"{range_class!r}"
                )
            # The class itself is absent at this site; data ran out at the
            # step that would have referenced it.
            return depth - 1
        if step in global_schema.missing_attribute_names(db_name, global_cls):
            return depth
    return None


@dataclass
class DecomposedQuery:
    """The per-site local queries of one global query."""

    query: Query
    local_queries: Dict[str, LocalQuery] = field(default_factory=dict)

    @property
    def databases(self) -> Tuple[str, ...]:
        return tuple(self.local_queries)


def decompose(query: Query, global_schema: GlobalSchema) -> DecomposedQuery:
    """Produce the local query for every site holding the root class.

    The paper's step BL_G1 keeps predicates "unchanged at this step" and
    lets each component database drop what it cannot evaluate; we perform
    that split here, statically, since it depends only on schemas — the
    observable behaviour (which predicates are evaluated where) is
    identical.
    """
    query.validate(global_schema.schema)
    decomposed = DecomposedQuery(query=query)
    for db_name in global_schema.databases_of(query.range_class):
        local_root = global_schema.constituent_class(db_name, query.range_class)
        if local_root is None:  # pragma: no cover - databases_of guarantees it
            continue
        removed: List[RemovedPredicate] = []
        removed_set = set()
        local_where: List[Conjunction] = []
        removed_by_conjunct: List[Tuple[Predicate, ...]] = []
        for conjunction in query.where:
            kept: List[Predicate] = []
            dropped: List[Predicate] = []
            for predicate in conjunction:
                depth = missing_depth(
                    global_schema, db_name, query.range_class, predicate.path
                )
                if depth is None:
                    kept.append(predicate)
                else:
                    dropped.append(predicate)
                    if predicate not in removed_set:
                        removed_set.add(predicate)
                        removed.append(
                            RemovedPredicate(
                                predicate=predicate, missing_depth=depth
                            )
                        )
            local_where.append(tuple(kept))
            removed_by_conjunct.append(tuple(dropped))
        decomposed.local_queries[db_name] = LocalQuery(
            db_name=db_name,
            range_class=local_root,
            targets=query.targets,
            where=tuple(local_where),
            removed=tuple(removed),
            removed_by_conjunct=tuple(removed_by_conjunct),
        )
    return decomposed


def attributes_needed(
    query: Query, global_schema: GlobalSchema, global_class: str
) -> Tuple[str, ...]:
    """Attributes of *global_class* the query touches (for projection).

    Used by the centralized strategy's export step (CA_C1): objects are
    projected on the LOids and the attributes involved in the query.
    """
    needed: List[str] = []
    for path in query.all_paths():
        visited = global_schema.schema.classes_on_path(
            query.range_class, path.steps
        )
        for depth, step in enumerate(path.steps):
            if visited[depth] == global_class and step not in needed:
                needed.append(step)
    # The key attribute rides along: integration and result identity use it.
    key = global_schema.key_attribute(global_class)
    if key not in needed:
        needed.append(key)
    return tuple(needed)
