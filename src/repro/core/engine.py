"""The public query engine facade.

:class:`GlobalQueryEngine` is the main entry point for library users: it
accepts a :class:`~repro.core.query.Query` (or an SQL/X string), executes
it with a chosen strategy, and returns a unified
:class:`~repro.core.report.ExecutionReport` — the answer, the metrics,
the span trace (with Chrome-trace / JSONL / Gantt exporters) and the
per-site utilization profile of that one execution.  ``explain()`` and
``compare()`` consume the same report object, so rendering a schedule
never re-runs the query.

Fault tolerance: pass a :class:`~repro.faults.plan.FaultPlan` (and
optionally an :class:`~repro.faults.policy.ExecutionPolicy`) to inject
deterministic site outages and link degradation into an execution.  An
empty/inactive plan leaves execution byte-identical to a fault-free run;
an active plan makes strategies retry, wait, skip unreachable sites, and
annotate the degraded answer with its
:class:`~repro.core.results.Availability`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.query import Query
from repro.core.report import ExecutionReport
from repro.core.results import certified_subset, same_answers
from repro.core.strategies import DEFAULT_REGISTRY, Strategy
from repro.core.strategies.registry import StrategyRegistry
from repro.core.system import DistributedSystem
from repro.errors import ReproError
from repro.faults.injector import ExecutionContext
from repro.faults.plan import FaultPlan
from repro.faults.policy import ExecutionPolicy, resolve_policy
from repro.obs.spans import TraceEvent


class GlobalQueryEngine:
    """Executes global queries against a federation."""

    def __init__(
        self,
        system: DistributedSystem,
        default_strategy: Union[str, Strategy] = "BL",
        registry: Optional[StrategyRegistry] = None,
        fault_plan: Optional[FaultPlan] = None,
        policy: Union[str, ExecutionPolicy, None] = None,
        fault_seed: int = 0,
        batch_checks: bool = True,
        failover: bool = True,
    ) -> None:
        self.system = system
        self.registry = registry or DEFAULT_REGISTRY
        self.default_strategy = self._resolve(default_strategy)
        self.fault_plan = fault_plan
        self.policy = resolve_policy(policy)
        self.fault_seed = fault_seed
        #: Coalesce phase-O check/chase messages per (src, dst) link.
        #: ``False`` restores the one-message-per-request wire protocol
        #: (the CLI's ``--no-batch`` escape hatch).
        self.batch_checks = batch_checks
        #: Resilient dispatch under a fault plan: circuit breakers,
        #: global-site relay failover and verdict-aware demotion.
        #: ``False`` restores the eager skip-and-demote behavior
        #: (the CLI's ``--no-failover`` escape hatch).
        self.failover = failover

    def _resolve(self, strategy: Union[str, Strategy]) -> Strategy:
        if isinstance(strategy, Strategy):
            return strategy
        return self.registry.create(strategy)

    def parse(self, text: str) -> Query:
        """Parse an SQL/X query string against the global schema."""
        from repro.sqlx import parse_query

        return parse_query(text)

    def ensure_signatures(self) -> None:
        """Build the signature catalog now if it is absent.

        Signature strategies (BL-S/PL-S) need the catalog; without this
        call the engine builds it implicitly on first use and records a
        ``signatures.build`` event on that report.
        """
        self.system.ensure_signatures()

    def _fault_context(
        self,
        fault_plan: Optional[FaultPlan],
        policy: Union[str, ExecutionPolicy, None],
        fault_seed: Optional[int],
        failover: Optional[bool] = None,
    ) -> Optional[ExecutionContext]:
        """The execution's fault context, or None when faults are off.

        A ``None`` context is load-bearing: strategies then run their
        original two-argument code path, so fault-free executions are
        byte-identical to the pre-fault-layer engine.
        """
        plan = fault_plan if fault_plan is not None else self.fault_plan
        if plan is None or not plan.active:
            return None
        chosen_policy = (
            self.policy if policy is None else resolve_policy(policy)
        )
        seed = self.fault_seed if fault_seed is None else fault_seed
        chosen_failover = self.failover if failover is None else failover
        return ExecutionContext(
            plan, chosen_policy, seed=seed, failover=chosen_failover
        )

    def execute(
        self,
        query: Union[Query, str],
        strategy: Optional[Union[str, Strategy]] = None,
        fault_plan: Optional[FaultPlan] = None,
        policy: Union[str, ExecutionPolicy, None] = None,
        fault_seed: Optional[int] = None,
        batch_checks: Optional[bool] = None,
        failover: Optional[bool] = None,
    ) -> ExecutionReport:
        """Run *query* (Query object or SQL/X text) once.

        Returns an :class:`ExecutionReport`: the answer plus metrics
        (it still quacks like the old ``StrategyResult``), with
        ``.trace``, ``.registry`` and ``.utilization`` views derived
        from the same run.

        *fault_plan* / *policy* / *fault_seed* / *batch_checks* /
        *failover* override the engine-wide configuration for this
        execution only.

        Raises:
            UnavailableError: a site stayed unreachable under a
                fail-fast policy.
            ExecutionTimeout: cumulative fault waits exceeded the
                policy's deadline.
        """
        query_text = query if isinstance(query, str) else str(query)
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            self.default_strategy if strategy is None else self._resolve(strategy)
        )
        chosen.batch_checks = (
            self.batch_checks if batch_checks is None else batch_checks
        )
        built_signatures = False
        if getattr(chosen, "use_signatures", False) and self.system.signatures is None:
            self.system.build_signatures()
            built_signatures = True
        ctx = self._fault_context(fault_plan, policy, fault_seed, failover)
        cache_before = self.system.cache_stats()
        if ctx is None:
            result = chosen.execute(self.system, query)
        else:
            result = chosen.execute(self.system, query, ctx)
        # Strategies do not see the cache layer; attribute the traffic
        # this execution generated (mapping-index + decomposition) to its
        # metrics before the lazy registry snapshot is built.
        cache_delta = self.system.cache_stats().delta(cache_before)
        result.metrics.work.cache_hits = cache_delta.hits
        result.metrics.work.cache_misses = cache_delta.misses
        report = ExecutionReport.from_result(result, query_text=query_text)
        if built_signatures:
            report.record_event(TraceEvent.of(
                "signatures.build",
                implicit=True,
                strategy=chosen.name,
                hint="call engine.ensure_signatures() to build up front",
            ))
        if ctx is not None:
            report.record_event(TraceEvent.of(
                "faults.plan",
                outages=len(ctx.plan.outages),
                links=len(ctx.plan.links),
                policy=ctx.policy.name,
                seed=ctx.injector.seed,
                complete=ctx.complete,
                failover=ctx.failover,
            ))
            if ctx.health is not None and ctx.health.transitions:
                for site, from_state, to_state in ctx.health.transitions:
                    report.record_event(TraceEvent.of(
                        "fault.breaker",
                        site=site,
                        from_state=from_state,
                        to_state=to_state,
                    ))
        return report

    def explain(
        self,
        query: Union[Query, str, ExecutionReport],
        strategy: Optional[Union[str, Strategy]] = None,
        width: int = 48,
    ) -> str:
        """Render an execution's schedule as text.

        Pass an :class:`ExecutionReport` to render a run you already
        have — nothing is executed.  Pass a query (text or
        :class:`Query`) and it is executed exactly once, then rendered
        from that single run's report.
        """
        if isinstance(query, ExecutionReport):
            return query.explain(width=width)
        return self.execute(query, strategy).explain(width=width)

    def compare(
        self,
        query: Union[Query, str],
        strategies: Optional[Sequence[Union[str, Strategy]]] = None,
        check_agreement: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        policy: Union[str, ExecutionPolicy, None] = None,
        fault_seed: Optional[int] = None,
        batch_checks: Optional[bool] = None,
        failover: Optional[bool] = None,
    ) -> Dict[str, ExecutionReport]:
        """Execute *query* under several strategies (default: CA, BL, PL).

        With ``check_agreement`` (the default) a :class:`ReproError` is
        raised if any two strategies return different answers — they
        implement the same query semantics and may only differ in cost.
        Under an active fault plan the check relaxes to
        *completeness-aware agreement*: complete executions must agree
        exactly, and every incomplete (degraded) execution may only
        certify a subset of what a complete one certifies — degradation
        must never add certainty.
        """
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            [info.create() for info in self.registry.infos(paper_only=True)]
            if strategies is None
            else [self._resolve(s) for s in strategies]
        )
        outcomes: Dict[str, ExecutionReport] = {}
        for strategy in chosen:
            outcomes[strategy.name] = self.execute(
                query,
                strategy,
                fault_plan=fault_plan,
                policy=policy,
                fault_seed=fault_seed,
                batch_checks=batch_checks,
                failover=failover,
            )
        if check_agreement and len(outcomes) > 1:
            self._check_agreement(outcomes)
        return outcomes

    @staticmethod
    def _check_agreement(outcomes: Dict[str, ExecutionReport]) -> None:
        complete = {
            name: report
            for name, report in outcomes.items()
            if report.availability.complete
        }
        names = list(complete)
        baseline = complete[names[0]] if names else None
        for name in names[1:]:
            if not same_answers(baseline.results, complete[name].results):
                raise ReproError(
                    f"strategies {names[0]} and {name} disagree: "
                    f"{baseline.results.summary()} vs "
                    f"{complete[name].results.summary()}"
                )
        if baseline is None:
            # All executions degraded: nothing to anchor agreement on.
            return
        for name, report in outcomes.items():
            if report.availability.complete:
                continue
            if not certified_subset(report.results, baseline.results):
                raise ReproError(
                    f"degraded strategy {name} certified results the "
                    f"complete execution {names[0]} does not — "
                    "degradation added certainty"
                )
