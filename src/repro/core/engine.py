"""The public query engine facade.

:class:`GlobalQueryEngine` is the main entry point for library users: it
accepts a :class:`~repro.core.query.Query` (or an SQL/X string), executes
it with a chosen strategy, and returns a unified
:class:`~repro.core.report.ExecutionReport` — the answer, the metrics,
the span trace (with Chrome-trace / JSONL / Gantt exporters) and the
per-site utilization profile of that one execution.  ``explain()`` and
``compare()`` consume the same report object, so rendering a schedule
never re-runs the query.

Per-execution configuration lives in one immutable
:class:`~repro.core.options.ExecutionOptions` value (``engine.options``);
derive variants with ``engine.options.with_(batch_checks=False)`` and
pass them as ``options=``.  The historical ``fault_plan=`` / ``policy=``
/ ``fault_seed=`` / ``batch_checks=`` / ``failover=`` kwargs on
``execute()`` and ``compare()`` still work but are deprecated.

Concurrent callers over one shared federation each take an
:meth:`GlobalQueryEngine.session` — a lightweight handle with its own
default strategy, options and per-worker cache accounting.  All
per-execution state (fault negotiations, breakers, hedges) lives in an
:class:`~repro.faults.injector.ExecutionContext` created per call, so
interleaved executions can never bleed into each other.
"""

from __future__ import annotations

import copy
import dataclasses
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.options import ExecutionOptions
from repro.core.query import Query
from repro.core.report import ExecutionReport
from repro.core.results import ResultKind, certified_subset, same_answers
from repro.core.session import EngineSession
from repro.core.strategies import DEFAULT_REGISTRY, Strategy
from repro.core.strategies.registry import StrategyRegistry
from repro.core.system import DistributedSystem
from repro.errors import ReproError
from repro.faults.injector import ExecutionContext
from repro.faults.plan import FaultPlan
from repro.faults.policy import ExecutionPolicy
from repro.obs.spans import TraceEvent

#: The deprecated per-call override kwargs (now ExecutionOptions fields).
_LEGACY_KWARGS = ("fault_plan", "policy", "fault_seed", "batch_checks", "failover")


def _with_departed_outages(
    options: ExecutionOptions, sites: Sequence[str]
) -> ExecutionOptions:
    """Merge formally-departed sites into the execution's fault plan.

    A site whose leave window is open is unreachable for the whole
    execution; modelling that as a synthetic whole-execution outage
    reuses the entire existing degradation machinery (relay failover,
    verdict demotion, certified-subset soundness) unchanged.
    """
    from repro.faults.plan import OutageWindow

    base = options.fault_plan
    synthetic = tuple(OutageWindow(site, 0.0, 1e12) for site in sites)
    if base is None:
        plan = FaultPlan(outages=synthetic)
    else:
        plan = FaultPlan(
            seed=base.seed,
            outages=base.outages + synthetic,
            links=base.links,
        )
    return options.with_(fault_plan=plan)


def _demote_uncertified(
    results, query: Query, flux, epoch: int = 0, conditions: bool = True
) -> Tuple[int, List[str]]:
    """Apply the flux consistency contract to one straddling answer.

    When an open window drops or renames an attribute the query
    references, rows certified mid-propagation cannot be trusted to
    match either the pre- or post-epoch baseline bindings — so *every*
    certain row is demoted to maybe with an ``"uncertified: schema in
    flux"`` note.  (An empty certified set is trivially a sound subset
    of both baselines; adds and joins need no demotion because the flux
    answer equals one baseline exactly, and leaves are handled by the
    fault machinery's own degradation.)  Returns (rows demoted, labels
    of the windows that forced it).

    With *conditions*, every demoted row carries a ``FluxEpoch`` atom
    per forcing window, and rows *already* maybe for a site-loss reason
    (``SiteDown`` / ``UncheckedCopy`` atoms) pick up the same atoms —
    their answer is blocked by the outage AND the open window, and the
    conjunction discharges only when both clear.  Atoms never alter
    notes, so rendered degradation text is unchanged.
    """
    from repro.evolution.seeding import referenced_attributes

    if not flux.uncertified_attrs:
        return 0, []
    referenced = referenced_attributes(query)
    hit = [
        label
        for label, event in flux.open_events
        if any(a in referenced for a in event.touched_attrs)
    ]
    if not hit:
        return 0, hit
    flux_atoms = ()
    if conditions:
        from repro.conditions.algebra import (
            FluxEpoch,
            SiteDown,
            UncheckedCopy,
            attach,
        )

        flux_atoms = tuple(
            FluxEpoch(epoch=epoch, event=label) for label in hit
        )
        for row in results.maybe:
            leaves = [a for c in row.conditions for a in c.atoms()]
            if any(
                isinstance(a, (SiteDown, UncheckedCopy)) for a in leaves
            ):
                attach(row, *flux_atoms)
    if not results.certain:
        return 0, hit
    notes = tuple(f"uncertified: schema in flux ({label})" for label in hit)
    demoted = list(results.certain)
    results.certain.clear()
    for row in demoted:
        row.kind = ResultKind.MAYBE
        row.notes = row.notes + notes
        if flux_atoms:
            from repro.conditions.algebra import attach

            attach(row, *flux_atoms)
        results.maybe.append(row)
    return len(demoted), hit


def _merge_legacy(
    where: str,
    options: Optional[ExecutionOptions],
    base: ExecutionOptions,
    legacy: Dict[str, object],
) -> ExecutionOptions:
    """Fold deprecated override kwargs into an options value.

    *base* is the caller's default options (engine- or session-wide);
    explicit ``options=`` wins as the starting point, then any legacy
    kwarg overrides field-by-field (with a DeprecationWarning).
    """
    given = {k: v for k, v in legacy.items() if v is not None}
    effective = options if options is not None else base
    if not given:
        return effective
    warnings.warn(
        f"{where}({', '.join(sorted(given))}=...) is deprecated; pass "
        f"options=engine.options.with_({', '.join(sorted(given))}=...) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return effective.with_(**given)


class GlobalQueryEngine:
    """Executes global queries against a federation."""

    def __init__(
        self,
        system: DistributedSystem,
        default_strategy: Union[str, Strategy] = "BL",
        registry: Optional[StrategyRegistry] = None,
        fault_plan: Optional[FaultPlan] = None,
        policy: Union[str, ExecutionPolicy, None] = None,
        fault_seed: Optional[int] = None,
        batch_checks: Optional[bool] = None,
        failover: Optional[bool] = None,
        columnar: Optional[bool] = None,
        planner: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> None:
        self.system = system
        self.registry = registry or DEFAULT_REGISTRY
        self.default_strategy = self._resolve(default_strategy)
        base = options if options is not None else ExecutionOptions()
        overrides = {
            name: value
            for name, value in (
                ("fault_plan", fault_plan),
                ("policy", policy),
                ("fault_seed", fault_seed),
                ("batch_checks", batch_checks),
                ("failover", failover),
                ("columnar", columnar),
                ("planner", planner),
            )
            if value is not None
        }
        #: Engine-wide default :class:`ExecutionOptions`; immutable —
        #: replace it (``engine.options = engine.options.with_(...)``)
        #: rather than mutating.
        self.options = base.with_(**overrides) if overrides else base
        self._sessions = 0
        self._root_session = EngineSession(self, name="main")

    # --- configuration shims (legacy attribute views onto options) --------

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self.options.fault_plan

    @fault_plan.setter
    def fault_plan(self, value: Optional[FaultPlan]) -> None:
        self.options = self.options.with_(fault_plan=value)

    @property
    def policy(self) -> ExecutionPolicy:
        return self.options.policy

    @policy.setter
    def policy(self, value: Union[str, ExecutionPolicy, None]) -> None:
        self.options = self.options.with_(policy=value)

    @property
    def fault_seed(self) -> int:
        return self.options.fault_seed

    @fault_seed.setter
    def fault_seed(self, value: int) -> None:
        self.options = self.options.with_(fault_seed=value)

    @property
    def batch_checks(self) -> bool:
        return self.options.batch_checks

    @batch_checks.setter
    def batch_checks(self, value: bool) -> None:
        self.options = self.options.with_(batch_checks=value)

    @property
    def failover(self) -> bool:
        return self.options.failover

    @failover.setter
    def failover(self, value: bool) -> None:
        self.options = self.options.with_(failover=value)

    @property
    def columnar(self) -> bool:
        return self.options.columnar

    @columnar.setter
    def columnar(self, value: bool) -> None:
        self.options = self.options.with_(columnar=value)

    @property
    def planner(self) -> str:
        return self.options.planner

    @planner.setter
    def planner(self, value: str) -> None:
        self.options = self.options.with_(planner=value)

    @property
    def conditions(self) -> bool:
        return self.options.conditions

    @conditions.setter
    def conditions(self, value: bool) -> None:
        self.options = self.options.with_(conditions=value)

    # --- sessions ----------------------------------------------------------

    def session(
        self,
        name: Optional[str] = None,
        strategy: Union[str, Strategy, None] = None,
        options: Optional[ExecutionOptions] = None,
        fault_seed: Optional[int] = None,
    ) -> EngineSession:
        """A lightweight per-caller handle over the shared federation.

        Each session carries its own default strategy, options and fault
        seed plus per-session cache hit/miss accounting, while the
        federation (databases, catalogs, decomposition/mapping caches,
        signature catalog) stays shared.  Sessions are cooperative: calls
        interleave deterministically, and all per-execution fault state
        is created per call, so sessions never bleed into each other.
        """
        self._sessions += 1
        return EngineSession(
            self,
            name=name or f"session-{self._sessions}",
            strategy=strategy,
            options=options,
            fault_seed=fault_seed,
        )

    def _resolve(self, strategy: Union[str, Strategy]) -> Strategy:
        if isinstance(strategy, Strategy):
            return strategy
        return self.registry.create(strategy)

    def parse(self, text: str) -> Query:
        """Parse an SQL/X query string against the global schema."""
        from repro.sqlx import parse_query

        return parse_query(text)

    def ensure_signatures(self) -> None:
        """Build the signature catalog now if it is absent.

        Signature strategies (BL-S/PL-S) need the catalog; without this
        call the engine builds it implicitly on first use and records a
        ``signatures.build`` event on that report.  The catalog is part
        of the shared federation: it is built once and reused by every
        session.
        """
        self.system.ensure_signatures()

    def _fault_context(
        self, options: ExecutionOptions
    ) -> Optional[ExecutionContext]:
        """The execution's fault context, or None when faults are off.

        A ``None`` context is load-bearing: strategies then run their
        original two-argument code path, so fault-free executions are
        byte-identical to the pre-fault-layer engine.
        """
        if not options.faults_active:
            return None
        return ExecutionContext(
            options.fault_plan,
            options.policy,
            seed=options.fault_seed,
            failover=options.failover,
            batch_checks=options.batch_checks,
            columnar=options.columnar,
            planner=options.planner,
            conditions=options.conditions,
        )

    def _run(
        self,
        query: Union[Query, str],
        strategy: Optional[Union[str, Strategy]],
        options: ExecutionOptions,
        session: EngineSession,
    ) -> ExecutionReport:
        """One execution with fully-resolved options, on behalf of *session*.

        The chosen strategy instance is never mutated: a ``batch_checks``
        or ``columnar`` override rides the :class:`ExecutionContext` when
        one exists and a private copy of the strategy otherwise, so a
        Strategy shared between sessions is safe under interleaving.
        """
        query_text = query if isinstance(query, str) else str(query)
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            session.default_strategy
            if strategy is None
            else self._resolve(strategy)
        )
        if (
            chosen.batch_checks != options.batch_checks
            or chosen.columnar != options.columnar
            or chosen.planner != options.planner
            or chosen.conditions != options.conditions
        ):
            chosen = copy.copy(chosen)
            chosen.batch_checks = options.batch_checks
            chosen.columnar = options.columnar
            chosen.planner = options.planner
            chosen.conditions = options.conditions
        built_signatures = False
        if getattr(chosen, "use_signatures", False) and self.system.signatures is None:
            self.system.build_signatures()
            built_signatures = True
        # Epoch pinning: the execution runs synchronously against the
        # federation state *now*, so snapshotting the flux view here is
        # what "pinned to schema_epoch" means — the controller only
        # advances between executions (sim-kernel grants are atomic).
        evo = self.system.evolution
        flux = evo.in_flux_view() if evo is not None else None
        if flux is not None and flux.departed_sites:
            options = _with_departed_outages(options, flux.departed_sites)
        ctx = self._fault_context(options)
        if ctx is not None and ctx.health is not None and flux is not None:
            for site in flux.departed_sites:
                # Formal leave: suppress contact ladders immediately.
                ctx.health.force_open(site)
        cache_before = self.system.cache_stats()
        with self.system.cache_scope(session.name):
            if ctx is None:
                result = chosen.execute(self.system, query)
            else:
                result = chosen.execute(self.system, query, ctx)
        demoted, flux_labels = 0, []
        if evo is not None:
            if flux is not None and flux.active:
                demoted, flux_labels = _demote_uncertified(
                    result.results,
                    query,
                    flux,
                    epoch=self.system.schema_epoch,
                    conditions=options.conditions,
                )
                if demoted:
                    result.metrics.certain_results = len(result.results.certain)
                    result.metrics.maybe_results = len(result.results.maybe)
            result.availability = dataclasses.replace(
                result.availability,
                schema_epoch=self.system.schema_epoch,
                epochs_straddled=flux.labels if flux is not None else (),
            )
        if options.conditions:
            # Mechanism ranking of whatever stayed maybe: genuinely
            # missing data (sampling-like) vs systematic loss (outages,
            # skipped checks, open schema windows).  Data only — the
            # counts surface through conditions_summary()/explain(), so
            # availability.summary() text stays byte-stable.
            from repro.conditions.algebra import rank_mechanisms

            sampling, systematic = rank_mechanisms(result.results)
            if sampling or systematic:
                result.availability = dataclasses.replace(
                    result.availability,
                    maybe_sampling=sampling,
                    maybe_systematic=systematic,
                )
        # Strategies do not see the cache layer; attribute the traffic
        # this execution generated (mapping-index + decomposition) to its
        # metrics before the lazy registry snapshot is built.
        cache_delta = self.system.cache_stats().delta(cache_before)
        result.metrics.work.cache_hits = cache_delta.hits
        result.metrics.work.cache_misses = cache_delta.misses
        session.note_execution(cache_delta)
        if ctx is not None:
            # Trace-fed planning: fold this execution's observed stalls,
            # breaker transitions and span queue delays into the shared
            # feedback store.  Collected regardless of planner mode (so
            # a later feedback-mode AUTO pick benefits from every prior
            # execution); consumed only under feedback/full.
            self.system.planner_feedback.observe_execution(
                ctx, result.metrics, self.system.global_site
            )
        report = ExecutionReport.from_result(result, query_text=query_text)
        if built_signatures:
            report.record_event(TraceEvent.of(
                "signatures.build",
                implicit=True,
                strategy=chosen.name,
                hint="call engine.ensure_signatures() to build up front",
            ))
        if evo is not None:
            report.record_event(TraceEvent.of(
                "evolution.epoch",
                epoch=self.system.schema_epoch,
                in_flux=bool(flux is not None and flux.active),
                straddled=",".join(flux.labels) if flux is not None else "",
            ))
            if demoted:
                report.record_event(TraceEvent.of(
                    "evolution.straddle",
                    demoted=demoted,
                    windows=",".join(flux_labels),
                ))
        if ctx is not None:
            report.record_event(TraceEvent.of(
                "faults.plan",
                outages=len(ctx.plan.outages),
                links=len(ctx.plan.links),
                policy=ctx.policy.name,
                seed=ctx.injector.seed,
                complete=ctx.complete,
                failover=ctx.failover,
            ))
            if ctx.health is not None and ctx.health.transitions:
                for site, from_state, to_state in ctx.health.transitions:
                    report.record_event(TraceEvent.of(
                        "fault.breaker",
                        site=site,
                        from_state=from_state,
                        to_state=to_state,
                    ))
        return report

    def execute(
        self,
        query: Union[Query, str],
        strategy: Optional[Union[str, Strategy]] = None,
        options: Optional[ExecutionOptions] = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
        policy: Union[str, ExecutionPolicy, None] = None,
        fault_seed: Optional[int] = None,
        batch_checks: Optional[bool] = None,
        failover: Optional[bool] = None,
    ) -> ExecutionReport:
        """Run *query* (Query object or SQL/X text) once.

        Returns an :class:`ExecutionReport`: the answer plus metrics
        (it still quacks like the old ``StrategyResult``), with
        ``.trace``, ``.registry`` and ``.utilization`` views derived
        from the same run.

        *options* overrides the engine-wide :class:`ExecutionOptions`
        for this execution only.  The individual *fault_plan* / *policy*
        / *fault_seed* / *batch_checks* / *failover* kwargs are a
        deprecated shim for the same thing.

        Raises:
            UnavailableError: a site stayed unreachable under a
                fail-fast policy.
            ExecutionTimeout: cumulative fault waits exceeded the
                policy's deadline.
        """
        effective = _merge_legacy(
            "execute", options, self.options,
            {
                "fault_plan": fault_plan,
                "policy": policy,
                "fault_seed": fault_seed,
                "batch_checks": batch_checks,
                "failover": failover,
            },
        )
        return self._run(query, strategy, effective, self._root_session)

    def recertify(
        self,
        report: ExecutionReport,
        options: Optional[ExecutionOptions] = None,
    ) -> ExecutionReport:
        """Incrementally repair a degraded *report* against the
        federation as it stands now.

        Only the sites named in the report's outstanding conditions and
        repair state are re-contacted; everything the original execution
        already collected (local results, check verdicts) is reused, and
        re-certification runs over the merged evidence.  Promotion is
        monotone — a repaired answer never demotes a row the original
        certified — and a fully healed federation repairs the answer to
        the fault-free baseline byte for byte, at a fraction of a
        re-execution's message cost.

        *options* describes the federation's health *during the repair*
        (default: no fault plan, i.e. fully healed).  Pass a narrower
        fault plan to model a partial recovery: atoms naming still-down
        sites stay outstanding and the returned report remains
        repairable — call :meth:`recertify` again as more sites return.

        Raises:
            RepairError: the report carries no repair state (it was
                produced with ``conditions=False``), or repair would
                demote a certified row.
        """
        from repro.conditions.recertify import ReCertifier

        effective = options if options is not None else ExecutionOptions()
        ctx = self._fault_context(effective)
        return ReCertifier(self.system, ctx=ctx).repair(report)

    def explain(
        self,
        query: Union[Query, str, ExecutionReport],
        strategy: Optional[Union[str, Strategy]] = None,
        width: int = 48,
    ) -> str:
        """Render an execution's schedule as text.

        Pass an :class:`ExecutionReport` to render a run you already
        have — nothing is executed.  Pass a query (text or
        :class:`Query`) and it is executed exactly once, then rendered
        from that single run's report.
        """
        if isinstance(query, ExecutionReport):
            return query.explain(width=width)
        return self.execute(query, strategy).explain(width=width)

    def compare(
        self,
        query: Union[Query, str],
        strategies: Optional[Sequence[Union[str, Strategy]]] = None,
        check_agreement: bool = True,
        options: Optional[ExecutionOptions] = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
        policy: Union[str, ExecutionPolicy, None] = None,
        fault_seed: Optional[int] = None,
        batch_checks: Optional[bool] = None,
        failover: Optional[bool] = None,
    ) -> Dict[str, ExecutionReport]:
        """Execute *query* under several strategies (default: CA, BL, PL).

        With ``check_agreement`` (the default) a :class:`ReproError` is
        raised if any two strategies return different answers — they
        implement the same query semantics and may only differ in cost.
        Under an active fault plan the check relaxes to
        *completeness-aware agreement*: complete executions must agree
        exactly, and every incomplete (degraded) execution may only
        certify a subset of what a complete one certifies — degradation
        must never add certainty.

        *options* (or the deprecated individual kwargs) applies to every
        strategy's execution.
        """
        effective = _merge_legacy(
            "compare", options, self.options,
            {
                "fault_plan": fault_plan,
                "policy": policy,
                "fault_seed": fault_seed,
                "batch_checks": batch_checks,
                "failover": failover,
            },
        )
        return self._root_session.compare(
            query,
            strategies=strategies,
            check_agreement=check_agreement,
            options=effective,
        )

    @staticmethod
    def _check_agreement(outcomes: Dict[str, ExecutionReport]) -> None:
        complete = {
            name: report
            for name, report in outcomes.items()
            if report.availability.complete
        }
        names = list(complete)
        baseline = complete[names[0]] if names else None
        for name in names[1:]:
            if not same_answers(baseline.results, complete[name].results):
                raise ReproError(
                    f"strategies {names[0]} and {name} disagree: "
                    f"{baseline.results.summary()} vs "
                    f"{complete[name].results.summary()}"
                )
        if baseline is None:
            # All executions degraded: nothing to anchor agreement on.
            return
        for name, report in outcomes.items():
            if report.availability.complete:
                continue
            if not certified_subset(report.results, baseline.results):
                raise ReproError(
                    f"degraded strategy {name} certified results the "
                    f"complete execution {names[0]} does not — "
                    "degradation added certainty"
                )
