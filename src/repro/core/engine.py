"""The public query engine facade.

:class:`GlobalQueryEngine` is the main entry point for library users: it
accepts a :class:`~repro.core.query.Query` (or an SQL/X string), executes
it with a chosen strategy, and returns the answer plus metrics.  It also
runs head-to-head strategy comparisons, which is how the paper's
experiments are driven.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.query import Query
from repro.core.results import same_answers
from repro.core.strategies import (
    PAPER_STRATEGIES,
    Strategy,
    StrategyResult,
    strategy_by_name,
)
from repro.core.system import DistributedSystem
from repro.errors import ReproError


class GlobalQueryEngine:
    """Executes global queries against a federation."""

    def __init__(
        self,
        system: DistributedSystem,
        default_strategy: Union[str, Strategy] = "BL",
    ) -> None:
        self.system = system
        self.default_strategy = self._resolve(default_strategy)

    @staticmethod
    def _resolve(strategy: Union[str, Strategy]) -> Strategy:
        if isinstance(strategy, Strategy):
            return strategy
        return strategy_by_name(strategy)

    def parse(self, text: str) -> Query:
        """Parse an SQL/X query string against the global schema."""
        from repro.sqlx import parse_query

        return parse_query(text)

    def execute(
        self,
        query: Union[Query, str],
        strategy: Optional[Union[str, Strategy]] = None,
    ) -> StrategyResult:
        """Run *query* (Query object or SQL/X text) and return the answer.

        Signature strategies require :meth:`DistributedSystem
        .build_signatures` to have been called; the engine does it on
        demand.
        """
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            self.default_strategy if strategy is None else self._resolve(strategy)
        )
        if getattr(chosen, "use_signatures", False) and self.system.signatures is None:
            self.system.build_signatures()
        return chosen.execute(self.system, query)

    def explain(
        self,
        query: Union[Query, str],
        strategy: Optional[Union[str, Strategy]] = None,
        width: int = 48,
    ) -> str:
        """Execute *query* and render the simulated schedule as text.

        Returns a report with the answer summary, the per-phase busy
        times, and a timeline of every scheduled activity/transfer —
        useful for seeing *where* a strategy spends its time (e.g. PL's
        checks overlapping local evaluation).
        """
        from repro.sim.trace import format_timeline, phase_summary

        outcome = self.execute(query, strategy)
        metrics = outcome.metrics
        header = (
            f"strategy {metrics.strategy}: "
            f"{outcome.results.summary()}; "
            f"total={metrics.total_time * 1000:.3f} ms, "
            f"response={metrics.response_time * 1000:.3f} ms"
        )
        return "\n".join(
            [
                header,
                "",
                phase_summary(metrics.trace),
                "",
                format_timeline(metrics.trace, width=width),
            ]
        )

    def compare(
        self,
        query: Union[Query, str],
        strategies: Optional[Sequence[Union[str, Strategy]]] = None,
        check_agreement: bool = True,
    ) -> Dict[str, StrategyResult]:
        """Execute *query* under several strategies (default: CA, BL, PL).

        With ``check_agreement`` (the default) a :class:`ReproError` is
        raised if any two strategies return different answers — they
        implement the same query semantics and may only differ in cost.
        """
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            [cls() for cls in PAPER_STRATEGIES]
            if strategies is None
            else [self._resolve(s) for s in strategies]
        )
        outcomes: Dict[str, StrategyResult] = {}
        for strategy in chosen:
            outcomes[strategy.name] = self.execute(query, strategy)
        if check_agreement and len(outcomes) > 1:
            names = list(outcomes)
            baseline = outcomes[names[0]]
            for name in names[1:]:
                if not same_answers(baseline.results, outcomes[name].results):
                    raise ReproError(
                        f"strategies {names[0]} and {name} disagree: "
                        f"{baseline.results.summary()} vs "
                        f"{outcomes[name].results.summary()}"
                    )
        return outcomes
