"""The public query engine facade.

:class:`GlobalQueryEngine` is the main entry point for library users: it
accepts a :class:`~repro.core.query.Query` (or an SQL/X string), executes
it with a chosen strategy, and returns a unified
:class:`~repro.core.report.ExecutionReport` — the answer, the metrics,
the span trace (with Chrome-trace / JSONL / Gantt exporters) and the
per-site utilization profile of that one execution.  ``explain()`` and
``compare()`` consume the same report object, so rendering a schedule
never re-runs the query.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.core.query import Query
from repro.core.report import ExecutionReport
from repro.core.results import same_answers
from repro.core.strategies import DEFAULT_REGISTRY, Strategy
from repro.core.strategies.registry import StrategyRegistry
from repro.core.system import DistributedSystem
from repro.errors import ReproError
from repro.obs.spans import TraceEvent


class GlobalQueryEngine:
    """Executes global queries against a federation."""

    def __init__(
        self,
        system: DistributedSystem,
        default_strategy: Union[str, Strategy] = "BL",
        registry: Optional[StrategyRegistry] = None,
    ) -> None:
        self.system = system
        self.registry = registry or DEFAULT_REGISTRY
        self.default_strategy = self._resolve(default_strategy)

    def _resolve(self, strategy: Union[str, Strategy]) -> Strategy:
        if isinstance(strategy, Strategy):
            return strategy
        return self.registry.create(strategy)

    def parse(self, text: str) -> Query:
        """Parse an SQL/X query string against the global schema."""
        from repro.sqlx import parse_query

        return parse_query(text)

    def ensure_signatures(self) -> None:
        """Build the signature catalog now if it is absent.

        Signature strategies (BL-S/PL-S) need the catalog; without this
        call the engine builds it implicitly on first use and records a
        ``signatures.build`` event on that report.
        """
        self.system.ensure_signatures()

    def execute(
        self,
        query: Union[Query, str],
        strategy: Optional[Union[str, Strategy]] = None,
    ) -> ExecutionReport:
        """Run *query* (Query object or SQL/X text) once.

        Returns an :class:`ExecutionReport`: the answer plus metrics
        (it still quacks like the old ``StrategyResult``), with
        ``.trace``, ``.registry`` and ``.utilization`` views derived
        from the same run.
        """
        query_text = query if isinstance(query, str) else ""
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            self.default_strategy if strategy is None else self._resolve(strategy)
        )
        built_signatures = False
        if getattr(chosen, "use_signatures", False) and self.system.signatures is None:
            self.system.build_signatures()
            built_signatures = True
        report = ExecutionReport.from_result(
            chosen.execute(self.system, query), query_text=query_text
        )
        if built_signatures:
            report.record_event(TraceEvent.of(
                "signatures.build",
                implicit=True,
                strategy=chosen.name,
                hint="call engine.ensure_signatures() to build up front",
            ))
        return report

    def explain(
        self,
        query: Union[Query, str, ExecutionReport],
        strategy: Optional[Union[str, Strategy]] = None,
        width: int = 48,
    ) -> str:
        """Render an execution's schedule as text.

        Pass an :class:`ExecutionReport` to render a run you already
        have — nothing is executed.  Pass a query (text or
        :class:`Query`) and it is executed exactly once, then rendered
        from that single run's report.
        """
        if isinstance(query, ExecutionReport):
            return query.explain(width=width)
        return self.execute(query, strategy).explain(width=width)

    def compare(
        self,
        query: Union[Query, str],
        strategies: Optional[Sequence[Union[str, Strategy]]] = None,
        check_agreement: bool = True,
    ) -> Dict[str, ExecutionReport]:
        """Execute *query* under several strategies (default: CA, BL, PL).

        With ``check_agreement`` (the default) a :class:`ReproError` is
        raised if any two strategies return different answers — they
        implement the same query semantics and may only differ in cost.
        """
        if isinstance(query, str):
            query = self.parse(query)
        chosen = (
            [info.create() for info in self.registry.infos(paper_only=True)]
            if strategies is None
            else [self._resolve(s) for s in strategies]
        )
        outcomes: Dict[str, ExecutionReport] = {}
        for strategy in chosen:
            outcomes[strategy.name] = self.execute(query, strategy)
        if check_agreement and len(outcomes) > 1:
            names = list(outcomes)
            baseline = outcomes[names[0]]
            for name in names[1:]:
                if not same_answers(baseline.results, outcomes[name].results):
                    raise ReproError(
                        f"strategies {names[0]} and {name} disagree: "
                        f"{baseline.results.summary()} vs "
                        f"{outcomes[name].results.summary()}"
                    )
        return outcomes
