"""Global query answers: certain and maybe results.

A query over missing data has a two-part answer (paper, Section 1):
**certain results**, whose predicates are all TRUE, and **maybe results**,
which satisfy every evaluable predicate but have at least one UNKNOWN
predicate caused by missing data.  Presenting both gives the user "more
informative answers".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.query import Path, Predicate
from repro.objectdb.ids import GOid
from repro.objectdb.values import NULL, Value, is_null


class ResultKind(enum.Enum):
    CERTAIN = "certain"
    MAYBE = "maybe"


@dataclass
class GlobalResult:
    """One answer object of a global query.

    Attributes:
        goid: the real-world entity answered.
        kind: certain or maybe.
        bindings: target path -> value (NULL when the data is missing
            everywhere in the federation).
        unsolved: for maybe results, the global predicates whose truth is
            still UNKNOWN after all certification.
    """

    goid: GOid
    kind: ResultKind
    bindings: Dict[Path, Value] = field(default_factory=dict)
    unsolved: Tuple[Predicate, ...] = ()
    #: Degradation annotations ("uncertified: site DB2 unavailable") —
    #: why this row is weaker than a fault-free execution would make it.
    notes: Tuple[str, ...] = ()

    @property
    def is_certain(self) -> bool:
        return self.kind is ResultKind.CERTAIN

    def value(self, target: Path) -> Value:
        return self.bindings.get(target, NULL)

    def row(self, targets: Iterable[Path]) -> Tuple[Value, ...]:
        """Project this result on *targets*, in order."""
        return tuple(self.bindings.get(t, NULL) for t in targets)


@dataclass
class ResultSet:
    """The full answer of a global query."""

    targets: Tuple[Path, ...] = ()
    certain: List[GlobalResult] = field(default_factory=list)
    maybe: List[GlobalResult] = field(default_factory=list)

    def add(self, result: GlobalResult) -> None:
        if result.is_certain:
            self.certain.append(result)
        else:
            self.maybe.append(result)

    def __len__(self) -> int:
        return len(self.certain) + len(self.maybe)

    def all_results(self) -> List[GlobalResult]:
        return list(self.certain) + list(self.maybe)

    def certain_rows(self) -> List[Tuple[Value, ...]]:
        """Sorted projected rows of the certain results."""
        return sorted(
            (r.row(self.targets) for r in self.certain), key=_row_key
        )

    def maybe_rows(self) -> List[Tuple[Value, ...]]:
        """Sorted projected rows of the maybe results."""
        return sorted((r.row(self.targets) for r in self.maybe), key=_row_key)

    def find(self, goid: GOid) -> Optional[GlobalResult]:
        for result in self.all_results():
            if result.goid == goid:
                return result
        return None

    def sort(self) -> "ResultSet":
        """Normalize ordering (by GOid) for comparisons in tests."""
        self.certain.sort(key=lambda r: r.goid)
        self.maybe.sort(key=lambda r: r.goid)
        return self

    def summary(self) -> str:
        return (
            f"{len(self.certain)} certain, {len(self.maybe)} maybe "
            f"result(s)"
        )

    # --- export -------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        """Export every result as a plain dict (JSON-friendly values).

        Each dict carries the entity's GOid, its kind, one key per target
        path (NULL exported as ``None``, multi-values as sorted lists)
        and, for maybe results, the unsolved predicates as strings.
        """
        from repro.objectdb.values import MultiValue

        rows: List[Dict[str, object]] = []
        for result in self.all_results():
            row: Dict[str, object] = {
                "goid": result.goid.value,
                "kind": result.kind.value,
            }
            for target in self.targets:
                value = result.value(target)
                if is_null(value):
                    exported: object = None
                elif isinstance(value, MultiValue):
                    exported = sorted(value, key=repr)
                else:
                    exported = value
                row[str(target)] = exported
            if result.unsolved:
                row["unsolved"] = [str(p) for p in result.unsolved]
            if result.notes:
                row["notes"] = list(result.notes)
            rows.append(row)
        return rows

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dicts` export as a JSON string."""
        import json

        return json.dumps(self.to_dicts(), indent=indent, default=str)


@dataclass(frozen=True)
class Availability:
    """How much of the federation one execution actually reached.

    Fault-free executions carry the default (complete) annotation; a
    degraded execution records which sites were skipped, how often links
    were retried, and how much simulated time was burned waiting.
    """

    complete: bool = True
    sites_contacted: Tuple[str, ...] = ()
    sites_skipped: Tuple[str, ...] = ()
    #: (site, retry count) for links that succeeded only after retries.
    retries: Tuple[Tuple[str, int], ...] = ()
    checks_skipped: int = 0
    messages_lost: int = 0
    fault_wait_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "complete": self.complete,
            "sites_contacted": list(self.sites_contacted),
            "sites_skipped": list(self.sites_skipped),
            "retries": {site: count for site, count in self.retries},
            "checks_skipped": self.checks_skipped,
            "messages_lost": self.messages_lost,
            "fault_wait_s": self.fault_wait_s,
        }

    def summary(self) -> str:
        if self.complete and not self.retries and not self.messages_lost:
            return "complete"
        parts = ["complete" if self.complete else "INCOMPLETE"]
        if self.sites_skipped:
            parts.append(f"skipped={','.join(self.sites_skipped)}")
        if self.retries:
            parts.append(
                "retries=" + ",".join(f"{s}:{n}" for s, n in self.retries)
            )
        if self.checks_skipped:
            parts.append(f"checks_skipped={self.checks_skipped}")
        if self.messages_lost:
            parts.append(f"lost={self.messages_lost}")
        if self.fault_wait_s:
            parts.append(f"waited={self.fault_wait_s:.3f}s")
        return " ".join(parts)


def certified_subset(degraded: ResultSet, full: ResultSet) -> bool:
    """True when *degraded* certifies no GOid that *full* does not.

    The soundness contract of degradation: losing a site may demote
    certain results to maybe (or drop rows), but must never *add*
    certainty that the complete execution lacks.
    """
    degraded_certain = {r.goid for r in degraded.certain}
    full_certain = {r.goid for r in full.certain}
    return degraded_certain <= full_certain


def _row_key(row: Tuple[Value, ...]) -> Tuple:
    """Sort key tolerant of NULLs and mixed types."""
    return tuple((is_null(v), str(type(v).__name__), str(v)) for v in row)


def same_answers(left: ResultSet, right: ResultSet) -> bool:
    """True when two result sets contain the same certain and maybe GOids.

    Strategy-equivalence check: CA, BL and PL must compute identical
    answers; only their costs differ.
    """
    left_certain = {r.goid for r in left.certain}
    right_certain = {r.goid for r in right.certain}
    left_maybe = {r.goid for r in left.maybe}
    right_maybe = {r.goid for r in right.maybe}
    return left_certain == right_certain and left_maybe == right_maybe
