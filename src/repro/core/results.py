"""Global query answers: certain and maybe results.

A query over missing data has a two-part answer (paper, Section 1):
**certain results**, whose predicates are all TRUE, and **maybe results**,
which satisfy every evaluable predicate but have at least one UNKNOWN
predicate caused by missing data.  Presenting both gives the user "more
informative answers".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.query import Path, Predicate
from repro.objectdb.ids import GOid
from repro.objectdb.values import NULL, Value, is_null


class ResultKind(enum.Enum):
    CERTAIN = "certain"
    MAYBE = "maybe"


def export_value(value: Value) -> object:
    """Convert a binding value into a plain JSON-serializable object.

    NULL becomes ``None``, a :class:`MultiValue` becomes the sorted list
    of its exported members, identifiers (LOid/GOid) become their string
    form, and JSON primitives pass through unchanged.  The output never
    needs ``json.dumps(..., default=...)`` and is stable across runs, so
    it doubles as the canonical form for determinism digests.
    """
    from repro.objectdb.ids import GOid, LOid
    from repro.objectdb.values import MultiValue

    if is_null(value):
        return None
    if isinstance(value, MultiValue):
        members = [export_value(m) for m in value]
        return sorted(members, key=lambda m: (str(type(m).__name__), str(m)))
    if isinstance(value, (LOid, GOid)):
        return str(value)
    if isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass
class GlobalResult:
    """One answer object of a global query.

    Attributes:
        goid: the real-world entity answered.
        kind: certain or maybe.
        bindings: target path -> value (NULL when the data is missing
            everywhere in the federation).
        unsolved: for maybe results, the global predicates whose truth is
            still UNKNOWN after all certification.
    """

    goid: GOid
    kind: ResultKind
    bindings: Dict[Path, Value] = field(default_factory=dict)
    unsolved: Tuple[Predicate, ...] = ()
    #: Degradation annotations ("uncertified: site DB2 unavailable") —
    #: why this row is weaker than a fault-free execution would make it.
    notes: Tuple[str, ...] = ()
    #: Discharge conditions (repro.conditions atoms, implicit
    #: conjunction): what must clear before this row can be promoted.
    #: Provenance only — excluded from equality and from every export,
    #: so answers compare and serialize exactly as before.
    conditions: Tuple[object, ...] = field(default=(), compare=False)

    @property
    def is_certain(self) -> bool:
        return self.kind is ResultKind.CERTAIN

    def value(self, target: Path) -> Value:
        return self.bindings.get(target, NULL)

    def row(self, targets: Iterable[Path]) -> Tuple[Value, ...]:
        """Project this result on *targets*, in order."""
        return tuple(self.bindings.get(t, NULL) for t in targets)


@dataclass
class ResultSet:
    """The full answer of a global query."""

    targets: Tuple[Path, ...] = ()
    certain: List[GlobalResult] = field(default_factory=list)
    maybe: List[GlobalResult] = field(default_factory=list)

    def add(self, result: GlobalResult) -> None:
        if result.is_certain:
            self.certain.append(result)
        else:
            self.maybe.append(result)

    def __len__(self) -> int:
        return len(self.certain) + len(self.maybe)

    def all_results(self) -> List[GlobalResult]:
        return list(self.certain) + list(self.maybe)

    def certain_rows(self) -> List[Tuple[Value, ...]]:
        """Sorted projected rows of the certain results."""
        return sorted(
            (r.row(self.targets) for r in self.certain), key=_row_key
        )

    def maybe_rows(self) -> List[Tuple[Value, ...]]:
        """Sorted projected rows of the maybe results."""
        return sorted((r.row(self.targets) for r in self.maybe), key=_row_key)

    def find(self, goid: GOid) -> Optional[GlobalResult]:
        for result in self.all_results():
            if result.goid == goid:
                return result
        return None

    def sort(self) -> "ResultSet":
        """Normalize ordering (by GOid) for comparisons in tests."""
        self.certain.sort(key=lambda r: r.goid)
        self.maybe.sort(key=lambda r: r.goid)
        return self

    def summary(self) -> str:
        return (
            f"{len(self.certain)} certain, {len(self.maybe)} maybe "
            f"result(s)"
        )

    # --- export -------------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        """Export every result as a plain dict (JSON-friendly values).

        Each dict carries the entity's GOid, its kind, one key per target
        path (NULL exported as ``None``, multi-values as sorted lists)
        and, for maybe results, the unsolved predicates as strings.
        """
        rows: List[Dict[str, object]] = []
        for result in self.all_results():
            row: Dict[str, object] = {
                "goid": result.goid.value,
                "kind": result.kind.value,
            }
            for target in self.targets:
                row[str(target)] = export_value(result.value(target))
            if result.unsolved:
                row["unsolved"] = [str(p) for p in result.unsolved]
            if result.notes:
                row["notes"] = list(result.notes)
            rows.append(row)
        return rows

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dicts` export as a JSON string.

        Every value is converted by :func:`export_value` first, so the
        dump needs no ``default=`` escape hatch and the text round-trips:
        ``json.loads(rs.to_json()) == rs.to_dicts()``.
        """
        import json

        return json.dumps(self.to_dicts(), indent=indent)


@dataclass(frozen=True)
class Availability:
    """How much of the federation one execution actually reached.

    Fault-free executions carry the default (complete) annotation; a
    degraded execution records which sites were skipped, how often links
    were retried, and how much simulated time was burned waiting.
    """

    complete: bool = True
    sites_contacted: Tuple[str, ...] = ()
    sites_skipped: Tuple[str, ...] = ()
    #: (site, retry count) for links that succeeded only after retries.
    retries: Tuple[Tuple[str, int], ...] = ()
    checks_skipped: int = 0
    messages_lost: int = 0
    fault_wait_s: float = 0.0
    #: Check requests rerouted over the global-site relay (failover).
    checks_failed_over: int = 0
    #: Hedge races fired / won by the relay route.
    hedges: int = 0
    hedges_won: int = 0
    #: True when failover neutralized every injected fault: the answer
    #: is byte-identical to the fault-free baseline even though some
    #: links were down (``complete`` stays False — links *were* lost).
    fully_recovered: bool = False
    #: Queried sites whose whole block dropped (unrecoverable loss).
    queried_sites_down: Tuple[str, ...] = ()
    #: (site, breaker state) for sites not in the default closed state.
    breaker: Tuple[Tuple[str, str], ...] = ()
    #: Contacts suppressed by open circuit breakers (ladders not paid).
    contacts_suppressed: int = 0
    #: Federation evolution epoch the execution was pinned to (0 for a
    #: frozen federation).
    schema_epoch: int = 0
    #: Labels of evolution windows open while this query executed —
    #: non-empty means the answer straddled schema/membership
    #: propagation and is covered by the flux consistency contract.
    epochs_straddled: Tuple[str, ...] = ()
    #: Missingness-mechanism ranking of the maybe rows (Bertossi,
    #: arXiv:2604.06520): rows blocked only by genuine nulls (sampling —
    #: no recovery certifies them) vs rows a heal can discharge
    #: (systematic: site down, unchecked copy, open flux window).
    #: Surfaced via ``explain``; deliberately absent from to_dict() and
    #: summary() so committed baselines stay byte-stable.
    maybe_sampling: int = 0
    maybe_systematic: int = 0

    @property
    def certification_intact(self) -> bool:
        """The answer provably matches a fault-free execution."""
        return self.complete or self.fully_recovered

    def to_dict(self) -> Dict[str, object]:
        # A site may appear once per retried link; a plain dict
        # comprehension would keep only the last link's count, so the
        # export aggregates (sums) retry counts per site.
        retry_totals: Dict[str, int] = {}
        for site, count in self.retries:
            retry_totals[site] = retry_totals.get(site, 0) + count
        return {
            "complete": self.complete,
            "sites_contacted": list(self.sites_contacted),
            "sites_skipped": list(self.sites_skipped),
            "retries": retry_totals,
            "checks_skipped": self.checks_skipped,
            "messages_lost": self.messages_lost,
            "fault_wait_s": self.fault_wait_s,
            "checks_failed_over": self.checks_failed_over,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "fully_recovered": self.fully_recovered,
            "queried_sites_down": list(self.queried_sites_down),
            "breaker": {site: state for site, state in self.breaker},
            "contacts_suppressed": self.contacts_suppressed,
            "schema_epoch": self.schema_epoch,
            "epochs_straddled": list(self.epochs_straddled),
        }

    def summary(self) -> str:
        if (
            self.complete
            and not self.retries
            and not self.messages_lost
            and not self.epochs_straddled
        ):
            return "complete"
        parts = ["complete" if self.complete else "INCOMPLETE"]
        if self.epochs_straddled:
            parts.append(f"straddled={','.join(self.epochs_straddled)}")
        if self.fully_recovered and not self.complete:
            parts.append("recovered")
        if self.sites_skipped:
            parts.append(f"skipped={','.join(self.sites_skipped)}")
        if self.retries:
            parts.append(
                "retries=" + ",".join(f"{s}:{n}" for s, n in self.retries)
            )
        if self.checks_skipped:
            parts.append(f"checks_skipped={self.checks_skipped}")
        if self.checks_failed_over:
            parts.append(f"failover={self.checks_failed_over}")
        if self.hedges:
            parts.append(f"hedges={self.hedges_won}/{self.hedges}")
        if self.breaker:
            parts.append(
                "breaker=" + ",".join(f"{s}:{b}" for s, b in self.breaker)
            )
        if self.messages_lost:
            parts.append(f"lost={self.messages_lost}")
        if self.fault_wait_s:
            parts.append(f"waited={self.fault_wait_s:.3f}s")
        return " ".join(parts)


def certified_subset(degraded: ResultSet, full: ResultSet) -> bool:
    """True when *degraded* certifies no GOid that *full* does not.

    The soundness contract of degradation: losing a site may demote
    certain results to maybe (or drop rows), but must never *add*
    certainty that the complete execution lacks.
    """
    degraded_certain = {r.goid for r in degraded.certain}
    full_certain = {r.goid for r in full.certain}
    return degraded_certain <= full_certain


def _row_key(row: Tuple[Value, ...]) -> Tuple:
    """Sort key tolerant of NULLs and mixed types."""
    return tuple((is_null(v), str(type(v).__name__), str(v)) for v in row)


def _answer_key(results: ResultSet) -> Dict[GOid, Tuple]:
    """Per-GOid comparison key: kind, projected bindings, unsolved set."""
    key: Dict[GOid, Tuple] = {}
    for result in results.all_results():
        projected = tuple(
            export_value(result.value(t)) for t in results.targets
        )
        # Lists (exported MultiValues) are unhashable; re-freeze them.
        frozen = tuple(
            tuple(v) if isinstance(v, list) else v for v in projected
        )
        key[result.goid] = (
            result.kind,
            frozen,
            frozenset(str(p) for p in result.unsolved),
        )
    return key


def same_answers(left: ResultSet, right: ResultSet) -> bool:
    """True when two result sets are answer-equivalent, strictly.

    Strategy-equivalence check: CA, BL and PL must compute *identical*
    answers; only their costs differ (paper, Section 4).  Strict means:
    the same target list, the same GOids with the same kind
    (certain/maybe), the same projected binding for every target, and —
    for maybe results — the same set of unsolved predicates.  A strategy
    that certifies the right entities with the wrong values fails here;
    use :func:`same_entities` for the loose GOid-membership check.
    """
    if left.targets != right.targets:
        return False
    return _answer_key(left) == _answer_key(right)


def same_entities(left: ResultSet, right: ResultSet) -> bool:
    """True when two result sets contain the same certain and maybe GOids.

    The loose, membership-only check (the pre-difftest ``same_answers``
    semantics): bindings and unsolved predicates are ignored, so two
    executions that agree on *which* entities are certain/maybe but
    disagree on the returned values still pass.
    """
    left_certain = {r.goid for r in left.certain}
    right_certain = {r.goid for r in right.certain}
    left_maybe = {r.goid for r in left.maybe}
    right_maybe = {r.goid for r in right.maybe}
    return left_certain == right_certain and left_maybe == right_maybe
