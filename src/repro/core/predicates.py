"""Three-valued predicate evaluation over object graphs.

This module walks path expressions through stored objects (following
complex-attribute references) and evaluates predicates under Kleene 3VL:

* a predicate whose attribute is missing / null evaluates to UNKNOWN, and
  the evaluation records *where* the data was missing — which object holds
  the missing attribute.  That location is what the localized strategies
  need: a missing attribute on the root object makes the root *unsolved*,
  while a missing attribute on a branch object makes that branch object an
  *unsolved item* of the maybe result (paper, Section 2.3);
* a dangling or null intermediate reference also yields UNKNOWN, blamed on
  the object holding the null complex attribute.

Evaluation is generic over a *dereferencer* so that the same code serves
component databases (LOid references) and the integrated global extent
(GOid references).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.query import Conjunction, Op, Path, Predicate
from repro.core.tvl import TV, all3, any3, from_bool
from repro.errors import QueryError
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import IntegratedObject, LocalObject
from repro.objectdb.values import MultiValue, NULL, Value, is_null

AnyObject = Union[LocalObject, IntegratedObject]
Deref = Callable[[Union[LOid, GOid]], Optional[AnyObject]]


@dataclass
class EvalMeter:
    """Counts the work done during evaluation, for the cost model.

    Attributes:
        comparisons: number of value comparisons performed (charged at
            ``T_c`` by the simulator).
        derefs: number of object dereferences performed while walking
            path expressions.
    """

    comparisons: int = 0
    derefs: int = 0

    def merge(self, other: "EvalMeter") -> None:
        self.comparisons += other.comparisons
        self.derefs += other.derefs


@dataclass(frozen=True)
class MissingAt:
    """Where a path walk encountered missing data.

    Attributes:
        holder_id: identifier (LOid or GOid) of the object that lacks data.
        holder_class: class name of that object.
        attribute: the attribute that was missing or null.
        depth: index of the missing step within the path expression.
    """

    holder_id: Union[LOid, GOid]
    holder_class: str
    attribute: str
    depth: int


@dataclass(frozen=True)
class PathOutcome:
    """Result of walking a path expression from a root object."""

    value: Value
    missing: Optional[MissingAt] = None
    # Objects visited along the walk, root first (used to identify the
    # nested complex objects behind unsolved items).
    visited: Tuple[AnyObject, ...] = ()

    @property
    def is_missing(self) -> bool:
        return self.missing is not None


def compare_values(op: Op, value: Value, operand: Value, meter: Optional[EvalMeter] = None) -> TV:
    """Compare a stored value with a constant under 3VL.

    NULL (or an empty multi-value) yields UNKNOWN.  A multi-valued
    attribute satisfies a predicate existentially: the predicate is TRUE
    when any member satisfies it (the paper's multi-valued extension
    collects values from different component databases; an entity matches
    when any contributed value matches).
    """
    if meter is not None:
        meter.comparisons += 1
    if is_null(value):
        return TV.UNKNOWN
    if isinstance(value, MultiValue):
        if op is Op.CONTAINS:
            return from_bool(operand in value)
        if op is Op.NOT_CONTAINS:
            return from_bool(operand not in value)
        if meter is not None:
            # one comparison per member beyond the first, already counted
            meter.comparisons += max(0, len(value) - 1)
        return any3(_compare_scalar(op, member, operand) for member in value)
    if op in (Op.CONTAINS, Op.NOT_CONTAINS):
        raise QueryError(f"{op} requires a multi-valued attribute")
    return _compare_scalar(op, value, operand)


def batch_compare(
    op: Op,
    values: Sequence[Value],
    operand: Value,
    meter: Optional[EvalMeter] = None,
) -> List[TV]:
    """Compare a whole column of stored values with a constant in one pass.

    The batch kernel behind the columnar extent path: verdicts, meter
    charges, and raised exceptions are element-exact with calling
    :func:`compare_values` once per value in order — including the charge
    for the element that raises (``compare_values`` meters before it
    throws).  Nulls stay UNKNOWN (the 3VL missing marker); multi-values
    keep their existential semantics.
    """
    out: List[TV] = []
    append = out.append
    comparisons = 0
    is_eq = op is Op.EQ
    is_ne = op is Op.NE
    try:
        for value in values:
            comparisons += 1
            if is_null(value):
                append(TV.UNKNOWN)
            elif isinstance(value, MultiValue):
                if op is Op.CONTAINS:
                    append(from_bool(operand in value))
                elif op is Op.NOT_CONTAINS:
                    append(from_bool(operand not in value))
                else:
                    # one comparison per member beyond the first
                    comparisons += max(0, len(value) - 1)
                    append(
                        any3(
                            _compare_scalar(op, member, operand)
                            for member in value
                        )
                    )
            elif op in (Op.CONTAINS, Op.NOT_CONTAINS):
                raise QueryError(f"{op} requires a multi-valued attribute")
            elif is_eq:
                append(from_bool(value == operand))
            elif is_ne:
                append(from_bool(value != operand))
            else:
                append(_compare_scalar(op, value, operand))
    finally:
        if meter is not None:
            meter.comparisons += comparisons
    return out


def _compare_scalar(op: Op, value: Value, operand: Value) -> TV:
    if op is Op.EQ:
        return from_bool(value == operand)
    if op is Op.NE:
        return from_bool(value != operand)
    try:
        if op is Op.LT:
            return from_bool(value < operand)  # type: ignore[operator]
        if op is Op.LE:
            return from_bool(value <= operand)  # type: ignore[operator]
        if op is Op.GT:
            return from_bool(value > operand)  # type: ignore[operator]
        if op is Op.GE:
            return from_bool(value >= operand)  # type: ignore[operator]
    except TypeError:
        raise QueryError(
            f"cannot order-compare {value!r} with {operand!r}"
        ) from None
    raise QueryError(f"unsupported operator {op!r}")


def walk_path(
    root: AnyObject,
    path: Path,
    deref: Deref,
    meter: Optional[EvalMeter] = None,
) -> PathOutcome:
    """Walk *path* from *root*, following references via *deref*.

    Returns a :class:`PathOutcome`.  When an attribute along the way is
    null/missing, or an intermediate reference cannot be dereferenced, the
    outcome carries a :class:`MissingAt` naming the object and attribute
    that blocked the walk.
    """
    current: AnyObject = root
    visited: List[AnyObject] = [root]
    for depth, step in enumerate(path.steps):
        value = current.get(step)
        if is_null(value):
            ident = current.loid if isinstance(current, LocalObject) else current.goid
            return PathOutcome(
                value=NULL,
                missing=MissingAt(
                    holder_id=ident,
                    holder_class=current.class_name,
                    attribute=step,
                    depth=depth,
                ),
                visited=tuple(visited),
            )
        is_last = depth == len(path.steps) - 1
        if is_last:
            return PathOutcome(value=value, visited=tuple(visited))
        if not isinstance(value, (LOid, GOid)):
            raise QueryError(
                f"path {path}: step {step!r} holds non-reference "
                f"{value!r} but is not final"
            )
        if meter is not None:
            meter.derefs += 1
        next_obj = deref(value)
        if next_obj is None:
            # The reference leads outside this database (e.g. an LOid whose
            # object lives elsewhere) or dangles: data is missing here.
            ident = current.loid if isinstance(current, LocalObject) else current.goid
            return PathOutcome(
                value=NULL,
                missing=MissingAt(
                    holder_id=ident,
                    holder_class=current.class_name,
                    attribute=step,
                    depth=depth,
                ),
                visited=tuple(visited),
            )
        current = next_obj
        visited.append(current)
    raise AssertionError("unreachable: empty paths are rejected by Path")


@dataclass(frozen=True)
class PredicateOutcome:
    """Result of evaluating one predicate on one root object."""

    predicate: Predicate
    tv: TV
    missing: Optional[MissingAt] = None


def evaluate_predicate(
    root: AnyObject,
    predicate: Predicate,
    deref: Deref,
    meter: Optional[EvalMeter] = None,
) -> PredicateOutcome:
    """Evaluate *predicate* on *root* under 3VL."""
    walk = walk_path(root, predicate.path, deref, meter)
    if walk.is_missing:
        return PredicateOutcome(predicate=predicate, tv=TV.UNKNOWN, missing=walk.missing)
    tv = compare_values(predicate.op, walk.value, predicate.operand, meter)
    return PredicateOutcome(predicate=predicate, tv=tv)


@dataclass
class ConjunctionOutcome:
    """Result of evaluating a conjunction of predicates on one object.

    Attributes:
        tv: three-valued truth of the whole conjunction.
        outcomes: per-predicate outcomes (in predicate order).
        unsolved: outcomes of the predicates that evaluated UNKNOWN —
            the paper's *unsolved predicates* on this object.
    """

    tv: TV
    outcomes: Tuple[PredicateOutcome, ...] = ()

    @property
    def unsolved(self) -> Tuple[PredicateOutcome, ...]:
        return tuple(o for o in self.outcomes if o.tv is TV.UNKNOWN)


def evaluate_conjunction(
    root: AnyObject,
    predicates: Sequence[Predicate],
    deref: Deref,
    meter: Optional[EvalMeter] = None,
    short_circuit: bool = False,
) -> ConjunctionOutcome:
    """Evaluate a conjunction of predicates on *root*.

    With ``short_circuit`` a FALSE predicate stops evaluation early (used
    by the cost-aware local evaluation); without it every predicate is
    evaluated so that the full unsolved set is known.
    """
    outcomes: List[PredicateOutcome] = []
    for predicate in predicates:
        outcome = evaluate_predicate(root, predicate, deref, meter)
        outcomes.append(outcome)
        if short_circuit and outcome.tv is TV.FALSE:
            break
    tv = all3(o.tv for o in outcomes)
    return ConjunctionOutcome(tv=tv, outcomes=tuple(outcomes))


@dataclass
class DnfOutcome:
    """Result of evaluating a DNF ``Where`` clause on one object."""

    tv: TV
    conjunctions: Tuple[ConjunctionOutcome, ...] = ()

    @property
    def unsolved(self) -> Tuple[PredicateOutcome, ...]:
        """Unsolved predicates from UNKNOWN disjuncts.

        A disjunct that is FALSE contributes nothing (its missing data can
        no longer change the answer of that disjunct only if the disjunct
        is FALSE because some predicate is FALSE); a disjunct that is TRUE
        makes the whole clause TRUE, so nothing is unsolved.
        """
        if self.tv is not TV.UNKNOWN:
            return ()
        collected: List[PredicateOutcome] = []
        seen = set()
        for conj in self.conjunctions:
            if conj.tv is TV.UNKNOWN:
                for outcome in conj.unsolved:
                    if outcome.predicate not in seen:
                        seen.add(outcome.predicate)
                        collected.append(outcome)
        return tuple(collected)


def evaluate_dnf(
    root: AnyObject,
    where: Sequence[Conjunction],
    deref: Deref,
    meter: Optional[EvalMeter] = None,
) -> DnfOutcome:
    """Evaluate a DNF ``Where`` clause on *root* under 3VL.

    An empty clause is TRUE (no predicates).  The clause is TRUE when any
    disjunct is TRUE, FALSE when all are FALSE, UNKNOWN otherwise.
    """
    if not where:
        return DnfOutcome(tv=TV.TRUE)
    conj_outcomes = tuple(
        evaluate_conjunction(root, conj, deref, meter) for conj in where
    )
    tv = any3(c.tv for c in conj_outcomes)
    return DnfOutcome(tv=tv, conjunctions=conj_outcomes)
