"""Completing target bindings at the global site (localized strategies).

CA materializes every global class before evaluating, so a target value
present at *any* copy of an entity always lands in the answer.  The
localized strategies build their answers from per-site local result
rows, and a site can only bind what its own schema and its own data let
it walk: a nested reference the site cannot follow, or a value stored
only at another site's copy, leaves the merged binding NULL where CA
returns data — the answers would certify the same entities while
disagreeing on the returned values.

This module is the localized strategies' missing last step: after
certification, the global processing site (which holds the replicated
GOid mapping tables) fetches the still-missing target values from the
sites that have them, mirroring the outerjoin merge policy of
:mod:`repro.integration.outerjoin` exactly —

* contributors are visited in the global class's constituent order;
* single-valued attributes take the first non-null contribution;
* multi-valued global attributes collect *all* distinct contributed
  values into a :class:`~repro.objectdb.values.MultiValue` (even when a
  single site contributed — CA wraps those too);
* complex-attribute LOids translate to GOids, dangling references read
  as missing.

Under a fault plan, fetches to unreachable sites are skipped (the
binding stays NULL and the execution is marked incomplete), preserving
the degraded-answer soundness contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.query import Query
from repro.core.results import ResultSet
from repro.core.system import DistributedSystem
from repro.faults.injector import ExecutionContext
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.schema import AttributeDef
from repro.objectdb.values import MultiValue, NULL, Value, is_null


@dataclass
class ResolutionStats:
    """Work performed by one binding-completion pass (for the sim)."""

    #: Result rows whose bindings the pass touched.
    entities_resolved: int = 0
    #: GOid mapping-table probes.
    mapping_lookups: int = 0
    #: site -> attribute fetches served by that site.
    fetches_by_site: Dict[str, int] = field(default_factory=dict)
    #: Sites whose copies could not be consulted (fault plan).
    skipped_sites: List[str] = field(default_factory=list)
    #: Attribute merges whose outcome an unreachable copy could still
    #: change (the value settled before any skip is *not* counted: the
    #: fault-free walk would have stopped at the same contributor).
    unresolved: int = 0

    @property
    def fetches(self) -> int:
        return sum(self.fetches_by_site.values())


def resolve_missing_bindings(
    system: DistributedSystem,
    query: Query,
    answer: ResultSet,
    ctx: Optional[ExecutionContext] = None,
    stats: Optional[ResolutionStats] = None,
) -> ResolutionStats:
    """Fill the target bindings local evaluation could not produce.

    A binding is (re)computed through a federation-wide walk when it is
    still NULL after the per-site merge, or when the target's final
    attribute is multi-valued in the global schema (the local rows see
    only their own site's values; CA's answer is the union over all
    copies).  Values the sites already agreed on are left untouched.
    """
    stats = stats if stats is not None else ResolutionStats()
    schema = system.global_schema.schema
    for result in answer.all_results():
        touched = False
        for target in answer.targets:
            chain = schema.resolve_path(query.range_class, target.steps)
            current = result.bindings.get(target, NULL)
            if not chain[-1].multi_valued and not is_null(current):
                continue
            value = _global_walk(
                system, result.goid, query.range_class, target.steps,
                chain, ctx, stats,
            )
            if value != current:
                result.bindings[target] = value
                touched = True
        if touched:
            stats.entities_resolved += 1
    return stats


def _global_walk(
    system: DistributedSystem,
    goid: GOid,
    range_class: str,
    steps,
    chain: List[AttributeDef],
    ctx: Optional[ExecutionContext],
    stats: ResolutionStats,
) -> Value:
    """Walk a target path entity-by-entity across the whole federation."""
    current_goid = goid
    current_class = range_class
    for index, attr in enumerate(chain):
        merged = _merge_entity_attribute(
            system, current_class, current_goid, attr, ctx, stats
        )
        if index == len(chain) - 1:
            return merged
        if is_null(merged) or not isinstance(merged, GOid):
            return NULL
        current_goid = merged
        current_class = attr.domain  # type: ignore[assignment]
    return NULL  # pragma: no cover - chain is never empty


def _merge_entity_attribute(
    system: DistributedSystem,
    global_class: str,
    goid: GOid,
    attr: AttributeDef,
    ctx: Optional[ExecutionContext],
    stats: ResolutionStats,
) -> Value:
    """Merge one attribute across every copy of one entity.

    Mirrors :func:`repro.integration.outerjoin._merge_attribute`:
    constituent order, first-non-null for single-valued attributes, the
    distinct union for multi-valued ones, LOid->GOid translation with
    dangling references treated as missing.
    """
    table = system.catalog.table(global_class)
    stats.mapping_lookups += 1
    placements = table.loids_of(goid)
    collected: List[Value] = []
    skipped_here = False
    for db_name in system.global_schema.databases_of(global_class):
        loid = placements.get(db_name)
        if loid is None:
            continue
        if ctx is not None and not ctx.reachable(
            system.global_site, db_name
        ):
            if db_name not in stats.skipped_sites:
                stats.skipped_sites.append(db_name)
            skipped_here = True
            continue
        obj = system.db(db_name).get(loid)
        if obj is None:  # pragma: no cover - mapping implies presence
            continue
        stats.fetches_by_site[db_name] = (
            stats.fetches_by_site.get(db_name, 0) + 1
        )
        raw = obj.get(attr.name)
        if is_null(raw):
            continue
        members = list(raw) if isinstance(raw, MultiValue) else [raw]
        for member in members:
            if attr.is_complex:
                member = _translate(member, attr.domain, system, stats)
                if is_null(member):
                    continue
            collected.append(member)
        if collected and not attr.multi_valued:
            break  # first non-null contributor wins
    if skipped_here:
        # A skipped copy preceded (or prevented) the winning
        # contribution, so the merged value may differ from fault-free.
        stats.unresolved += 1
    if not collected:
        return NULL
    if attr.multi_valued:
        return MultiValue(collected)
    return collected[0]


def _translate(
    value: Union[Value, LOid, GOid],
    domain: Optional[str],
    system: DistributedSystem,
    stats: ResolutionStats,
) -> Value:
    """Rewrite a complex-attribute LOid to its entity's GOid."""
    if isinstance(value, GOid):
        return value
    if not isinstance(value, LOid) or domain is None:
        return NULL
    stats.mapping_lookups += 1
    goid = system.catalog.table(domain).goid_of(value)
    return NULL if goid is None else goid
