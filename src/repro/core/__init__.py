"""The paper's primary contribution: maybe-aware global query execution.

Query model, three-valued logic, decomposition into local queries, the
certification engine, the CA/BL/PL execution strategies, and the
:class:`~repro.core.engine.GlobalQueryEngine` facade.

Re-exports are lazy (PEP 562) to keep package initialization cycle-free
(see :mod:`repro.objectdb` for the rationale).
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "CertificationStats": "repro.core.certification",
    "ConjunctionOutcome": "repro.core.predicates",
    "DecomposedQuery": "repro.core.decompose",
    "DistributedSystem": "repro.core.system",
    "DnfOutcome": "repro.core.predicates",
    "EvalMeter": "repro.core.predicates",
    "GLOBAL_SITE": "repro.core.system",
    "ExecutionReport": "repro.core.report",
    "GlobalQueryEngine": "repro.core.engine",
    "GlobalResult": "repro.core.results",
    "MissingAt": "repro.core.predicates",
    "Op": "repro.core.query",
    "Path": "repro.core.query",
    "PathOutcome": "repro.core.predicates",
    "Predicate": "repro.core.query",
    "PredicateOutcome": "repro.core.predicates",
    "Query": "repro.core.query",
    "ResultKind": "repro.core.results",
    "ResultSet": "repro.core.results",
    "SATISFIED": "repro.core.certification",
    "TV": "repro.core.tvl",
    "UNKNOWN_VERDICT": "repro.core.certification",
    "VIOLATED": "repro.core.certification",
    "VerdictIndex": "repro.core.certification",
    "all3": "repro.core.tvl",
    "any3": "repro.core.tvl",
    "certify": "repro.core.certification",
    "compare_values": "repro.core.predicates",
    "decompose": "repro.core.decompose",
    "evaluate_conjunction": "repro.core.predicates",
    "evaluate_dnf": "repro.core.predicates",
    "evaluate_predicate": "repro.core.predicates",
    "from_bool": "repro.core.tvl",
    "missing_depth": "repro.core.decompose",
    "same_answers": "repro.core.results",
    "same_entities": "repro.core.results",
    "export_value": "repro.core.results",
    "certified_subset": "repro.core.results",
    "walk_path": "repro.core.predicates",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
