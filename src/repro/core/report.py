"""The unified execution report returned by the engine facade.

:class:`ExecutionReport` extends :class:`~repro.core.strategies.base
.StrategyResult` (answer + metrics) with the observability views built
from the same execution — so callers get everything from one object and
never trigger a re-execution to inspect it:

* :attr:`trace` — the structured span :class:`~repro.obs.spans.Trace`
  with Chrome-trace / JSONL / Gantt exporters;
* :attr:`registry` — a :class:`~repro.obs.registry.MetricsRegistry`
  snapshot of counters, gauges and histograms;
* :attr:`utilization` — per-site busy time, queueing delay and the
  schedule's contention-aware critical path.

All three are derived lazily and cached; building them never re-runs
the strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional

from repro.core.strategies.base import StrategyResult
from repro.obs.registry import MetricsRegistry, registry_from_metrics
from repro.obs.spans import Trace, TraceEvent
from repro.obs.utilization import UtilizationReport, compute_utilization


@dataclass
class ExecutionReport(StrategyResult):
    """Answer, metrics, trace and utilization of one engine execution."""

    query_text: str = ""
    #: Set by ``engine.recertify``: what the repair pass did (a
    #: :class:`~repro.conditions.recertify.RepairSummary`).  ``None`` on
    #: reports produced by a plain execution.
    repair_summary: Optional[object] = None

    @classmethod
    def from_result(
        cls, result: StrategyResult, query_text: str = ""
    ) -> "ExecutionReport":
        if isinstance(result, cls):
            return result
        return cls(
            results=result.results,
            metrics=result.metrics,
            availability=result.availability,
            repair=result.repair,
            query_text=query_text,
        )

    # --- derived observability views (lazy; never re-execute) -------------

    @cached_property
    def trace(self) -> Trace:
        return Trace(
            strategy=self.metrics.strategy,
            spans=self.metrics.spans,
            events=self.metrics.events,
            query_text=self.query_text,
            fault_windows=self.metrics.fault_windows,
        )

    @cached_property
    def registry(self) -> MetricsRegistry:
        return registry_from_metrics(self.metrics)

    @cached_property
    def utilization(self) -> UtilizationReport:
        return compute_utilization(
            self.metrics.spans, window=self.metrics.response_time or None
        )

    def record_event(self, event: TraceEvent) -> None:
        """Append an engine bookkeeping event; resets the cached trace."""
        self.metrics.add_event(event)
        self.__dict__.pop("trace", None)

    # --- rendering --------------------------------------------------------

    def summary(self) -> str:
        text = (
            f"strategy {self.metrics.strategy}: "
            f"{self.results.summary()}; "
            f"total={self.metrics.total_time * 1000:.3f} ms, "
            f"response={self.metrics.response_time * 1000:.3f} ms"
        )
        availability = self.availability.summary()
        if availability != "complete":
            text += f" [{availability}]"
        return text

    def conditions_summary(self) -> str:
        """Mechanism ranking and repair status of the maybe rows.

        Empty when nothing is conditional (keeps ``summary()`` and the
        committed bench baselines byte-stable: this line only ever
        appears through :meth:`explain` or the ``recertify`` CLI).
        """
        parts = []
        sampling = self.availability.maybe_sampling
        systematic = self.availability.maybe_systematic
        if sampling or systematic:
            parts.append(
                f"maybe rows: sampling={sampling} systematic={systematic}"
            )
        if self.repair_summary is not None:
            parts.append(self.repair_summary.describe())
        elif self.repair is not None:
            parts.append("repairable: run engine.recertify(report)")
        return "; ".join(parts)

    def phase_table(self) -> str:
        """Per-phase busy seconds, widest first."""
        items = sorted(
            self.metrics.phase_time.items(), key=lambda kv: -kv[1]
        )
        if not items:
            return "(no phases)"
        width = max(len(name) for name, _ in items)
        rows = "\n".join(
            f"  {name.ljust(width)}  {seconds * 1000:9.3f} ms"
            for name, seconds in items
        )
        return "busy time per phase:\n" + rows

    def explain(self, width: int = 48) -> str:
        """The full text report: summary, phases, utilization, Gantt.

        Rendered entirely from this report — the query is *not*
        executed again.
        """
        parts = [self.summary()]
        conditional = self.conditions_summary()
        if conditional:
            parts.append(conditional)
        parts += [
            "",
            self.phase_table(),
            "",
            self.utilization.table(),
            "",
            self.trace.gantt(width=width),
        ]
        return "\n".join(parts)

    # --- round-trip -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dump of the whole report."""
        return {
            "strategy": self.metrics.strategy,
            "query_text": self.query_text,
            "answers": {
                "certain": self.metrics.certain_results,
                "maybe": self.metrics.maybe_results,
                "rows": self.results.to_dicts(),
            },
            "availability": self.availability.to_dict(),
            "metrics": self.registry.snapshot(),
            "trace": self.trace.to_dict(),
            "utilization": self.utilization.to_dict(),
        }
