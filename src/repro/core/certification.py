"""The certification engine: turning local maybe results into final answers.

Implements the paper's Certification Rule (Section 2.3):

    "An unsolved object o can be turned into a solved object if its
    assistant objects jointly satisfy all the unsolved predicates on o.
    Object o is eliminated when any of its assistant object violates an
    unsolved predicate."

together with the surrounding machinery observable in the paper's worked
example:

* local results from different sites describing the same entity (same
  GOid) are merged — a predicate TRUE anywhere is TRUE for the entity;
* a maybe root object is **eliminated** when one of its isomeric objects
  exists in another site's local root class but is absent from that
  site's local results (it violated a local predicate there — the paper's
  s1/John case);
* unsolved items resolve through assistant-object check verdicts, with
  violation taking precedence over satisfaction;
* the final answer re-evaluates the query's ``Where`` clause (conjunctive
  or DNF) over the merged per-predicate statuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.query import Path, Predicate, Query
from repro.core.results import GlobalResult, ResultKind, ResultSet
from repro.core.tvl import TV, all3, any3
from repro.errors import MappingError
from repro.integration.global_schema import GlobalSchema
from repro.integration.mapping import MappingCatalog
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.local_query import (
    CheckReport,
    LocalResultRow,
    LocalResultSet,
)
from repro.objectdb.values import MultiValue, NULL, Value, is_null

#: Assistant-check verdict labels.
SATISFIED = "satisfied"
VIOLATED = "violated"
UNKNOWN_VERDICT = "unknown"


class VerdictIndex:
    """Lookup of assistant-check verdicts by (assistant LOid, predicate).

    Populated from :class:`~repro.objectdb.local_query.CheckReport`
    responses and, for the signature variants, from definitive local
    signature verdicts.  Violation takes precedence when the same pair is
    reported twice (the certification rule eliminates on any violation).
    """

    def __init__(self) -> None:
        self._verdicts: Dict[Tuple[LOid, Predicate], str] = {}

    def add(self, loid: LOid, predicate: Predicate, verdict: str) -> None:
        key = (loid, predicate)
        existing = self._verdicts.get(key)
        if existing == VIOLATED:
            return
        if verdict == VIOLATED or existing is None or existing == UNKNOWN_VERDICT:
            self._verdicts[key] = verdict

    def add_report(self, report: CheckReport) -> None:
        for predicate, loids in report.satisfied.items():
            for loid in loids:
                self.add(loid, predicate, SATISFIED)
        for predicate, loids in report.violated.items():
            for loid in loids:
                self.add(loid, predicate, VIOLATED)
        for predicate, loids in report.unknown.items():
            for loid in loids:
                self.add(loid, predicate, UNKNOWN_VERDICT)

    def get(self, loid: LOid, predicate: Predicate) -> Optional[str]:
        return self._verdicts.get((loid, predicate))

    def clone(self) -> "VerdictIndex":
        """An independent snapshot new evidence can merge into.

        Repair keeps the original execution's index untouched and folds
        recovered verdicts into the clone; because merges are
        order-independent (VIOLATED is sticky), the clone ends up
        identical to what one fault-free collection would have built.
        """
        other = VerdictIndex()
        other._verdicts = dict(self._verdicts)
        return other

    def __len__(self) -> int:
        return len(self._verdicts)


@dataclass
class CertificationStats:
    """Work performed and outcomes produced by certification."""

    groups: int = 0
    comparisons: int = 0
    eliminated_by_absence: int = 0
    eliminated_by_violation: int = 0
    promoted_to_certain: int = 0
    remained_maybe: int = 0


def certify(
    query: Query,
    global_schema: GlobalSchema,
    catalog: MappingCatalog,
    local_results: Mapping[str, LocalResultSet],
    verdicts: VerdictIndex,
    stats: Optional[CertificationStats] = None,
    conditions: bool = True,
) -> ResultSet:
    """Merge per-site local results into the final global answer.

    Args:
        query: the original global query.
        local_results: db name -> that site's local result set.  Every
            site that received a local query must appear (even with zero
            rows) — absence detection depends on it.
        verdicts: assistant-check verdicts collected by the strategy.
        conditions: attach :class:`~repro.conditions.algebra.NullAttr`
            atoms to maybe rows, one per (observing site, unsolved
            predicate) — the residual genuine-null provenance that makes
            a fault-free maybe rank as *sampling* missingness.
    """
    stats = stats if stats is not None else CertificationStats()
    root_table = catalog.table(query.range_class)
    queried_dbs = tuple(local_results)

    groups: Dict[GOid, Dict[str, LocalResultRow]] = {}
    for db_name, result in local_results.items():
        for row in result.rows:
            goid = root_table.goid_of(row.loid)
            if goid is None:
                raise MappingError(
                    f"local result row {row.loid} has no GOid for root "
                    f"class {query.range_class!r}"
                )
            groups.setdefault(goid, {})[db_name] = row

    answer = ResultSet(targets=query.targets)
    for goid in sorted(groups, key=lambda g: g.value):
        rows = groups[goid]
        stats.groups += 1
        if _eliminated_by_absence(goid, rows, root_table, queried_dbs, stats):
            stats.eliminated_by_absence += 1
            continue
        status = _merge_statuses(query, rows.values(), stats)
        _apply_assistant_verdicts(
            rows.values(), global_schema, catalog, verdicts, status, stats
        )
        tv = _where_tv(query, status)
        if tv is TV.FALSE:
            stats.eliminated_by_violation += 1
            continue
        bindings = _merge_bindings(query.targets, rows.values())
        if tv is TV.TRUE:
            stats.promoted_to_certain += 1
            answer.add(
                GlobalResult(
                    goid=goid, kind=ResultKind.CERTAIN, bindings=bindings
                )
            )
        else:
            stats.remained_maybe += 1
            unsolved = _still_unsolved(query, status)
            result = GlobalResult(
                goid=goid,
                kind=ResultKind.MAYBE,
                bindings=bindings,
                unsolved=unsolved,
            )
            if conditions:
                _attach_null_atoms(result, goid, rows, unsolved)
            answer.add(result)
    return answer


def _attach_null_atoms(
    result: GlobalResult,
    goid: GOid,
    rows: Mapping[str, LocalResultRow],
    unsolved: Tuple[Predicate, ...],
) -> None:
    """Record which sites observed each still-unsolved predicate UNKNOWN.

    These atoms are never dischargeable (the null is in the data, not in
    the topology): they mark the row as sampling missingness unless a
    site/copy/flux atom is attached on top by a degradation path.
    """
    from repro.conditions.algebra import NullAttr, attach

    atoms = []
    for predicate in unsolved:
        sources = [
            db_name
            for db_name in sorted(rows)
            if rows[db_name].predicate_status.get(predicate, TV.UNKNOWN)
            is TV.UNKNOWN
        ]
        if not sources:
            atoms.append(NullAttr(site="", goid=goid, attr=str(predicate)))
        atoms.extend(
            NullAttr(site=db_name, goid=goid, attr=str(predicate))
            for db_name in sources
        )
    if atoms:
        attach(result, *atoms)


def _eliminated_by_absence(
    goid: GOid,
    rows: Mapping[str, LocalResultRow],
    root_table,
    queried_dbs: Tuple[str, ...],
    stats: CertificationStats,
) -> bool:
    """Root-presence rule: an isomeric root object filtered out elsewhere.

    If the entity has a representative in the local root class of a
    queried site but that site returned no row for it, the representative
    violated a local predicate there — the entity certainly fails the
    query and is eliminated (the paper's s1 example).
    """
    placements = root_table.loids_of(goid)
    for db_name in queried_dbs:
        stats.comparisons += 1
        if db_name in placements and db_name not in rows:
            return True
    return False


def _merge_statuses(
    query: Query,
    rows: Iterable[LocalResultRow],
    stats: CertificationStats,
) -> Dict[Predicate, TV]:
    """Combine per-site predicate statuses for one entity.

    FALSE anywhere wins (some site evaluated real data and it failed),
    then TRUE anywhere, then UNKNOWN.
    """
    status: Dict[Predicate, TV] = {}
    for predicate in query.all_predicates():
        merged = TV.UNKNOWN
        for row in rows:
            tv = row.predicate_status.get(predicate, TV.UNKNOWN)
            stats.comparisons += 1
            if tv is TV.FALSE:
                merged = TV.FALSE
                break
            if tv is TV.TRUE:
                merged = TV.TRUE
        status[predicate] = merged
    return status


def _apply_assistant_verdicts(
    rows: Iterable[LocalResultRow],
    global_schema: GlobalSchema,
    catalog: MappingCatalog,
    verdicts: VerdictIndex,
    status: Dict[Predicate, TV],
    stats: CertificationStats,
) -> None:
    """Resolve UNKNOWN predicates through unsolved-item assistant checks.

    For every unsolved item of every merged row, look up the verdicts of
    its assistant objects on the item's relative predicates and fold them
    into the original predicate's status.  Violation has precedence:
    "object o is eliminated when any of its assistant objects violates an
    unsolved predicate".
    """
    for row in rows:
        for item in row.unsolved_items:
            global_class = global_schema.global_class_of(
                item.loid.db, item.class_name
            )
            if global_class is None:
                continue
            assistants = catalog.assistants_of(global_class, item.loid)
            for unsolved in item.unsolved:
                original = unsolved.original
                if status.get(original) is TV.FALSE:
                    continue
                for assistant in assistants:
                    stats.comparisons += 1
                    verdict = verdicts.get(
                        assistant, unsolved.relative_predicate
                    )
                    if verdict == VIOLATED:
                        status[original] = TV.FALSE
                        break
                    if verdict == SATISFIED and status[original] is not TV.TRUE:
                        status[original] = TV.TRUE


def _where_tv(query: Query, status: Mapping[Predicate, TV]) -> TV:
    """Evaluate the query's Where clause over merged predicate statuses."""
    if not query.where:
        return TV.TRUE
    return any3(
        all3(status.get(p, TV.UNKNOWN) for p in conjunct)
        for conjunct in query.where
    )


def _still_unsolved(
    query: Query, status: Mapping[Predicate, TV]
) -> Tuple[Predicate, ...]:
    """Predicates keeping the entity a maybe result.

    UNKNOWN predicates appearing in conjuncts that are not already FALSE.
    """
    unsolved: List[Predicate] = []
    for conjunct in query.where:
        tv = all3(status.get(p, TV.UNKNOWN) for p in conjunct)
        if tv is TV.FALSE:
            continue
        for predicate in conjunct:
            if status.get(predicate, TV.UNKNOWN) is TV.UNKNOWN:
                if predicate not in unsolved:
                    unsolved.append(predicate)
    return tuple(unsolved)


def _merge_bindings(
    targets: Tuple[Path, ...], rows: Iterable[LocalResultRow]
) -> Dict[Path, Value]:
    """Merge target bindings across isomeric rows (first non-null wins;
    multi-values union)."""
    bindings: Dict[Path, Value] = {}
    for target in targets:
        collected: List[Value] = []
        multi = False
        for row in rows:
            value = row.bindings.get(target, NULL)
            if is_null(value):
                continue
            if isinstance(value, MultiValue):
                multi = True
                collected.extend(value)
            else:
                collected.append(value)
        if not collected:
            bindings[target] = NULL
        elif multi:
            bindings[target] = MultiValue(collected)
        else:
            bindings[target] = collected[0]
    return bindings
