"""Adaptive strategy selection: the analytic model as a query optimizer.

The paper compares CA/BL/PL offline; a deployed federation would *pick*
one per query.  :class:`AdaptiveStrategy` does exactly that:

1. extract a Table 2-style parameter set from the live federation and
   query (extent sizes, locally defined predicate attributes, sampled
   null ratios);
2. evaluate CA, BL and PL with the analytic model under the federation's
   own cost model and network configuration;
3. delegate execution to the predicted winner (objective: response time
   by default, or total execution time).

The prediction is a heuristic — the model works on expectations — but the
ablation bench shows it ranks CA vs BL correctly on a clear majority of
generated federations, and it can never return a wrong *answer* (all
strategies are answer-equivalent).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analytic.model import AnalyticModel
from repro.core.query import Query
from repro.core.strategies.base import Strategy, StrategyResult
from repro.core.system import DistributedSystem
from repro.errors import QueryError
from repro.faults.injector import ExecutionContext
from repro.objectdb.values import is_null
from repro.workload.params import ClassParams, DbClassParams, WorkloadParams

#: Objects sampled per extent when estimating null ratios.
NULL_SAMPLE_SIZE = 50


def extract_params(system: DistributedSystem, query: Query) -> WorkloadParams:
    """Derive a parameter set describing *query* over *system*.

    The analytic model thinks in class chains; the extraction walks the
    query's visited classes in order (root first) and measures, per
    site: extent size, how many of the class's predicate attributes the
    constituent defines, and a sampled null ratio on those attributes.
    """
    schema = system.global_schema
    query.validate(schema.schema)
    chain: List[str] = [query.range_class]
    for cls in query.branch_classes(schema.schema):
        chain.append(cls)

    # Predicates per class: a predicate belongs to the class its final
    # attribute lives on.
    preds_by_class: Dict[str, List[str]] = {name: [] for name in chain}
    for predicate in query.all_predicates():
        visited = schema.schema.classes_on_path(
            query.range_class, predicate.path.steps
        )
        final_class = visited[-1]
        if final_class in preds_by_class:
            preds_by_class[final_class].append(predicate.path.last)

    db_names = tuple(system.databases)
    classes: List[ClassParams] = []
    for class_name in chain:
        pred_attrs = preds_by_class[class_name]
        per_db: Dict[str, DbClassParams] = {}
        for db_name in db_names:
            local_cls = schema.constituent_class(db_name, class_name)
            if local_cls is None:
                per_db[db_name] = DbClassParams(
                    n_objects=0, n_local_pred_attrs=0,
                    n_target_attrs=0, r_missing=0.0,
                )
                continue
            db = system.db(db_name)
            cdef = db.schema.cls(local_cls)
            defined = [a for a in pred_attrs if cdef.has_attribute(a)]
            per_db[db_name] = DbClassParams(
                n_objects=db.count(local_cls),
                n_local_pred_attrs=len(defined),
                n_target_attrs=1,
                r_missing=_sampled_null_ratio(db, local_cls, defined),
            )
        classes.append(
            ClassParams(
                n_predicates=max(len(pred_attrs), 0),
                r_referenced=1.0,
                per_db=per_db,
            )
        )
    return WorkloadParams(db_names=db_names, classes=classes)


def _sampled_null_ratio(db, class_name: str, attributes: List[str]) -> float:
    """Fraction of null values among *attributes* over a small sample."""
    if not attributes:
        return 0.0
    seen = 0
    nulls = 0
    for obj in db.extent(class_name).values():
        for attr in attributes:
            seen += 1
            if is_null(obj.get(attr)):
                nulls += 1
        if seen >= NULL_SAMPLE_SIZE * len(attributes):
            break
    if seen == 0:
        return 0.0
    # Clamp: the analytic model treats this as a probability in [0, 0.95].
    return min(nulls / seen, 0.95)


class AdaptiveStrategy(Strategy):
    """Pick CA/BL/PL per query with the analytic model, then execute."""

    name = "AUTO"

    def __init__(self, objective: str = "response") -> None:
        if objective not in ("response", "total"):
            raise QueryError(
                f"objective must be 'response' or 'total', not {objective!r}"
            )
        self.objective = objective
        #: Name of the strategy chosen by the most recent execute().
        self.last_choice: Optional[str] = None
        #: The analytic predictions backing the most recent choice.
        self.last_predictions: Dict[str, float] = {}
        #: Sites the most recent prediction considered unreachable.
        self.last_unreachable: Tuple[str, ...] = ()

    @staticmethod
    def _unreachable_sites(
        system: DistributedSystem, ctx: Optional[ExecutionContext]
    ) -> Tuple[str, ...]:
        """Sites the fault plan makes unreachable at dispatch time.

        Read from the *plan* only (down at t=0, or a link from the
        global site whose composed loss makes delivery hopeless):
        probing via ``ctx.contact`` here would consume negotiation
        outcomes before the delegate runs and corrupt the execution's
        availability bookkeeping.
        """
        if ctx is None or not ctx.plan.active:
            return ()
        down: List[str] = []
        for site in system.site_names:
            if ctx.plan.is_down(site, 0.0):
                down.append(site)
                continue
            _, loss = ctx.plan.link(system.global_site, site)
            if loss >= 0.99:
                down.append(site)
        return tuple(down)

    def predict(
        self,
        system: DistributedSystem,
        query: Query,
        ctx: Optional[ExecutionContext] = None,
    ) -> Dict[str, float]:
        """Analytic per-strategy predictions for the chosen objective.

        Signature variants join the ranking when the federation has
        already built its signature catalog (their indexing cost is then
        sunk).  Under a fault plan, CA's prediction is penalized per
        unreachable site: centralized collection stalls on the retry
        ladder of every dead export, while the localized strategies
        degrade that site to a partial answer and move on.
        """
        params = extract_params(system, query)
        model = AnalyticModel(
            params,
            cost_model=system.cost_model,
            shared_network=system.shared_network,
        )
        outcomes = model.evaluate_all(
            include_signatures=system.signatures is not None
        )
        if self.objective == "response":
            predictions = {n: o.response_time for n, o in outcomes.items()}
        else:
            predictions = {n: o.total_time for n, o in outcomes.items()}
        self.last_unreachable = self._unreachable_sites(system, ctx)
        if self.last_unreachable and "CA" in predictions:
            predictions["CA"] *= 1e3 * len(self.last_unreachable)
        return predictions

    def execute(self, system: DistributedSystem, query: Query, ctx=None) -> StrategyResult:
        from repro.core.strategies import strategy_by_name
        from repro.obs.spans import TraceEvent

        predictions = self.predict(system, query, ctx)
        choice = min(predictions, key=predictions.get)
        self.last_choice = choice
        self.last_predictions = predictions
        delegate = strategy_by_name(choice)
        delegate.batch_checks = self.effective_batch_checks(ctx)
        delegate.columnar = self.effective_columnar(ctx)
        if ctx is None:
            result = delegate.execute(system, query)
        else:
            result = delegate.execute(system, query, ctx)
        result.metrics.strategy = f"AUTO->{choice}"
        result.metrics.add_event(TraceEvent.of(
            "auto.predict",
            choice=choice,
            objective=self.objective,
            unreachable=",".join(self.last_unreachable) or "none",
            **{f"predicted_{name}_s": f"{value:.6f}"
               for name, value in sorted(predictions.items())},
        ))
        return result
