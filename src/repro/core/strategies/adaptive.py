"""Adaptive strategy selection: the analytic model as a query optimizer.

The paper compares CA/BL/PL offline; a deployed federation would *pick*
one per query.  :class:`AdaptiveStrategy` does exactly that:

1. extract a Table 2-style parameter set from the live federation and
   query (extent sizes, locally defined predicate attributes, sampled
   null ratios);
2. evaluate CA, BL and PL with the analytic model under the federation's
   own cost model and network configuration;
3. delegate execution to the predicted winner (objective: response time
   by default, or total execution time).

Under ``planner="feedback"`` (or ``"full"``) the model additionally
consumes the federation's :class:`~repro.planner.feedback.PlannerFeedback`
store: observed entry/peer negotiation stalls become scheduled gate
delays, span queue-delay ratios become per-site device multipliers, and
sites that have only ever failed join the CA unreachability penalty.
The prediction stays a heuristic — the model works on expectations — but
it can never return a wrong *answer* (all strategies, in every planner
mode, are answer-equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytic.model import AnalyticModel
from repro.core.query import Query
from repro.core.strategies.base import Strategy, StrategyResult
from repro.core.system import DistributedSystem
from repro.errors import QueryError
from repro.faults.injector import ExecutionContext
from repro.objectdb.values import is_null
from repro.planner import uses_feedback
from repro.workload.params import ClassParams, DbClassParams, WorkloadParams

#: Objects sampled per extent when estimating null ratios.
NULL_SAMPLE_SIZE = 50

#: Upper bound the analytic model accepts for a missing-value ratio.
#: Ratios above it are clamped — and the clamp is *surfaced* via
#: :class:`NullRatioSample.clamped` / ``extract_params_ex`` notes rather
#: than applied silently.
NULL_RATIO_CAP = 0.95


@dataclass(frozen=True)
class NullRatioSample:
    """Outcome of one null-ratio estimation over an extent.

    Attributes:
        ratio: the clamped ratio the analytic model consumes.
        raw_ratio: the measured ratio before the
            :data:`NULL_RATIO_CAP` clamp.
        clamped: whether ``raw_ratio`` exceeded the cap.
        objects_sampled: how many distinct objects the stride visited.
    """

    ratio: float
    raw_ratio: float
    clamped: bool
    objects_sampled: int


def extract_params(system: DistributedSystem, query: Query) -> WorkloadParams:
    """Derive a parameter set describing *query* over *system*."""
    params, _notes = extract_params_ex(system, query)
    return params


def extract_params_ex(
    system: DistributedSystem, query: Query
) -> Tuple[WorkloadParams, Tuple[str, ...]]:
    """Like :func:`extract_params`, plus estimation notes.

    The analytic model thinks in class chains; the extraction walks the
    query's visited classes in order (root first) and measures, per
    site: extent size, how many of the class's predicate attributes the
    constituent defines, and a sampled null ratio on those attributes.
    The second return value lists anything the estimator had to fudge —
    currently one note per extent whose measured null ratio exceeded
    :data:`NULL_RATIO_CAP` and was clamped.
    """
    schema = system.global_schema
    query.validate(schema.schema)
    chain: List[str] = [query.range_class]
    for cls in query.branch_classes(schema.schema):
        chain.append(cls)

    # Predicates per class: a predicate belongs to the class its final
    # attribute lives on.
    preds_by_class: Dict[str, List[str]] = {name: [] for name in chain}
    for predicate in query.all_predicates():
        visited = schema.schema.classes_on_path(
            query.range_class, predicate.path.steps
        )
        final_class = visited[-1]
        if final_class in preds_by_class:
            preds_by_class[final_class].append(predicate.path.last)

    db_names = tuple(system.databases)
    classes: List[ClassParams] = []
    notes: List[str] = []
    for class_name in chain:
        pred_attrs = preds_by_class[class_name]
        per_db: Dict[str, DbClassParams] = {}
        for db_name in db_names:
            local_cls = schema.constituent_class(db_name, class_name)
            if local_cls is None:
                per_db[db_name] = DbClassParams(
                    n_objects=0, n_local_pred_attrs=0,
                    n_target_attrs=0, r_missing=0.0,
                )
                continue
            db = system.db(db_name)
            cdef = db.schema.cls(local_cls)
            defined = [a for a in pred_attrs if cdef.has_attribute(a)]
            sample = _sampled_null_ratio(db, local_cls, defined)
            if sample.clamped:
                notes.append(
                    f"null-ratio clamp: {db_name}.{local_cls} "
                    f"raw={sample.raw_ratio:.3f} -> {NULL_RATIO_CAP}"
                )
            per_db[db_name] = DbClassParams(
                n_objects=db.count(local_cls),
                n_local_pred_attrs=len(defined),
                n_target_attrs=1,
                r_missing=sample.ratio,
            )
        classes.append(
            ClassParams(
                n_predicates=max(len(pred_attrs), 0),
                r_referenced=1.0,
                per_db=per_db,
            )
        )
    return WorkloadParams(db_names=db_names, classes=classes), tuple(notes)


def _sampled_null_ratio(
    db, class_name: str, attributes: List[str]
) -> NullRatioSample:
    """Estimate the null fraction among *attributes* over an extent.

    Samples a deterministic stride across the *whole* extent — index
    ``(i * n) // sample_n`` for ``i`` in ``range(sample_n)`` — instead
    of the first ``NULL_SAMPLE_SIZE`` objects.  First-N sampling read
    the extent in insertion order, so a null-skewed tail (e.g. a bulk
    import of partially-populated objects appended after a clean seed)
    was invisible and AUTO picked strategies against a phantom
    fully-populated federation.
    """
    if not attributes:
        return NullRatioSample(0.0, 0.0, False, 0)
    objects = list(db.extent(class_name).values())
    n = len(objects)
    if n == 0:
        return NullRatioSample(0.0, 0.0, False, 0)
    sample_n = min(n, NULL_SAMPLE_SIZE)
    seen = 0
    nulls = 0
    sampled = 0
    for i in range(sample_n):
        obj = objects[(i * n) // sample_n]
        sampled += 1
        for attr in attributes:
            seen += 1
            if is_null(obj.get(attr)):
                nulls += 1
    raw = nulls / seen
    return NullRatioSample(min(raw, NULL_RATIO_CAP), raw, raw > NULL_RATIO_CAP, sampled)


class AdaptiveStrategy(Strategy):
    """Pick CA/BL/PL per query with the analytic model, then execute."""

    name = "AUTO"

    def __init__(self, objective: str = "response") -> None:
        if objective not in ("response", "total"):
            raise QueryError(
                f"objective must be 'response' or 'total', not {objective!r}"
            )
        self.objective = objective
        #: Name of the strategy chosen by the most recent execute().
        self.last_choice: Optional[str] = None
        #: The analytic predictions backing the most recent choice.
        self.last_predictions: Dict[str, float] = {}
        #: Sites the most recent prediction considered unreachable.
        self.last_unreachable: Tuple[str, ...] = ()
        #: Sites whose CA penalty came from observed feedback (subset of
        #: the penalized set that plan-peeking alone would have missed).
        self.last_observed_unreliable: Tuple[str, ...] = ()
        #: Estimation notes (e.g. null-ratio clamps) from the most
        #: recent prediction.
        self.last_notes: Tuple[str, ...] = ()
        #: Whether the most recent prediction consumed trace feedback.
        self.last_used_feedback: bool = False

    @staticmethod
    def _unreachable_sites(
        system: DistributedSystem, ctx: Optional[ExecutionContext]
    ) -> Tuple[str, ...]:
        """Sites the fault plan makes unreachable at dispatch time.

        Read from the *plan* only (down at t=0, or a link from the
        global site whose composed loss makes delivery hopeless):
        probing via ``ctx.contact`` here would consume negotiation
        outcomes before the delegate runs and corrupt the execution's
        availability bookkeeping.
        """
        if ctx is None or not ctx.plan.active:
            return ()
        down: List[str] = []
        for site in system.site_names:
            if ctx.plan.is_down(site, 0.0):
                down.append(site)
                continue
            _, loss = ctx.plan.link(system.global_site, site)
            if loss >= 0.99:
                down.append(site)
        return tuple(down)

    def predict(
        self,
        system: DistributedSystem,
        query: Query,
        ctx: Optional[ExecutionContext] = None,
    ) -> Dict[str, float]:
        """Analytic per-strategy predictions for the chosen objective.

        Signature variants join the ranking when the federation has
        already built its signature catalog (their indexing cost is then
        sunk).  Under a fault plan, CA's prediction is penalized per
        unreachable site: centralized collection stalls on the retry
        ladder of every dead export, while the localized strategies
        degrade that site to a partial answer and move on.

        When the effective planner mode consumes feedback and the
        federation's :class:`PlannerFeedback` store has observations,
        the model is built with observed entry/peer stall gates and
        per-site slowdown multipliers, and observed-unreliable sites
        (entry failures, zero successes) extend the CA penalty set —
        so partial link degradation the plan-peek cannot see still
        steers the pick.
        """
        params, self.last_notes = extract_params_ex(system, query)
        mode = self.effective_planner(ctx)
        feedback = system.planner_feedback
        self.last_used_feedback = uses_feedback(mode) and feedback.has_data
        if self.last_used_feedback:
            model = AnalyticModel(
                params,
                cost_model=system.cost_model,
                shared_network=system.shared_network,
                site_entry_stall_s=feedback.entry_stalls(),
                site_peer_stall_s=feedback.peer_stalls(),
                site_multipliers=feedback.site_multipliers(),
            )
            observed = tuple(sorted(feedback.unreliable_sites()))
        else:
            model = AnalyticModel(
                params,
                cost_model=system.cost_model,
                shared_network=system.shared_network,
            )
            observed = ()
        outcomes = model.evaluate_all(
            include_signatures=system.signatures is not None
        )
        if self.objective == "response":
            predictions = {n: o.response_time for n, o in outcomes.items()}
        else:
            predictions = {n: o.total_time for n, o in outcomes.items()}
        self.last_unreachable = self._unreachable_sites(system, ctx)
        self.last_observed_unreliable = tuple(
            s for s in observed if s not in self.last_unreachable
        )
        penalized = tuple(sorted(
            set(self.last_unreachable) | set(self.last_observed_unreliable)
        ))
        if penalized and "CA" in predictions:
            predictions["CA"] *= 1e3 * len(penalized)
        return predictions

    def execute(self, system: DistributedSystem, query: Query, ctx=None) -> StrategyResult:
        from repro.core.strategies import strategy_by_name
        from repro.obs.spans import TraceEvent

        predictions = self.predict(system, query, ctx)
        choice = min(predictions, key=predictions.get)
        self.last_choice = choice
        self.last_predictions = predictions
        delegate = strategy_by_name(choice)
        delegate.batch_checks = self.effective_batch_checks(ctx)
        delegate.columnar = self.effective_columnar(ctx)
        delegate.planner = self.effective_planner(ctx)
        if ctx is None:
            result = delegate.execute(system, query)
        else:
            result = delegate.execute(system, query, ctx)
        result.metrics.strategy = f"AUTO->{choice}"
        result.metrics.add_event(TraceEvent.of(
            "auto.predict",
            choice=choice,
            objective=self.objective,
            planner=self.effective_planner(ctx),
            used_feedback=str(self.last_used_feedback).lower(),
            unreachable=",".join(self.last_unreachable) or "none",
            observed_unreliable=(
                ",".join(self.last_observed_unreliable) or "none"
            ),
            notes="; ".join(self.last_notes) or "none",
            **{f"predicted_{name}_s": f"{value:.6f}"
               for name, value in sorted(predictions.items())},
        ))
        # Misprediction accounting: compare the chosen strategy's actual
        # cost against every prediction.  rank_of_actual == 1 means the
        # measured outcome still beat all rival *predictions*; anything
        # higher flags a pick the model would regret in hindsight.
        if self.objective == "response":
            actual = result.metrics.response_time
        else:
            actual = result.metrics.total_time
        rank_of_actual = 1 + sum(
            1 for name, value in predictions.items()
            if name != choice and value < actual
        )
        result.metrics.add_event(TraceEvent.of(
            "auto.outcome",
            choice=choice,
            predicted_s=f"{predictions[choice]:.6f}",
            actual_s=f"{actual:.6f}",
            rank_of_actual=str(rank_of_actual),
            mispredicted=str(rank_of_actual > 1).lower(),
        ))
        return result
