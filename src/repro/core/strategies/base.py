"""Strategy interface and machinery shared by the localized strategies.

A strategy executes a global query against a
:class:`~repro.core.system.DistributedSystem` and returns both the answer
(certain + maybe results) and the simulated execution metrics.  The three
paper strategies (CA, BL, PL) and the signature variants (BL-S, PL-S) all
implement :class:`Strategy`.

The shared machinery here covers phase O's dispatch planning: given the
unsolved items discovered at a site, find their assistant objects in the
replicated GOid mapping tables, drop assistants whose home schema cannot
provide the missing data (paper: assistants are found "by checking the
GOid mapping tables and the other component schemas"), optionally
pre-filter through object signatures, and group what remains into
per-site check requests.

It also covers phase O's *wire protocol*: by default every check (and
chase) request a site holds for one destination is coalesced into a
single batched request/reply exchange (:class:`CheckBatch`) — one
network message pair per ``(src, dst)`` link instead of one per
:class:`~repro.objectdb.local_query.CheckRequest`, matching the
aggregated per-peer exchange the analytic model already charges.
Reports stay keyed by their request (:func:`run_checks_paired`), so
verdict collection, certification and fault skip/annotation logic are
untouched by batching.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.certification import SATISFIED, VIOLATED, VerdictIndex
from repro.core.decompose import missing_depth
from repro.core.query import Predicate, Query
from repro.core.results import Availability, ResultSet
from repro.core.system import DistributedSystem
from repro.errors import QueryError
from repro.faults.injector import ExecutionContext, Negotiation
from repro.obs.spans import TraceEvent
from repro.objectdb.ids import LOid
from repro.objectdb.local_query import CheckReport, CheckRequest, UnsolvedItem
from repro.sim.metrics import ExecutionMetrics, WorkCounters
from repro.sim.taskgraph import FederationSim, Node


@dataclass
class StrategyResult:
    """Answer plus measured execution of one strategy run."""

    results: ResultSet
    metrics: ExecutionMetrics
    #: How much of the federation this execution reached (complete on
    #: fault-free runs; degraded runs list skipped sites and retries).
    availability: Availability = field(default_factory=Availability)
    #: Repair state captured by a degraded execution (a
    #: ``repro.conditions.recertify`` state object): the evidence this
    #: run certified over plus the exact work it skipped, enough for
    #: ``engine.recertify`` to repair the answer without re-running the
    #: query.  ``None`` when nothing repairable was skipped (or
    #: conditions were disabled).
    repair: Optional[object] = None

    @property
    def total_time(self) -> float:
        return self.metrics.total_time

    @property
    def response_time(self) -> float:
        return self.metrics.response_time


class Strategy(abc.ABC):
    """A query-execution strategy over a distributed federation."""

    #: Short name used in reports ("CA", "BL", "PL", "BL-S", "PL-S").
    name: str = "?"
    #: Coalesce phase-O check/chase requests per (src, dst) link into one
    #: batched exchange (the engine's ``--no-batch`` escape hatch flips
    #: this to the historical one-message-per-request protocol).  Only
    #: the localized strategies dispatch checks; CA ignores the flag.
    batch_checks: bool = True
    #: Whether flipping :attr:`batch_checks` changes this strategy's
    #: execution at all.  CA never dispatches checks, so it sets this to
    #: False; the difftest oracle uses the flag to know which strategies
    #: owe a batched-vs-unbatched equivalence proof.
    affected_by_batching: bool = True
    #: Evaluate local queries / assistant checks / the outerjoin merge
    #: through the columnar extent kernels (the engine's
    #: ``--no-columnar`` escape hatch flips this back to the per-object
    #: row path).  A transparency contract like :attr:`batch_checks`:
    #: answers, work counters and raised errors are byte-identical
    #: either way.
    columnar: bool = True
    #: Whether flipping :attr:`columnar` changes this strategy's
    #: execution path at all.  Every shipped strategy evaluates locally
    #: (CA through ``materialize``), so they all owe the difftest oracle
    #: a columnar-vs-row equivalence proof.
    affected_by_columnar: bool = True
    #: Adaptive-planning mode of this execution (see
    #: :data:`repro.planner.PLANNER_MODES`): ``constraints``/``full``
    #: let the localized strategies prune provably-irrelevant sites and
    #: assistant checks via the constraint catalog; ``feedback``/``full``
    #: let AUTO rank CA/BL/PL from observed conditions.  Same carrier
    #: contract as :attr:`columnar`: answers are identical in every mode.
    planner: str = "static"
    #: Whether the planner mode changes this strategy's execution at
    #: all.  CA neither prunes nor predicts, so it opts out; the
    #: difftest oracle uses the flag to know which strategies owe a
    #: planner answer-identity proof.
    affected_by_planner: bool = True
    #: Attach discharge conditions to maybe/uncertified rows and capture
    #: the repair state that makes a degraded answer incrementally
    #: re-certifiable (the engine's ``--no-conditions`` escape hatch
    #: flips this off).  Conditions never reach exported answers, so the
    #: flag cannot change answer bytes.
    conditions: bool = True

    @abc.abstractmethod
    def execute(
        self,
        system: DistributedSystem,
        query: Query,
        ctx: Optional[ExecutionContext] = None,
    ) -> StrategyResult:
        """Run *query* on *system*; return answer and metrics.

        *ctx* is the fault context of this execution; ``None`` (the
        default, and what fault-free engine runs pass) means no fault
        injection and must leave the execution byte-identical to the
        pre-fault-layer behavior.
        """

    def effective_batch_checks(self, ctx: Optional[ExecutionContext]) -> bool:
        """This execution's wire protocol: the context override wins.

        The engine never mutates a (possibly shared) Strategy instance;
        a per-execution ``batch_checks`` override travels on the
        :class:`ExecutionContext` when faults are active and on a
        private copy of the strategy otherwise.  Strategies must consult
        this instead of reading :attr:`batch_checks` directly wherever a
        context is in scope.
        """
        if ctx is not None and ctx.batch_checks is not None:
            return ctx.batch_checks
        return self.batch_checks

    def effective_columnar(self, ctx: Optional[ExecutionContext]) -> bool:
        """This execution's local-evaluation path: the context override wins.

        Same carrier rule as :meth:`effective_batch_checks` — the
        per-execution ``columnar`` override travels on the
        :class:`ExecutionContext` when faults are active and on a private
        copy of the strategy otherwise, so a shared Strategy instance is
        never mutated.
        """
        if ctx is not None and ctx.columnar is not None:
            return ctx.columnar
        return self.columnar

    def effective_planner(self, ctx: Optional[ExecutionContext]) -> str:
        """This execution's planner mode: the context override wins.

        Same carrier rule as :meth:`effective_batch_checks` — the
        per-execution ``planner`` override travels on the
        :class:`ExecutionContext` when faults are active and on a
        private copy of the strategy otherwise, so a shared Strategy
        instance is never mutated.
        """
        if ctx is not None and ctx.planner is not None:
            return ctx.planner
        return self.planner

    def effective_conditions(self, ctx: Optional[ExecutionContext]) -> bool:
        """This execution's condition capture: the context override wins.

        Same carrier rule as :meth:`effective_batch_checks` — the
        per-execution ``conditions`` override travels on the
        :class:`ExecutionContext` when faults are active and on a
        private copy of the strategy otherwise, so a shared Strategy
        instance is never mutated.
        """
        if ctx is not None and ctx.conditions is not None:
            return ctx.conditions
        return self.conditions

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def fault_wait_chain(
    fed: FederationSim,
    ctx: ExecutionContext,
    negotiation: Negotiation,
    events: List[TraceEvent],
    deps: Iterable[Node] = (),
) -> List[Node]:
    """Schedule a negotiation's timeout/backoff ladder as delay nodes.

    Returns the dependency frontier downstream work should wait on: the
    last wait node of the chain, or *deps* unchanged when the link
    negotiated cleanly (or its ladder was already scheduled — the memoized
    negotiation pays its waits only once per execution).  One trace event
    is recorded per failed attempt, so every injected fault is visible.
    """
    key = (negotiation.src, negotiation.dst)
    frontier = list(deps)
    if not negotiation.failures or key in ctx.scheduled_links:
        return frontier
    ctx.scheduled_links.add(key)
    for attempt_no, attempt in enumerate(negotiation.failures, start=1):
        node = fed.delay(
            negotiation.src,
            attempt.wait_s,
            label=(
                f"wait {negotiation.src}->{negotiation.dst} "
                f"attempt{attempt_no} ({attempt.outcome})"
            ),
            deps=frontier,
        )
        events.append(
            TraceEvent.of(
                "fault.attempt",
                src=negotiation.src,
                dst=negotiation.dst,
                attempt=attempt_no,
                outcome=attempt.outcome,
                wait_s=f"{attempt.wait_s:.6f}",
            )
        )
        frontier = [node]
    if negotiation.ok:
        events.append(
            TraceEvent.of(
                "fault.recovered",
                src=negotiation.src,
                dst=negotiation.dst,
                retries=negotiation.retries,
            )
        )
    return frontier


@dataclass
class DispatchPlan:
    """Phase O output at one site: grouped check requests + accounting."""

    requests: List[CheckRequest] = field(default_factory=list)
    mapping_lookups: int = 0
    assistants_found: int = 0
    assistants_dispatched: int = 0
    signature_comparisons: int = 0
    #: (assistant, predicate) checks dropped because the constraint
    #: catalog proved their verdict UNKNOWN (planner constraints/full).
    checks_pruned: int = 0
    # Definitive verdicts derived locally from signatures (BL-S / PL-S).
    signature_verdicts: List[Tuple[LOid, Predicate, str]] = field(
        default_factory=list
    )


def plan_dispatch(
    site: str,
    items: Iterable[UnsolvedItem],
    system: DistributedSystem,
    use_signatures: bool = False,
    constraints=None,
) -> DispatchPlan:
    """Plan the assistant checks for the unsolved items found at *site*.

    For every unsolved item, the site probes the replicated GOid mapping
    table for isomeric objects, keeps the assistants whose home schema
    defines the missing data, and groups the survivors into one
    :class:`CheckRequest` per (home site, class, predicate set).

    With ``use_signatures`` the site first tests each assistant against
    the replicated signature catalog: assistants that provably violate a
    predicate yield a local VIOLATED verdict and are not shipped.

    With a *constraints* catalog (planner ``constraints``/``full``),
    checks whose verdict is provably UNKNOWN — a single-step relative
    predicate on an attribute that is null for every object of the
    assistant's class at its site — are dropped before dispatch.
    Certification treats UNKNOWN exactly like an unasked check, so the
    answer is identical; only the wire traffic shrinks.
    """
    plan = DispatchPlan()
    signatures = system.signatures if use_signatures else None
    if use_signatures and signatures is None:
        raise QueryError(
            "signature strategy requested but system.build_signatures() "
            "was never called"
        )
    # (db, class, predicates) -> ordered unique loids
    buckets: Dict[Tuple[str, str, Tuple[Predicate, ...]], List[LOid]] = {}
    for item in items:
        global_class = system.global_schema.global_class_of(
            item.loid.db, item.class_name
        )
        if global_class is None:
            continue
        plan.mapping_lookups += 1
        assistants = system.catalog.assistants_of(global_class, item.loid)
        plan.assistants_found += len(assistants)
        for assistant in assistants:
            plan.mapping_lookups += 1
            answerable = _answerable_predicates(
                assistant, global_class, item, system
            )
            if not answerable:
                continue
            if constraints is not None:
                home_class = system.global_schema.constituent_class(
                    assistant.db, global_class
                )
                if home_class is not None:
                    kept = []
                    for up in answerable:
                        if constraints.check_provably_unknown(
                            system.db(assistant.db),
                            home_class,
                            up.relative_predicate,
                        ):
                            plan.checks_pruned += 1
                        else:
                            kept.append(up)
                    answerable = kept
                if not answerable:
                    continue
            if signatures is not None:
                target_class = system.global_schema.constituent_class(
                    assistant.db, global_class
                )
                precheck = signatures.precheck_assistants(
                    target_class or item.class_name,
                    (assistant,),
                    [up.relative_predicate for up in answerable],
                )
                plan.signature_comparisons += precheck.comparisons
                for predicate, loids in precheck.violated.items():
                    for loid in loids:
                        plan.signature_verdicts.append(
                            (loid, predicate, VIOLATED)
                        )
                if not precheck.to_check:
                    continue
                # Ship only the predicates not already settled locally.
                answerable = [
                    up
                    for up in answerable
                    if assistant
                    not in precheck.violated.get(up.relative_predicate, ())
                ]
                if not answerable:
                    continue
            target_class = system.global_schema.constituent_class(
                assistant.db, global_class
            )
            if target_class is None:  # pragma: no cover - mapping implies it
                continue
            key = (
                assistant.db,
                target_class,
                tuple(sorted(
                    {up.relative_predicate for up in answerable}, key=str
                )),
            )
            bucket = buckets.setdefault(key, [])
            if assistant not in bucket:
                bucket.append(assistant)
                plan.assistants_dispatched += 1
    for (db_name, class_name, predicates), loids in sorted(
        buckets.items(), key=lambda kv: (kv[0][0], kv[0][1], repr(kv[0][2]))
    ):
        plan.requests.append(
            CheckRequest(
                db_name=db_name,
                class_name=class_name,
                loids=tuple(loids),
                predicates=predicates,
            )
        )
    return plan


def _answerable_predicates(
    assistant: LOid,
    global_class: str,
    item: UnsolvedItem,
    system: DistributedSystem,
):
    """The item's unsolved predicates the assistant's site can advance.

    A site can *provide* the missing data when its schema defines the
    whole relative path from the assistant's class; it can still
    *advance* a nested path when it defines a prefix (its reference hop
    feeds a chase round that continues at the referenced object's own
    isomeric copies).  Only assistants whose class lacks even the first
    step are useless — the paper's "no assistant object can provide the
    data" case.
    """
    answerable = []
    for unsolved in item.unsolved:
        depth = missing_depth(
            system.global_schema,
            assistant.db,
            global_class,
            unsolved.relative_path,
        )
        if depth is None or depth >= 1:
            answerable.append(unsolved)
    return answerable


def run_checks_paired(
    requests: Sequence[CheckRequest],
    system: DistributedSystem,
    columnar: bool = True,
) -> List[Tuple[CheckRequest, CheckReport]]:
    """Execute check requests at their home databases (steps BL_C3/PL_C3).

    Returns explicit ``(request, report)`` pairs so callers never rely on
    positional alignment between a request list and a report list — the
    seam batching rewrites, and the one a dropped or reordered report
    would silently corrupt.  *columnar* picks the home database's
    evaluation path (kernel vs per-object rows); verdicts are identical
    either way.
    """
    return [
        (
            request,
            system.db(request.db_name).check_assistants(
                request, columnar=columnar
            ),
        )
        for request in requests
    ]


def run_checks(
    requests: Sequence[CheckRequest], system: DistributedSystem
) -> List[CheckReport]:
    """Reports only (legacy view of :func:`run_checks_paired`)."""
    return [report for _, report in run_checks_paired(requests, system)]


@dataclass
class CheckBatch:
    """Every check request one site sends to one destination, coalesced
    into a single request/reply exchange.

    The request message carries all assistant LOids plus the *distinct*
    predicate descriptors of the batch (shared predicates ship once);
    the reply carries every verdict of the batch.  Individual
    :class:`CheckReport`s stay keyed by their request inside ``pairs``.
    """

    src: str
    dst: str
    pairs: List[Tuple[CheckRequest, CheckReport]] = field(
        default_factory=list
    )

    @property
    def requests(self) -> List[CheckRequest]:
        return [request for request, _ in self.pairs]

    @property
    def reports(self) -> List[CheckReport]:
        return [report for _, report in self.pairs]

    @property
    def total_loids(self) -> int:
        return sum(len(request.loids) for request, _ in self.pairs)

    @property
    def distinct_predicates(self) -> int:
        seen = set()
        for request, _ in self.pairs:
            seen.update(request.predicates)
        return len(seen)

    @property
    def total_verdicts(self) -> int:
        return sum(
            sum(len(v) for v in report.satisfied.values())
            + sum(len(v) for v in report.violated.values())
            for _, report in self.pairs
        )

    def request_bytes(self, cost) -> int:
        """One aggregated check-request message for the whole batch."""
        return cost.check_request_bytes(
            self.total_loids, self.distinct_predicates
        )

    def reply_bytes(self, cost) -> int:
        """One aggregated check-reply message for the whole batch."""
        return cost.check_reply_bytes(max(self.total_verdicts, 1))


def batch_exchanges(
    src: str, pairs: Sequence[Tuple[CheckRequest, CheckReport]]
) -> List[CheckBatch]:
    """Group ``(request, report)`` pairs into one batch per destination.

    Batches come out ordered by destination name for deterministic
    scheduling; pairs keep their relative order within a batch.
    """
    by_dst: Dict[str, CheckBatch] = {}
    for request, report in pairs:
        batch = by_dst.get(request.db_name)
        if batch is None:
            batch = by_dst[request.db_name] = CheckBatch(
                src=src, dst=request.db_name
            )
        batch.pairs.append((request, report))
    return [by_dst[dst] for dst in sorted(by_dst)]


@dataclass
class ChaseRound:
    """One follow-up check round issued by the global processing site."""

    requests: List[CheckRequest] = field(default_factory=list)
    reports: List[CheckReport] = field(default_factory=list)
    #: The same data keyed explicitly: one (request, report) pair each.
    pairs: List[Tuple[CheckRequest, CheckReport]] = field(
        default_factory=list
    )
    mapping_lookups: int = 0
    #: Sites whose follow-up checks were skipped (unreachable under the
    #: execution's fault plan) — the affected chains stay UNKNOWN.
    skipped_sites: List[str] = field(default_factory=list)


def chase_blocked(
    initial_reports: Sequence[CheckReport],
    system: DistributedSystem,
    verdicts: VerdictIndex,
    max_rounds: int,
    ctx: Optional[ExecutionContext] = None,
    deferred_skips: Optional[List[Tuple]] = None,
    columnar: bool = True,
    skip_log: Optional[List[Tuple]] = None,
) -> List[ChaseRound]:
    """Resolve multi-hop missing-reference chains by iterated checking.

    A check that walks a nested relative predicate can get stuck at an
    object other than the checked assistant (a dangling or locally absent
    reference step).  The global site — which holds the replicated GOid
    mapping tables and receives all check reports — then issues follow-up
    checks against the blocking object's own isomeric copies, repeating
    until every chain is resolved or the path runs out.  Verdicts
    propagate back to the *original* (assistant, predicate) pair that the
    certification rule looks up.

    Each hop strictly shortens the remaining relative path, so the loop
    terminates within the query's maximum path length.

    With failover enabled (``ctx.failover`` and a *deferred_skips* list),
    an unreachable follow-up site does not demote the chain immediately:
    the ``(site, original assistant, original predicate, round, holder,
    holder class, remaining predicate)`` tuple is recorded and the
    caller decides *after* all verdicts are in — another copy of the
    blocking object may settle the original pair anyway, in which case
    nothing was lost.  A *skip_log* list receives the same tuple for
    *every* skip (eager or deferred, even when the whole round dies) so
    a later repair can re-enter the chase from the exact block it
    stalled at.
    """
    # Each entry tracks the original pair a chain must report back to:
    # (original assistant, original relative predicate, blocker loid,
    #  blocker class, remaining predicate).
    pending = [
        (b.checked, b.predicate, b.holder, b.holder_class, b.remaining)
        for report in initial_reports
        for b in report.blocked
    ]
    rounds: List[ChaseRound] = []
    while pending and len(rounds) < max_rounds:
        round_data = ChaseRound()
        buckets: Dict[Tuple[str, str, Predicate], List[LOid]] = {}
        entries = []
        for orig_loid, orig_pred, holder, holder_class, remaining in pending:
            global_class = system.global_schema.global_class_of(
                holder.db, holder_class
            )
            if global_class is None:
                continue
            round_data.mapping_lookups += 1
            assistants = system.catalog.assistants_of(global_class, holder)
            answerable: List[LOid] = []
            for assistant in assistants:
                round_data.mapping_lookups += 1
                depth = missing_depth(
                    system.global_schema,
                    assistant.db,
                    global_class,
                    remaining.path,
                )
                if depth is not None and depth == 0:
                    continue  # cannot even start the walk there
                if ctx is not None and not ctx.reachable(
                    system.global_site, assistant.db
                ):
                    # The follow-up check cannot be issued; the chain
                    # stays UNKNOWN and the row remains maybe — unless
                    # failover defers the verdict to a live copy.
                    skip_entry = (
                        assistant.db,
                        orig_loid,
                        orig_pred,
                        len(rounds) + 1,
                        holder,
                        holder_class,
                        remaining,
                    )
                    if skip_log is not None:
                        skip_log.append(skip_entry)
                    if ctx.failover and deferred_skips is not None:
                        deferred_skips.append(skip_entry)
                    else:
                        if assistant.db not in round_data.skipped_sites:
                            round_data.skipped_sites.append(assistant.db)
                        ctx.note_skipped_check()
                    continue
                answerable.append(assistant)
                target_class = system.global_schema.constituent_class(
                    assistant.db, global_class
                )
                if target_class is None:  # pragma: no cover
                    continue
                bucket = buckets.setdefault(
                    (assistant.db, target_class, remaining), []
                )
                if assistant not in bucket:
                    bucket.append(assistant)
            if answerable:
                entries.append((orig_loid, orig_pred, remaining, tuple(answerable)))
        if not entries:
            break
        for (db_name, class_name, predicate), loids in sorted(
            buckets.items(), key=lambda kv: (kv[0][0], kv[0][1], str(kv[0][2]))
        ):
            round_data.requests.append(
                CheckRequest(
                    db_name=db_name,
                    class_name=class_name,
                    loids=tuple(loids),
                    predicates=(predicate,),
                )
            )
        round_data.pairs = run_checks_paired(
            round_data.requests, system, columnar=columnar
        )
        round_data.reports = [report for _, report in round_data.pairs]
        rounds.append(round_data)

        # Index this round's verdicts and blocks.
        verdict_of: Dict[Tuple[LOid, Predicate], str] = {}
        blocked_of: Dict[Tuple[LOid, Predicate], List] = {}
        for report in round_data.reports:
            for predicate, loids in report.violated.items():
                for loid in loids:
                    verdict_of[(loid, predicate)] = VIOLATED
            for predicate, loids in report.satisfied.items():
                for loid in loids:
                    verdict_of.setdefault((loid, predicate), SATISFIED)
            for block in report.blocked:
                blocked_of.setdefault(
                    (block.checked, block.predicate), []
                ).append(block)

        next_pending = []
        for orig_loid, orig_pred, remaining, assistants in entries:
            resolved = [
                verdict_of.get((assistant, remaining)) for assistant in assistants
            ]
            if VIOLATED in resolved:
                verdicts.add(orig_loid, orig_pred, VIOLATED)
                continue
            if SATISFIED in resolved:
                verdicts.add(orig_loid, orig_pred, SATISFIED)
                # Keep chasing blocked branches: a later hop can still
                # surface a violation under inconsistent data; with
                # consistent data it simply confirms.
            for assistant in assistants:
                for block in blocked_of.get((assistant, remaining), ()):
                    next_pending.append(
                        (
                            orig_loid,
                            orig_pred,
                            block.holder,
                            block.holder_class,
                            block.remaining,
                        )
                    )
        pending = next_pending
    return rounds


def collect_verdicts(
    reports: Iterable[CheckReport],
    signature_verdicts: Iterable[Tuple[LOid, Predicate, str]] = (),
) -> VerdictIndex:
    """Fold check reports and local signature verdicts into one index."""
    verdicts = VerdictIndex()
    for loid, predicate, verdict in signature_verdicts:
        verdicts.add(loid, predicate, verdict)
    for report in reports:
        verdicts.add_report(report)
    return verdicts
