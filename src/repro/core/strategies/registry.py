"""Registry of query-execution strategies.

Replaces the old module-level ``PAPER_STRATEGIES`` / ``ALL_STRATEGIES``
tuples and the ``strategy_by_name`` lookup with one queryable object:
each strategy is registered with metadata (short name, phase order,
whether it consults signature files, whether it is one of the paper's
three algorithms), so the CLI, benchmarks and docs can enumerate
strategies without hard-coding their names.

The old entry points remain as thin deprecated shims in
:mod:`repro.core.strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.strategies.adaptive import AdaptiveStrategy
from repro.core.strategies.base import Strategy
from repro.core.strategies.centralized import CentralizedStrategy
from repro.core.strategies.localized import (
    BasicLocalizedStrategy,
    ParallelLocalizedStrategy,
    SignatureBasicLocalizedStrategy,
    SignatureParallelLocalizedStrategy,
)


@dataclass(frozen=True)
class StrategyInfo:
    """Metadata describing one registered strategy."""

    name: str
    factory: Callable[[], Strategy]
    #: Phase ordering, e.g. ``"O>I>P"`` for CA or ``"O||P>I"`` for PL.
    phase_order: str
    uses_signatures: bool = False
    #: True for the paper's three presented algorithms (CA, BL, PL).
    paper: bool = False
    summary: str = ""

    def create(self) -> Strategy:
        return self.factory()


class StrategyRegistry:
    """Name -> :class:`StrategyInfo` mapping with ordered listing."""

    def __init__(self) -> None:
        self._infos: Dict[str, StrategyInfo] = {}

    def register(self, info: StrategyInfo) -> StrategyInfo:
        key = info.name.upper()
        if key in self._infos:
            raise ValueError(f"strategy {info.name!r} already registered")
        self._infos[key] = info
        return info

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._infos

    def __iter__(self) -> Iterator[StrategyInfo]:
        return iter(self._infos.values())

    def get(self, name: str) -> StrategyInfo:
        """Look up a strategy's metadata by short name (case-insensitive)."""
        try:
            return self._infos[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown strategy {name!r}; choose from {self.names()}"
            ) from None

    def create(self, name: str) -> Strategy:
        """Instantiate the strategy registered under *name*."""
        return self.get(name).create()

    def names(self, paper_only: bool = False) -> List[str]:
        """Registered short names, in registration order."""
        return [
            info.name for info in self._infos.values()
            if info.paper or not paper_only
        ]

    def infos(self, paper_only: bool = False) -> Tuple[StrategyInfo, ...]:
        return tuple(
            info for info in self._infos.values()
            if info.paper or not paper_only
        )

    def table(self) -> str:
        """A text listing of the registered strategies (for the CLI)."""
        width = max(len(info.name) for info in self._infos.values())
        order_width = max(len(info.phase_order) for info in self._infos.values())
        lines = []
        for info in self._infos.values():
            flags = []
            if info.paper:
                flags.append("paper")
            if info.uses_signatures:
                flags.append("signatures")
            lines.append(
                f"{info.name.ljust(width)}  {info.phase_order.ljust(order_width)}"
                f"  {info.summary}" + (f"  [{', '.join(flags)}]" if flags else "")
            )
        return "\n".join(lines)


def _default_registry() -> StrategyRegistry:
    registry = StrategyRegistry()
    registry.register(StrategyInfo(
        name="CA",
        factory=CentralizedStrategy,
        phase_order="O>I>P",
        paper=True,
        summary="centralized: ship extents, outerjoin, evaluate globally",
    ))
    registry.register(StrategyInfo(
        name="BL",
        factory=BasicLocalizedStrategy,
        phase_order="P>O>I",
        paper=True,
        summary="basic localized: evaluate locally, then check assistants",
    ))
    registry.register(StrategyInfo(
        name="PL",
        factory=ParallelLocalizedStrategy,
        phase_order="O||P>I",
        paper=True,
        summary="parallel localized: overlap assistant checks with evaluation",
    ))
    registry.register(StrategyInfo(
        name="BL-S",
        factory=SignatureBasicLocalizedStrategy,
        phase_order="P>O>I",
        uses_signatures=True,
        summary="BL with signature-file pre-filtering of checks",
    ))
    registry.register(StrategyInfo(
        name="PL-S",
        factory=SignatureParallelLocalizedStrategy,
        phase_order="O||P>I",
        uses_signatures=True,
        summary="PL with signature-file pre-filtering of checks",
    ))
    registry.register(StrategyInfo(
        name="AUTO",
        factory=AdaptiveStrategy,
        phase_order="model-chosen",
        summary="adaptive: analytic cost model picks CA/BL/PL per query",
    ))
    return registry


#: The process-wide default registry (CA, BL, PL, BL-S, PL-S, AUTO).
DEFAULT_REGISTRY = _default_registry()


def resolve(name: str, registry: Optional[StrategyRegistry] = None) -> Strategy:
    """Instantiate a strategy by short name from *registry* (default:
    :data:`DEFAULT_REGISTRY`)."""
    return (registry or DEFAULT_REGISTRY).create(name)
