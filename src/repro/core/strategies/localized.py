"""BL and PL — the localized approaches, plus their signature variants.

**BL** (basic localized, phase order P -> O -> I, Section 3.2): each site
evaluates its local predicates first (step BL_C1), then looks up and
dispatches assistant-object checks *only for the unsolved items of its
local maybe results* (step BL_C2).  Checks execute at the assistants'
home sites (step BL_C3) and report to the global site, which certifies
(step BL_G2).

**PL** (parallel localized, phase order O -> P -> I, Section 3.3): each
site *first* scans every root object for missing data and dispatches the
assistant checks (step PL_C1), then evaluates local predicates (step
PL_C2) while the checks proceed at other sites in parallel (step PL_C3).
PL trades extra mapping-table lookups, transfers and checks — including
for objects that local evaluation would have eliminated — for the overlap
of phases O and P.

**BL-S / PL-S** (future-work extension): before shipping assistant LOids,
the site tests the replicated object signatures; assistants that provably
violate an equality predicate yield a local VIOLATED verdict and are not
transferred, cutting phase-O traffic at the price of signature
comparisons.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.conditions.algebra import SiteDown, UncheckedCopy, attach
from repro.conditions.reasons import DegradationReason
from repro.core.binding_resolution import (
    ResolutionStats,
    resolve_missing_bindings,
)
from repro.core.certification import (
    SATISFIED,
    VIOLATED,
    CertificationStats,
    certify,
)
from repro.core.decompose import attributes_needed
from repro.core.query import Query
from repro.core.results import Availability, ResultSet
from repro.core.strategies.base import (
    DispatchPlan,
    Strategy,
    StrategyResult,
    batch_exchanges,
    chase_blocked,
    collect_verdicts,
    fault_wait_chain,
    plan_dispatch,
    run_checks_paired,
)
from repro.core.system import DistributedSystem
from repro.faults.injector import ExecutionContext
from repro.objectdb.ids import GOid
from repro.objectdb.local_query import CheckReport, LocalResultSet
from repro.obs.spans import TraceEvent
from repro.planner import uses_constraints
from repro.resilience.failover import (
    PendingSkip,
    covered_by_verdicts,
    pending_skips_of,
    plan_hedge,
    relay_route,
)
from repro.sim.metrics import ExecutionMetrics, WorkCounters
from repro.sim.taskgraph import FederationSim, Node, PHASE_I, PHASE_O, PHASE_P, PHASE_SCAN


def annotate_site_loss(
    system: DistributedSystem,
    query: Query,
    local_results: Dict[str, LocalResultSet],
    results: ResultSet,
    down: Set[str],
    skipped_goids: Dict[GOid, Set[str]],
    conditions: bool = True,
    queried_down: Iterable[str] = (),
) -> None:
    """Annotate the maybe rows whose certification an unreachable site
    blocked — the localized strategies' degraded-answer semantics.

    Per-site provenance survives a partial execution, so only the rows
    whose assistant checks were skipped (*skipped_goids*, entity -> the
    down check sites), whose unsolved items' checks were skipped, or
    whose entity has a copy at a *down* site are affected: they stay
    maybe, annotated with why.  With *conditions*, each such row also
    carries machine-dischargeable atoms — :class:`UncheckedCopy` for the
    exact skipped check pairs and :class:`SiteDown` for unreachable copy
    holders.  *queried_down* names sites whose whole local block dropped;
    they contribute ``SiteDown`` atoms but never notes, so degraded notes
    stay byte-identical to the historical rendering.

    The re-certifier calls this same function after a partial repair, so
    a still-degraded repaired answer is annotated exactly like a fresh
    degraded execution would annotate it.
    """
    down = set(down)
    atom_down = down | set(queried_down)
    table = system.catalog.table(query.range_class)
    # root goid -> goids of its unsolved items: the (possibly
    # branch-class) entities whose assistant checks this row's
    # certification depended on.
    item_goids: Dict[GOid, Set[GOid]] = {}
    for site_result in local_results.values():
        for row in site_result.maybe_rows:
            root = system.catalog.goid_of(query.range_class, row.loid)
            if root is None:
                continue
            bag = item_goids.setdefault(root, set())
            for item in row.unsolved_items:
                g_cls = system.global_schema.global_class_of(
                    item.loid.db, item.class_name
                )
                if g_cls is None:
                    continue
                goid = system.catalog.goid_of(g_cls, item.loid)
                if goid is not None:
                    bag.add(goid)
    for result_row in results.maybe:
        if not result_row.unsolved:
            continue
        # The row is affected when an assistant check for it (or
        # for one of its unsolved items) was skipped, or when the
        # entity has a copy at a down site (its certification
        # evidence may live there).
        unchecked: Dict[GOid, Set[str]] = {}
        root_sites = set(skipped_goids.get(result_row.goid, ()))
        if root_sites:
            unchecked[result_row.goid] = root_sites
        note_sites = set(root_sites)
        for goid in item_goids.get(result_row.goid, ()):
            item_sites = set(skipped_goids.get(goid, ()))
            if item_sites:
                unchecked[goid] = item_sites
                note_sites |= item_sites
        placements = set(table.loids_of(result_row.goid))
        note_sites |= placements & down
        for site in sorted(note_sites):
            note = str(DegradationReason.site_unavailable(site))
            if note not in result_row.notes:
                result_row.notes = result_row.notes + (note,)
        if not conditions:
            continue
        atoms = [
            UncheckedCopy(site=site, goid=goid)
            for goid, goid_sites in unchecked.items()
            for site in sorted(goid_sites)
        ]
        atoms.extend(
            SiteDown(site=site) for site in sorted(placements & atom_down)
        )
        if atoms:
            attach(result_row, *atoms)


class _LocalizedStrategy(Strategy):
    """Common machinery of BL and PL; subclasses fix the phase order."""

    #: True for PL: dispatch assistant checks before local evaluation.
    phase_o_first: bool = False
    #: True for the signature variants.
    use_signatures: bool = False

    def execute(
        self,
        system: DistributedSystem,
        query: Query,
        ctx: Optional[ExecutionContext] = None,
    ) -> StrategyResult:
        decomposed = system.decompose(query)
        fed = system.simulator(ctx.plan if ctx is not None else None)
        work = WorkCounters()
        cost = system.cost_model
        use_columnar = self.effective_columnar(ctx)
        use_conditions = self.effective_conditions(ctx)
        # Constraint catalog, consulted only under planner=constraints/full.
        # Soundness contract: a prune fires only when the static path
        # would provably produce the identical answer (empty local result
        # set; UNKNOWN check verdict, which certification treats exactly
        # like an unasked check).
        constraints = (
            system.constraints
            if uses_constraints(self.effective_planner(ctx))
            else None
        )

        local_results: Dict[str, LocalResultSet] = {}
        reports: List[CheckReport] = []
        signature_verdicts = []
        certify_deps: List[Node] = []
        events: List[TraceEvent] = []
        # Assistant home sites whose checks could not be dispatched
        # (dict-as-ordered-set: insertion order is the deterministic
        # site-loop order, membership tests stay O(1)).
        unreachable_check_sites: Dict[str, None] = {}
        #: Entities whose assistant checks were skipped -> the down sites.
        skipped_goids: Dict[GOid, Set[str]] = {}
        # Failover mode: skipped check pairs are not demoted eagerly but
        # resolved after verdict collection (a live isomeric copy may
        # have settled them anyway).
        failover = ctx is not None and ctx.failover
        if failover:
            ctx.recovery_tracked = True
        #: (src, request, pending pairs) per check request that could not
        #: be dispatched anywhere, awaiting post-verdict resolution.
        deferred_requests: List[Tuple[str, object, List[PendingSkip]]] = []
        #: (src site, CheckRequest) pairs that were never executed — the
        #: re-runnable half of the repair state.
        skipped_check_requests: List[Tuple[str, object]] = []

        branch_classes = query.branch_classes(system.global_schema.schema)
        queried = list(decomposed.local_queries)
        # Checks execute at assistants' home sites; size their reads with
        # the average branch object of the sites actually consulted.
        # Under a fault plan, sites whose negotiation fails drop out of
        # the execution entirely, so they must not skew the average
        # (negotiations are memoized — the per-site loop below reuses
        # these outcomes without re-paying any retry ladder).
        if ctx is None:
            surviving = queried
        else:
            surviving = [
                db for db in queried
                if ctx.contact(system.global_site, db).ok
            ]
        avg_branch_bytes = self._avg_branch_bytes(system, query, surviving)

        for db_name, local_query in decomposed.local_queries.items():
            if constraints is not None:
                prune_reason = constraints.site_prune_reason(
                    system.db(db_name), local_query
                )
                if prune_reason is not None:
                    # The catalog proves this site block answers with
                    # zero rows; synthesize the empty result set the
                    # static path would have computed and skip the
                    # site's scan/evaluate/dispatch work entirely.
                    local_results[db_name] = LocalResultSet(
                        db_name=db_name,
                        range_class=local_query.range_class,
                    )
                    work.sites_pruned += 1
                    events.append(TraceEvent.of(
                        "planner.prune",
                        kind="site",
                        site=db_name,
                        reason=prune_reason,
                    ))
                    continue
            entry_deps: List[Node] = []
            if ctx is not None:
                negotiation = ctx.contact(system.global_site, db_name)
                entry_deps = fault_wait_chain(fed, ctx, negotiation, events)
                if not negotiation.ok:
                    # The whole site block drops out: its local results
                    # are lost, but every other site's provenance is
                    # intact — certification proceeds over the sites
                    # actually queried.
                    ctx.note_queried_site_down(db_name)
                    events.append(
                        TraceEvent.of(
                            "fault.site_skipped",
                            site=db_name,
                            reason=negotiation.reason,
                            attempts=len(negotiation.attempts),
                        )
                    )
                    continue
            db = system.db(db_name)
            root_obj_bytes, branch_obj_bytes = self._object_sizes(
                system, query, db_name
            )
            branch_capacity = sum(
                db.count(local_cls)
                for global_cls in branch_classes
                for local_cls in [
                    system.global_schema.constituent_class(db_name, global_cls)
                ]
                if local_cls is not None
            )

            # --- run the site's work for real (logic layer) -------------
            result = db.execute_local(local_query, columnar=use_columnar)
            local_results[db_name] = result
            if self.phase_o_first:
                scan, scan_meter = db.collect_unsolved(
                    local_query, columnar=use_columnar
                )
                items = scan.all_items()
            else:
                items = [
                    item
                    for row in result.maybe_rows
                    for item in row.unsolved_items
                ]
            plan = plan_dispatch(
                db_name, items, system,
                use_signatures=self.use_signatures,
                constraints=constraints,
            )
            signature_verdicts.extend(plan.signature_verdicts)
            work.checks_pruned += plan.checks_pruned
            if plan.checks_pruned:
                events.append(TraceEvent.of(
                    "planner.prune",
                    kind="check",
                    site=db_name,
                    checks_pruned=plan.checks_pruned,
                ))
            events.append(TraceEvent.of(
                "dispatch.plan",
                site=db_name,
                unsolved_items=len(items),
                assistants=plan.assistants_found,
                check_requests=len(plan.requests),
                signature_verdicts=len(plan.signature_verdicts),
            ))

            work.objects_scanned += result.objects_scanned
            work.comparisons += result.comparisons
            work.assistants_looked_up += plan.assistants_found
            work.signature_comparisons += plan.signature_comparisons

            # --- build the site's activity sub-graph --------------------
            if self.phase_o_first:
                eval_node, dispatch_node = self._build_pl_site(
                    fed, db_name, result, scan, scan_meter, plan,
                    root_obj_bytes, branch_obj_bytes, branch_capacity, work,
                    entry_deps=entry_deps,
                )
            else:
                eval_node, dispatch_node = self._build_bl_site(
                    fed, db_name, result, plan,
                    root_obj_bytes, branch_obj_bytes, branch_capacity, work,
                    entry_deps=entry_deps,
                )

            # --- ship local results to the global processing site -------
            result_bytes = self._result_bytes(result, query, cost)
            work.bytes_network += int(result_bytes)
            work.messages += 1
            certify_deps.append(
                fed.transfer(
                    db_name,
                    system.global_site,
                    nbytes=result_bytes,
                    label=f"{self.name} results",
                    deps=[eval_node],
                )
            )

            # --- dispatch assistant checks -------------------------------
            # Requests whose direct link is dead fail over to the
            # global-site relay when that route is alive; requests with
            # no live route are skipped — eagerly demoting their rows
            # (legacy), or deferring the demotion until verdicts are in
            # (failover mode: a live isomeric copy may settle the pair).
            runnable = []
            relayed = []
            for request in plan.requests:
                if ctx is not None and not ctx.reachable(
                    db_name, request.db_name
                ):
                    if failover:
                        via = relay_route(ctx, system, request.db_name)
                        if via is not None:
                            ctx.checks_failed_over += 1
                            events.append(
                                TraceEvent.of(
                                    "fault.failover",
                                    src=db_name,
                                    dst=request.db_name,
                                    via=via,
                                    assistants=len(request.loids),
                                )
                            )
                            relayed.append(request)
                            continue
                        deferred_requests.append((
                            db_name,
                            request,
                            pending_skips_of(system, db_name, request),
                        ))
                        events.append(
                            TraceEvent.of(
                                "fault.check_skipped",
                                src=db_name,
                                dst=request.db_name,
                                assistants=len(request.loids),
                            )
                        )
                        continue
                    unreachable_check_sites.setdefault(request.db_name)
                    skipped_check_requests.append((db_name, request))
                    g_cls = system.global_schema.global_class_of(
                        request.db_name, request.class_name
                    )
                    for loid in request.loids:
                        goid = (
                            system.catalog.goid_of(g_cls, loid)
                            if g_cls is not None else None
                        )
                        if goid is not None:
                            skipped_goids.setdefault(goid, set()).add(
                                request.db_name
                            )
                    ctx.note_skipped_check()
                    events.append(
                        TraceEvent.of(
                            "fault.check_skipped",
                            src=db_name,
                            dst=request.db_name,
                            assistants=len(request.loids),
                        )
                    )
                    continue
                runnable.append(request)
            paired = run_checks_paired(runnable, system, columnar=use_columnar)
            relayed_paired = run_checks_paired(
                relayed, system, columnar=use_columnar
            )
            reports.extend(report for _, report in paired)
            reports.extend(report for _, report in relayed_paired)
            self._dispatch_checks(
                fed, system, ctx, db_name, paired, relayed_paired,
                dispatch_node, certify_deps, work, avg_branch_bytes,
                events,
            )

        # --- chase rounds for multi-hop missing-reference chains ------------
        verdicts = collect_verdicts(reports, signature_verdicts)
        predicates = query.all_predicates()
        max_rounds = max((len(p.path) for p in predicates), default=0)
        deferred_chase_skips: List[Tuple] = []
        chase_skip_log: List[Tuple] = []
        chase_rounds = chase_blocked(
            reports, system, verdicts, max_rounds, ctx=ctx,
            deferred_skips=deferred_chase_skips, columnar=use_columnar,
            skip_log=chase_skip_log,
        )
        for round_no, chase in enumerate(chase_rounds, start=1):
            events.append(TraceEvent.of(
                "chase.round",
                round=round_no,
                requests=len(chase.requests),
                mapping_lookups=chase.mapping_lookups,
            ))
            for site in chase.skipped_sites:
                unreachable_check_sites.setdefault(site)
                events.append(TraceEvent.of(
                    "fault.check_skipped",
                    src=system.global_site,
                    dst=site,
                    round=round_no,
                ))

        # --- failover post-resolution ----------------------------------
        # Every verdict is in; decide now which skipped pairs actually
        # lost anything.  A pair settled definitively by any live
        # isomeric copy is certified exactly as a fault-free run would
        # certify it; only the rest demote their rows.
        if failover:
            recovered_pairs = 0
            demoted_pairs = 0
            for src, request, skips in deferred_requests:
                dst = request.db_name
                uncovered = [
                    skip for skip in skips
                    if not covered_by_verdicts(system, verdicts, skip)
                ]
                if not uncovered:
                    recovered_pairs += len(skips)
                    continue
                demoted_pairs += len(uncovered)
                unreachable_check_sites.setdefault(dst)
                skipped_check_requests.append((src, request))
                ctx.note_skipped_check()
                for skip in uncovered:
                    skipped_goids.setdefault(skip.goid, set()).add(dst)
            for (
                site, orig_loid, orig_pred, round_no, _holder, _hcls, _rest
            ) in deferred_chase_skips:
                if verdicts.get(orig_loid, orig_pred) in (
                    SATISFIED, VIOLATED
                ):
                    recovered_pairs += 1
                    continue
                demoted_pairs += 1
                unreachable_check_sites.setdefault(site)
                ctx.note_skipped_check()
                events.append(TraceEvent.of(
                    "fault.check_skipped",
                    src=system.global_site,
                    dst=site,
                    round=round_no,
                ))
            if recovered_pairs or demoted_pairs:
                events.append(TraceEvent.of(
                    "fault.failover",
                    mode="coverage",
                    recovered=recovered_pairs,
                    demoted=demoted_pairs,
                ))
        prev_deps: List[Node] = list(certify_deps)
        for round_no, chase in enumerate(chase_rounds, start=1):
            lookup = fed.cpu(
                system.global_site,
                comparisons=chase.mapping_lookups,
                label=f"{self.name} chase lookup",
                phase=PHASE_O,
                deps=prev_deps,
            )
            work.comparisons += chase.mapping_lookups
            certify_deps.append(lookup)
            round_replies: List[Node] = []
            if self.effective_batch_checks(ctx):
                for batch in batch_exchanges(
                    system.global_site, chase.pairs
                ):
                    round_replies.append(self._schedule_batch(
                        fed, system, batch, [lookup], work,
                        avg_branch_bytes, events, kind="chase",
                        round_no=round_no,
                    ))
            else:
                for request, report in chase.pairs:
                    round_replies.append(self._schedule_single(
                        fed, system, request, report,
                        system.global_site, [lookup], work,
                        avg_branch_bytes, kind="chase",
                    ))
            certify_deps.extend(round_replies)
            prev_deps = round_replies or [lookup]

        # --- step BL_G2 / PL_G2: certification at the global site ----------
        cert_stats = CertificationStats()
        results = certify(
            query,
            system.global_schema,
            system.catalog,
            local_results,
            verdicts,
            cert_stats,
            conditions=use_conditions,
        )
        work.comparisons += cert_stats.comparisons
        certify_node = fed.cpu(
            system.global_site,
            comparisons=cert_stats.comparisons,
            label=f"{self.name}_G2 certify",
            phase=PHASE_I,
            deps=certify_deps,
        )

        # --- step BL_G3 / PL_G3: binding completion at the global site -----
        # Local rows bind only what their own site can walk; values held
        # solely by another site's copy (and the union semantics of
        # multi-valued global attributes) are fetched here so the answer
        # is binding-identical to CA's, not merely entity-identical.
        res_stats = ResolutionStats()
        resolve_missing_bindings(system, query, results, ctx=ctx, stats=res_stats)
        work.comparisons += res_stats.mapping_lookups
        if ctx is not None:
            ctx.fetches_unresolved = res_stats.unresolved
        if res_stats.fetches:
            events.append(TraceEvent.of(
                "bindings.resolved",
                entities=res_stats.entities_resolved,
                fetches=res_stats.fetches,
                sites=",".join(sorted(res_stats.fetches_by_site)),
            ))
        for fetch_db in sorted(res_stats.fetches_by_site):
            count = res_stats.fetches_by_site[fetch_db]
            request_bytes = cost.check_request_bytes(count, 1)
            reply_bytes = count * cost.attribute_bytes
            work.bytes_network += request_bytes + reply_bytes
            work.messages += 2
            send = fed.transfer(
                system.global_site,
                fetch_db,
                nbytes=request_bytes,
                label=f"{self.name} fetch-req",
                deps=[certify_node],
                phase=PHASE_I,
            )
            fetch_bytes = count * avg_branch_bytes
            work.bytes_disk += int(fetch_bytes)
            read = fed.disk(
                fetch_db,
                nbytes=fetch_bytes,
                label=f"{self.name} fetch read",
                phase=PHASE_I,
                deps=[send],
                seeks=count,
            )
            fed.transfer(
                fetch_db,
                system.global_site,
                nbytes=reply_bytes,
                label=f"{self.name} fetch-reply",
                deps=[read],
                phase=PHASE_I,
            )

        # --- degraded-answer annotations under site loss -------------------
        # Localized strategies keep per-site provenance, so only the
        # rows whose certification depended on an unreachable assistant
        # site are affected: they simply stay maybe, annotated with why.
        if ctx is not None and (
            unreachable_check_sites
            or (use_conditions and ctx.queried_sites_down)
        ):
            annotate_site_loss(
                system,
                query,
                local_results,
                results,
                set(unreachable_check_sites),
                skipped_goids,
                conditions=use_conditions,
                queried_down=tuple(ctx.queried_sites_down),
            )

        # --- repair state: what an incremental re-certification needs ------
        # Everything this execution *did not* do, plus the evidence it
        # collected: healed sites can then be re-contacted one by one and
        # the answer re-certified without re-running anything that
        # already succeeded.
        repair_state = None
        if use_conditions and ctx is not None:
            down_sites = tuple(sorted(ctx.queried_sites_down))
            remaining_chase = tuple(
                (site, orig_loid, orig_pred, holder, holder_cls, rest)
                for (
                    site, orig_loid, orig_pred, _round, holder,
                    holder_cls, rest,
                ) in chase_skip_log
                if verdicts.get(orig_loid, orig_pred)
                not in (SATISFIED, VIOLATED)
            )
            if down_sites or skipped_check_requests or remaining_chase:
                from repro.conditions.recertify import LocalizedRepairState

                repair_state = LocalizedRepairState(
                    strategy=self.name,
                    query=query,
                    use_signatures=self.use_signatures,
                    columnar=use_columnar,
                    local_queries=dict(decomposed.local_queries),
                    local_results=dict(local_results),
                    down_sites=down_sites,
                    skipped_requests=tuple(skipped_check_requests),
                    skipped_chase=remaining_chase,
                    verdicts=verdicts.clone(),
                )
                events.append(TraceEvent.of(
                    "conditions.attached",
                    strategy=self.name,
                    down_sites=",".join(down_sites),
                    skipped_requests=len(skipped_check_requests),
                    skipped_chase=len(remaining_chase),
                    rows=len(results.maybe),
                ))

        fault_windows = ()
        if ctx is not None:
            work.retries = ctx.retries
            work.timeouts = ctx.timeouts
            work.messages_lost = ctx.messages_lost
            work.checks_failed_over = ctx.checks_failed_over
            work.hedges = ctx.hedges
            fault_windows = ctx.plan.fault_windows(fed.sites)

        outcome = fed.run()
        metrics = ExecutionMetrics.from_outcome(
            self.name,
            outcome,
            work,
            certain_results=len(results.certain),
            maybe_results=len(results.maybe),
            events=events,
            fault_windows=fault_windows,
        )
        return StrategyResult(
            results=results.sort(),
            metrics=metrics,
            availability=(
                ctx.availability() if ctx is not None else Availability()
            ),
            repair=repair_state,
        )

    # --- phase-O exchanges --------------------------------------------------

    def _dispatch_checks(
        self,
        fed: FederationSim,
        system: DistributedSystem,
        ctx: Optional[ExecutionContext],
        db_name: str,
        paired: List[Tuple["CheckRequest", CheckReport]],
        relayed: List[Tuple["CheckRequest", CheckReport]],
        dispatch_node: Node,
        certify_deps: List[Node],
        work: WorkCounters,
        avg_branch_bytes: float,
        events: List[TraceEvent],
    ) -> None:
        """Schedule one site's check exchanges, batched or per-request.

        Batched (the default): every request sharing a destination rides
        one request/reply message pair.  Unbatched (``--no-batch``): the
        historical one-pair-per-request protocol, byte for byte.

        *relayed* pairs lost their direct link: their requests hop
        through the global-site relay (``src -> global -> dst``); the
        reply path (``dst -> global``) is the same as always.  Direct
        pairs may additionally *hedge*: when the policy sets a hedge
        delay and the direct negotiation is slower than it, a duplicate
        request races through the relay and the faster route carries the
        exchange while the loser's request message is still paid for.
        """
        if self.effective_batch_checks(ctx):
            for batch in batch_exchanges(db_name, paired):
                send_deps: List[Node] = [dispatch_node]
                via: Optional[str] = None
                if ctx is not None:
                    negotiation = ctx.contact(db_name, batch.dst)
                    send_deps, via = self._hedged_deps(
                        fed, system, ctx, db_name, batch.dst,
                        negotiation, send_deps,
                        batch.request_bytes(system.cost_model),
                        work, events,
                    )
                certify_deps.append(self._schedule_batch(
                    fed, system, batch, send_deps, work,
                    avg_branch_bytes, events, kind="check", via=via,
                ))
            for batch in batch_exchanges(db_name, relayed):
                send_deps = fault_wait_chain(
                    fed,
                    ctx,
                    ctx.contact(system.global_site, batch.dst),
                    events,
                    deps=[dispatch_node],
                )
                certify_deps.append(self._schedule_batch(
                    fed, system, batch, send_deps, work,
                    avg_branch_bytes, events, kind="check",
                    via=system.global_site,
                ))
            return
        for request, report in paired:
            send_deps = [dispatch_node]
            via = None
            if ctx is not None:
                negotiation = ctx.contact(db_name, request.db_name)
                send_deps, via = self._hedged_deps(
                    fed, system, ctx, db_name, request.db_name,
                    negotiation, send_deps,
                    system.cost_model.check_request_bytes(
                        len(request.loids), len(request.predicates)
                    ),
                    work, events,
                )
            certify_deps.append(self._schedule_single(
                fed, system, request, report, db_name, send_deps, work,
                avg_branch_bytes, kind="check", via=via,
            ))
        for request, report in relayed:
            send_deps = fault_wait_chain(
                fed,
                ctx,
                ctx.contact(system.global_site, request.db_name),
                events,
                deps=[dispatch_node],
            )
            certify_deps.append(self._schedule_single(
                fed, system, request, report, db_name, send_deps, work,
                avg_branch_bytes, kind="check", via=system.global_site,
            ))

    def _hedged_deps(
        self,
        fed: FederationSim,
        system: DistributedSystem,
        ctx: ExecutionContext,
        src: str,
        dst: str,
        negotiation,
        send_deps: List[Node],
        request_bytes: int,
        work: WorkCounters,
        events: List[TraceEvent],
    ) -> Tuple[List[Node], Optional[str]]:
        """Dependency frontier (and relay site, if the relay won) for
        one direct exchange, racing the hedge when the policy asks.

        No hedge (or the direct route wins): the link's fault-wait
        ladder gates the send as before; the losing relay duplicate — if
        a race fired — is billed but never gates anything.  Relay wins:
        the send waits on the seeded hedge delay plus the relay link's
        ladder instead of the slow direct ladder, and the direct
        request's bytes are billed as the loser.
        """
        decision = plan_hedge(ctx, system, src, dst, negotiation)
        if decision is None:
            return (
                fault_wait_chain(fed, ctx, negotiation, events, deps=send_deps),
                None,
            )
        ctx.hedges += 1
        events.append(TraceEvent.of(
            "fault.hedge",
            src=src,
            dst=dst,
            via=decision.via,
            winner=decision.winner,
            delay_s=f"{decision.delay_s:.6f}",
        ))
        # The loser's request message is sent regardless; pay for it.
        work.bytes_network += request_bytes
        work.messages += 1
        if not decision.relay_won:
            return (
                fault_wait_chain(fed, ctx, negotiation, events, deps=send_deps),
                None,
            )
        ctx.hedges_won += 1
        delay_node = fed.delay(
            src,
            decision.delay_s,
            label=f"hedge {src}->{dst}",
            deps=send_deps,
        )
        return (
            fault_wait_chain(
                fed,
                ctx,
                ctx.contact(system.global_site, dst),
                events,
                deps=[delay_node],
            ),
            decision.via,
        )

    def _schedule_batch(
        self,
        fed: FederationSim,
        system: DistributedSystem,
        batch,
        send_deps: List[Node],
        work: WorkCounters,
        avg_branch_bytes: float,
        events: List[TraceEvent],
        kind: str,
        round_no: Optional[int] = None,
        via: Optional[str] = None,
    ) -> Node:
        """One coalesced request/reply exchange; returns the reply node.

        The per-request disk read and verdict evaluation at the
        destination stay separate nodes (same labels as the unbatched
        protocol, so Gantt granularity is unchanged); only the two
        network messages are shared by the whole batch.

        With *via* (failover / hedge relay) the request rides two hops
        (``src -> via -> dst``), each billed in full; the reply path is
        unchanged (``dst -> global site``), so a relayed exchange costs
        one extra message and one extra request-sized transfer.
        """
        cost = system.cost_model
        request_bytes = batch.request_bytes(cost)
        reply_bytes = batch.reply_bytes(cost)
        hops = 1 if via is None else 2
        work.bytes_network += request_bytes * hops + reply_bytes
        work.messages += hops + 1
        if via is None:
            send = fed.transfer(
                batch.src,
                batch.dst,
                nbytes=request_bytes,
                label=f"{self.name} {kind}-req",
                deps=send_deps,
                phase=PHASE_O,
            )
        else:
            hop = fed.transfer(
                batch.src,
                via,
                nbytes=request_bytes,
                label=f"{self.name} {kind}-req",
                deps=send_deps,
                phase=PHASE_O,
            )
            send = fed.transfer(
                via,
                batch.dst,
                nbytes=request_bytes,
                label=f"{self.name} {kind}-relay",
                deps=[hop],
                phase=PHASE_O,
            )
        check_cpus: List[Node] = []
        for _, report in batch.pairs:
            work.assistants_checked += report.objects_checked
            work.comparisons += report.comparisons
            check_bytes = report.objects_checked * avg_branch_bytes
            work.bytes_disk += int(check_bytes)
            check_disk = fed.disk(
                batch.dst,
                nbytes=check_bytes,
                label=f"{self.name} {kind} read",
                phase=PHASE_O,
                deps=[send],
                seeks=report.objects_checked,
            )
            check_cpus.append(
                fed.cpu(
                    batch.dst,
                    comparisons=report.comparisons,
                    label=f"{self.name} {kind} eval",
                    phase=PHASE_O,
                    deps=[check_disk],
                )
            )
        attrs = dict(
            src=batch.src,
            dst=batch.dst,
            requests=len(batch.pairs),
            loids=batch.total_loids,
            request_bytes=request_bytes,
            reply_bytes=reply_bytes,
        )
        if round_no is not None:
            attrs["round"] = round_no
        if via is not None:
            attrs["via"] = via
        events.append(TraceEvent.of("dispatch.batch", **attrs))
        return fed.transfer(
            batch.dst,
            system.global_site,
            nbytes=reply_bytes,
            label=f"{self.name} {kind}-reply",
            deps=check_cpus or [send],
            phase=PHASE_O,
        )

    def _schedule_single(
        self,
        fed: FederationSim,
        system: DistributedSystem,
        request,
        report: CheckReport,
        src: str,
        send_deps: List[Node],
        work: WorkCounters,
        avg_branch_bytes: float,
        kind: str,
        via: Optional[str] = None,
    ) -> Node:
        """One per-request exchange (the pre-batching wire protocol).

        *via* relays the request over two hops, exactly as in
        :meth:`_schedule_batch`.
        """
        cost = system.cost_model
        request_bytes = cost.check_request_bytes(
            len(request.loids), len(request.predicates)
        )
        verdict_count = sum(
            len(v) for v in report.satisfied.values()
        ) + sum(len(v) for v in report.violated.values())
        reply_bytes = cost.check_reply_bytes(max(verdict_count, 1))
        hops = 1 if via is None else 2
        work.bytes_network += request_bytes * hops + reply_bytes
        work.messages += hops + 1
        work.assistants_checked += report.objects_checked
        work.comparisons += report.comparisons
        if via is None:
            send = fed.transfer(
                src,
                request.db_name,
                nbytes=request_bytes,
                label=f"{self.name} {kind}-req",
                deps=send_deps,
                phase=PHASE_O,
            )
        else:
            hop = fed.transfer(
                src,
                via,
                nbytes=request_bytes,
                label=f"{self.name} {kind}-req",
                deps=send_deps,
                phase=PHASE_O,
            )
            send = fed.transfer(
                via,
                request.db_name,
                nbytes=request_bytes,
                label=f"{self.name} {kind}-relay",
                deps=[hop],
                phase=PHASE_O,
            )
        check_bytes = report.objects_checked * avg_branch_bytes
        work.bytes_disk += int(check_bytes)
        check_disk = fed.disk(
            request.db_name,
            nbytes=check_bytes,
            label=f"{self.name} {kind} read",
            phase=PHASE_O,
            deps=[send],
            seeks=report.objects_checked,
        )
        check_cpu = fed.cpu(
            request.db_name,
            comparisons=report.comparisons,
            label=f"{self.name} {kind} eval",
            phase=PHASE_O,
            deps=[check_disk],
        )
        return fed.transfer(
            request.db_name,
            system.global_site,
            nbytes=reply_bytes,
            label=f"{self.name} {kind}-reply",
            deps=[check_cpu],
            phase=PHASE_O,
        )

    # --- per-site graphs ----------------------------------------------------

    def _build_bl_site(
        self,
        fed: FederationSim,
        db_name: str,
        result: LocalResultSet,
        plan: DispatchPlan,
        root_obj_bytes: int,
        branch_obj_bytes: int,
        branch_capacity: int,
        work: WorkCounters,
        entry_deps: Tuple[Node, ...] = (),
    ) -> Tuple[Node, Node]:
        """BL at one site: evaluate (P), then look up assistants (O).

        Branch-object reads are capped at the site's branch extents: path
        walks revisit objects, but a buffered extent is read from disk
        once (CA's export charges the same one-pass read).
        """
        scan_bytes = (
            result.objects_scanned * root_obj_bytes
            + min(result.derefs, branch_capacity) * branch_obj_bytes
        )
        work.bytes_disk += int(scan_bytes)
        # Index-restricted scans fetch candidates by LOid: random access.
        scan_seeks = (
            result.objects_scanned if result.index_probe is not None else 0
        )
        scan = fed.disk(
            db_name, nbytes=scan_bytes, label="BL_C1 scan", phase=PHASE_SCAN,
            seeks=scan_seeks, deps=entry_deps,
        )
        evaluate = fed.cpu(
            db_name,
            comparisons=result.comparisons,
            label="BL_C1 evaluate",
            phase=PHASE_P,
            deps=[scan],
        )
        lookup = fed.cpu(
            db_name,
            comparisons=plan.mapping_lookups + plan.signature_comparisons,
            label="BL_C2 lookup",
            phase=PHASE_O,
            deps=[evaluate],
        )
        work.comparisons += plan.mapping_lookups
        # Results ship after C2; checks dispatch from C2.
        return lookup, lookup

    def _build_pl_site(
        self,
        fed: FederationSim,
        db_name: str,
        result: LocalResultSet,
        scan,
        scan_meter,
        plan: DispatchPlan,
        root_obj_bytes: int,
        branch_obj_bytes: int,
        branch_capacity: int,
        work: WorkCounters,
        entry_deps: Tuple[Node, ...] = (),
    ) -> Tuple[Node, Node]:
        """PL at one site: scan for missing data + dispatch (O), then
        evaluate (P).

        The phase-O scan reads the root extent and the branch objects its
        missing-data probes touch; the evaluation pass then reads only
        the *marginal* branch objects it needs beyond those (the extent
        is buffered — the paper charges PL's overhead to mapping-table
        checks and assistant transfers, not to a second full scan).
        """
        probe_reads = min(scan_meter.derefs, branch_capacity)
        scan_bytes = (
            scan.objects_scanned * root_obj_bytes
            + probe_reads * branch_obj_bytes
        )
        work.bytes_disk += int(scan_bytes)
        work.comparisons += scan_meter.comparisons + plan.mapping_lookups
        read = fed.disk(
            db_name, nbytes=scan_bytes, label="PL_C1 scan", phase=PHASE_SCAN,
            deps=entry_deps,
        )
        dispatch = fed.cpu(
            db_name,
            comparisons=scan_meter.comparisons
            + plan.mapping_lookups
            + plan.signature_comparisons,
            label="PL_C1 lookup",
            phase=PHASE_O,
            deps=[read],
        )
        eval_reads = min(result.derefs, branch_capacity)
        marginal_derefs = max(0, eval_reads - probe_reads)
        eval_bytes = marginal_derefs * branch_obj_bytes
        work.bytes_disk += int(eval_bytes)
        eval_read = fed.disk(
            db_name,
            nbytes=eval_bytes,
            label="PL_C2 read",
            phase=PHASE_SCAN,
            deps=[dispatch],
        )
        evaluate = fed.cpu(
            db_name,
            comparisons=result.comparisons,
            label="PL_C2 evaluate",
            phase=PHASE_P,
            deps=[eval_read],
        )
        return evaluate, dispatch

    # --- sizes ----------------------------------------------------------------

    @staticmethod
    def _avg_branch_bytes(
        system: DistributedSystem, query: Query, sites
    ) -> float:
        """Average branch-object size across the sites consulted."""
        sizes = [
            _LocalizedStrategy._object_sizes(system, query, db)[1]
            for db in sites
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @staticmethod
    def _object_sizes(
        system: DistributedSystem, query: Query, db_name: str
    ) -> Tuple[float, float]:
        """(root object bytes, average branch object bytes) at one site.

        Only attributes the site's constituent classes actually define
        are stored there, so projections (and disk reads) are sized
        per-site.
        """
        cost = system.cost_model
        db = system.db(db_name)

        def local_attr_count(global_cls: str) -> int:
            local_cls = system.global_schema.constituent_class(
                db_name, global_cls
            )
            needed = attributes_needed(query, system.global_schema, global_cls)
            if local_cls is None:
                return len(needed)
            cdef = db.schema.cls(local_cls)
            return sum(1 for a in needed if cdef.has_attribute(a))

        root_attrs = local_attr_count(query.range_class)
        branch_classes = query.branch_classes(system.global_schema.schema)
        if branch_classes:
            avg_attrs = sum(
                local_attr_count(cls) for cls in branch_classes
            ) / len(branch_classes)
        else:
            avg_attrs = 0.0
        return (
            cost.object_bytes(root_attrs),
            cost.object_bytes(avg_attrs) if branch_classes else 0.0,
        )

    def _result_bytes(self, result: LocalResultSet, query: Query, cost) -> int:
        """Bytes of one site's local result shipment.

        Each row carries LOid + GOid + target values; maybe rows add one
        LOid plus predicate descriptors per unsolved item/predicate.
        """
        total = 0
        for row in result.rows:
            total += cost.row_bytes(len(query.targets))
            total += len(row.unsolved) * cost.attribute_bytes
            for item in row.unsolved_items:
                total += cost.loid_bytes
                total += len(item.unsolved) * cost.attribute_bytes
        return total


class BasicLocalizedStrategy(_LocalizedStrategy):
    """The paper's algorithm BL (phase order P -> O -> I)."""

    name = "BL"
    phase_o_first = False


class ParallelLocalizedStrategy(_LocalizedStrategy):
    """The paper's algorithm PL (phase order O -> P -> I)."""

    name = "PL"
    phase_o_first = True


class SignatureBasicLocalizedStrategy(BasicLocalizedStrategy):
    """BL with signature pre-filtering of assistant checks (BL-S)."""

    name = "BL-S"
    use_signatures = True


class SignatureParallelLocalizedStrategy(ParallelLocalizedStrategy):
    """PL with signature pre-filtering of assistant checks (PL-S)."""

    name = "PL-S"
    use_signatures = True
