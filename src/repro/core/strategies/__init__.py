"""The paper's query-execution strategies.

* :class:`CentralizedStrategy` (CA) — ship everything, outerjoin, evaluate.
* :class:`BasicLocalizedStrategy` (BL) — evaluate locally, then check
  assistants for surviving maybe results.
* :class:`ParallelLocalizedStrategy` (PL) — dispatch assistant checks
  first, overlap them with local evaluation.
* ``BL-S`` / ``PL-S`` — signature-filtered variants (future-work
  extension).
"""

from repro.core.strategies.adaptive import (
    AdaptiveStrategy,
    NullRatioSample,
    extract_params,
    extract_params_ex,
)
from repro.core.strategies.base import (
    DispatchPlan,
    Strategy,
    StrategyResult,
    collect_verdicts,
    plan_dispatch,
    run_checks,
)
from repro.core.strategies.centralized import CentralizedStrategy
from repro.core.strategies.localized import (
    BasicLocalizedStrategy,
    ParallelLocalizedStrategy,
    SignatureBasicLocalizedStrategy,
    SignatureParallelLocalizedStrategy,
)
from repro.core.strategies.registry import (
    DEFAULT_REGISTRY,
    StrategyInfo,
    StrategyRegistry,
    resolve,
)

# --- deprecated shims --------------------------------------------------------
# The tuples and strategy_by_name() predate the registry; they survive as
# views of DEFAULT_REGISTRY so older callers keep working.

#: Deprecated: use ``DEFAULT_REGISTRY.infos(paper_only=True)``.
PAPER_STRATEGIES = (
    CentralizedStrategy,
    BasicLocalizedStrategy,
    ParallelLocalizedStrategy,
)

#: Deprecated: use ``DEFAULT_REGISTRY.infos()``.
ALL_STRATEGIES = PAPER_STRATEGIES + (
    SignatureBasicLocalizedStrategy,
    SignatureParallelLocalizedStrategy,
)


def strategy_by_name(name: str) -> Strategy:
    """Deprecated alias for :func:`repro.core.strategies.registry.resolve`."""
    return resolve(name)


__all__ = [
    "ALL_STRATEGIES",
    "DEFAULT_REGISTRY",
    "AdaptiveStrategy",
    "BasicLocalizedStrategy",
    "CentralizedStrategy",
    "DispatchPlan",
    "NullRatioSample",
    "PAPER_STRATEGIES",
    "ParallelLocalizedStrategy",
    "SignatureBasicLocalizedStrategy",
    "SignatureParallelLocalizedStrategy",
    "Strategy",
    "StrategyInfo",
    "StrategyRegistry",
    "StrategyResult",
    "collect_verdicts",
    "extract_params",
    "extract_params_ex",
    "plan_dispatch",
    "resolve",
    "run_checks",
    "strategy_by_name",
]
