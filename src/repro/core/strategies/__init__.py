"""The paper's query-execution strategies.

* :class:`CentralizedStrategy` (CA) — ship everything, outerjoin, evaluate.
* :class:`BasicLocalizedStrategy` (BL) — evaluate locally, then check
  assistants for surviving maybe results.
* :class:`ParallelLocalizedStrategy` (PL) — dispatch assistant checks
  first, overlap them with local evaluation.
* ``BL-S`` / ``PL-S`` — signature-filtered variants (future-work
  extension).
"""

from repro.core.strategies.adaptive import AdaptiveStrategy, extract_params
from repro.core.strategies.base import (
    DispatchPlan,
    Strategy,
    StrategyResult,
    collect_verdicts,
    plan_dispatch,
    run_checks,
)
from repro.core.strategies.centralized import CentralizedStrategy
from repro.core.strategies.localized import (
    BasicLocalizedStrategy,
    ParallelLocalizedStrategy,
    SignatureBasicLocalizedStrategy,
    SignatureParallelLocalizedStrategy,
)

#: The paper's three algorithms, in presentation order.
PAPER_STRATEGIES = (
    CentralizedStrategy,
    BasicLocalizedStrategy,
    ParallelLocalizedStrategy,
)

#: All implemented strategies, including the signature variants.
ALL_STRATEGIES = PAPER_STRATEGIES + (
    SignatureBasicLocalizedStrategy,
    SignatureParallelLocalizedStrategy,
)


def strategy_by_name(name: str) -> Strategy:
    """Instantiate a strategy from its short name (case-insensitive)."""
    if name.lower() == "auto":
        return AdaptiveStrategy()
    for cls in ALL_STRATEGIES:
        if cls.name.lower() == name.lower():
            return cls()
    raise ValueError(
        f"unknown strategy {name!r}; choose from "
        f"{[cls.name for cls in ALL_STRATEGIES] + ['AUTO']}"
    )


__all__ = [
    "ALL_STRATEGIES",
    "AdaptiveStrategy",
    "BasicLocalizedStrategy",
    "CentralizedStrategy",
    "DispatchPlan",
    "PAPER_STRATEGIES",
    "ParallelLocalizedStrategy",
    "SignatureBasicLocalizedStrategy",
    "SignatureParallelLocalizedStrategy",
    "Strategy",
    "StrategyResult",
    "collect_verdicts",
    "extract_params",
    "plan_dispatch",
    "run_checks",
    "strategy_by_name",
]
