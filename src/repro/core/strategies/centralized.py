"""CA — the centralized approach (phase order O -> I -> P).

Every object of the local root and branch classes is shipped to the
global processing site (projected on the LOid and the attributes the
query involves, step CA_C1).  The site outerjoins the constituent extents
of each global class over GOid (phases O and I fused, step CA_G2) and
evaluates the predicates on the materialized global classes (phase P,
step CA_G3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.conditions.algebra import NullAttr, SiteDown, attach
from repro.conditions.reasons import DegradationReason
from repro.core.decompose import attributes_needed
from repro.core.predicates import EvalMeter, evaluate_dnf, walk_path
from repro.core.query import Query
from repro.core.results import Availability, GlobalResult, ResultKind, ResultSet
from repro.core.strategies.base import Strategy, StrategyResult, fault_wait_chain
from repro.core.system import DistributedSystem
from repro.core.tvl import TV
from repro.faults.injector import ExecutionContext
from repro.integration.outerjoin import IntegrationStats, materialize
from repro.objectdb.objects import LocalObject
from repro.objectdb.values import NULL
from repro.obs.spans import TraceEvent
from repro.sim.metrics import ExecutionMetrics, WorkCounters
from repro.sim.taskgraph import PHASE_I, PHASE_P, PHASE_SCAN


def evaluate_global_extent(
    query: Query,
    extent,
    meter: Optional[EvalMeter] = None,
    conditions: bool = True,
) -> ResultSet:
    """Step CA_G3: evaluate the query over a materialized global extent.

    Pure over its inputs, which is what makes CA repair cheap: the
    re-certifier re-materializes with the recovered exports merged in
    and calls this again — no site re-evaluates anything.  With
    *conditions*, maybe rows carry ``NullAttr`` atoms (site ``""``: the
    null was observed on the fused global object, not at one site).
    """
    meter = meter if meter is not None else EvalMeter()
    results = ResultSet(targets=query.targets)
    for goid in sorted(
        extent.extent(query.range_class), key=lambda g: g.value
    ):
        obj = extent.extent(query.range_class)[goid]
        outcome = evaluate_dnf(obj, query.where, extent.deref, meter)
        if outcome.tv is TV.FALSE:
            continue
        bindings = {}
        for target in query.targets:
            walk = walk_path(obj, target, extent.deref, meter)
            bindings[target] = NULL if walk.is_missing else walk.value
        if outcome.tv is TV.TRUE:
            results.add(
                GlobalResult(
                    goid=goid, kind=ResultKind.CERTAIN, bindings=bindings
                )
            )
        else:
            unsolved = tuple(o.predicate for o in outcome.unsolved)
            result = GlobalResult(
                goid=goid,
                kind=ResultKind.MAYBE,
                bindings=bindings,
                unsolved=unsolved,
            )
            if conditions:
                attach(result, *(
                    NullAttr(site="", goid=goid, attr=str(p))
                    for p in unsolved
                ))
            results.add(result)
    return results


def demote_outerjoin_incomplete(
    results: ResultSet,
    skipped_sites: Iterable[str],
    conditions: bool = True,
) -> int:
    """Degraded-answer semantics of a partial CA materialization.

    CA fuses every shipped extent into one outerjoin, erasing per-site
    provenance: with any extent missing, a TRUE predicate can rest on an
    incomplete materialization, so no row can be soundly *certified* —
    every certain result demotes to maybe.  With *conditions*, a
    ``SiteDown`` atom per skipped site lands on **all** rows (existing
    maybes included: their missing values may equally stem from the
    unshipped extent), which is what lets repair later re-materialize
    from exactly the named sites.  Returns the number of demoted rows.
    """
    skipped = sorted(skipped_sites)
    note = str(DegradationReason.outerjoin_incomplete(skipped))
    demoted = results.certain
    results.certain = []
    for result in demoted:
        result.kind = ResultKind.MAYBE
        result.notes = result.notes + (note,)
        results.maybe.append(result)
    if conditions:
        atoms = [SiteDown(site=site) for site in skipped]
        for result in results.maybe:
            attach(result, *atoms)
    return len(demoted)


class CentralizedStrategy(Strategy):
    """The paper's algorithm CA."""

    name = "CA"
    #: CA ships whole extents and never dispatches phase-O checks, so
    #: the batching flag cannot change its execution.
    affected_by_batching = False
    #: The columnar flag does reach CA: it picks the outerjoin merge
    #: path (batched per-attribute merge vs per-object), so CA owes the
    #: oracle the columnar equivalence proof like everyone else.
    affected_by_columnar = True
    #: CA ships whole extents unconditionally — it never consults the
    #: constraint catalog (nothing to prune: no per-site evaluation, no
    #: assistant checks) and has no strategy pick for feedback to steer,
    #: so the planner mode cannot change its execution.
    affected_by_planner = False

    def execute(
        self,
        system: DistributedSystem,
        query: Query,
        ctx: Optional[ExecutionContext] = None,
    ) -> StrategyResult:
        query.validate(system.global_schema.schema)
        fed = system.simulator(ctx.plan if ctx is not None else None)
        work = WorkCounters()
        cost = system.cost_model
        fault_events: List[TraceEvent] = []
        skipped_sites: List[str] = []

        involved_classes = (query.range_class,) + query.branch_classes(
            system.global_schema.schema
        )

        # --- step CA_C1: each site retrieves, projects and ships extents ---
        exports_by_class: Dict[str, Dict[str, List[LocalObject]]] = {
            cls: {} for cls in involved_classes
        }
        ship_nodes = []
        for db_name, db in system.databases.items():
            entry_deps: List = []
            if ctx is not None:
                negotiation = ctx.contact(system.global_site, db_name)
                entry_deps = fault_wait_chain(
                    fed, ctx, negotiation, fault_events
                )
                if not negotiation.ok:
                    # The extent never ships: the fused outerjoin will
                    # run over a partial materialization.
                    skipped_sites.append(db_name)
                    fault_events.append(
                        TraceEvent.of(
                            "fault.site_skipped",
                            site=db_name,
                            reason=negotiation.reason,
                            attempts=len(negotiation.attempts),
                        )
                    )
                    continue
            site_bytes = 0
            site_objects = 0
            shipped: List[Tuple[str, List[LocalObject]]] = []
            for global_class in involved_classes:
                local_class = system.global_schema.constituent_class(
                    db_name, global_class
                )
                if local_class is None:
                    continue
                needed = attributes_needed(
                    query, system.global_schema, global_class
                )
                local_needed = tuple(
                    a
                    for a in needed
                    if db.schema.cls(local_class).has_attribute(a)
                )
                objs = db.scan_for_export(local_class, local_needed)
                exports_by_class[global_class][db_name] = objs
                obj_bytes = cost.object_bytes(len(local_needed))
                site_bytes += len(objs) * obj_bytes
                site_objects += len(objs)
                shipped.append((global_class, objs))
            if not shipped:
                continue
            work.objects_scanned += site_objects
            work.objects_shipped += site_objects
            work.bytes_disk += site_bytes
            work.bytes_network += site_bytes
            work.messages += 1
            scan = fed.disk(
                db_name,
                nbytes=site_bytes,
                label=f"CA_C1 scan@{db_name}",
                phase=PHASE_SCAN,
                deps=entry_deps,
            )
            project = fed.cpu(
                db_name,
                comparisons=site_objects,
                label=f"CA_C1 project@{db_name}",
                phase=PHASE_SCAN,
                deps=[scan],
            )
            ship_nodes.append(
                fed.transfer(
                    db_name,
                    system.global_site,
                    nbytes=site_bytes,
                    label="CA_C1 ship",
                    deps=[project],
                )
            )

        # --- step CA_G2: outerjoin over GOid at the global site (O + I) ----
        stats = IntegrationStats()
        extent = materialize(
            involved_classes,
            system.global_schema,
            system.catalog,
            exports_by_class,
            stats,
            columnar=self.effective_columnar(ctx),
        )
        work.comparisons += stats.comparisons
        integrate = fed.cpu(
            system.global_site,
            comparisons=stats.comparisons,
            label="CA_G2 outerjoin",
            phase=PHASE_I,
            deps=ship_nodes,
        )

        # --- step CA_G3: evaluate predicates on materialized classes (P) ---
        use_conditions = self.effective_conditions(ctx)
        meter = EvalMeter()
        results = evaluate_global_extent(
            query, extent, meter, conditions=use_conditions
        )
        work.comparisons += meter.comparisons
        fed.cpu(
            system.global_site,
            comparisons=meter.comparisons,
            label="CA_G3 evaluate",
            phase=PHASE_P,
            deps=[integrate],
        )

        # --- degraded-answer semantics under site loss ---------------------
        repair_state = None
        if ctx is not None and skipped_sites:
            demoted = demote_outerjoin_incomplete(
                results, skipped_sites, conditions=use_conditions
            )
            fault_events.append(
                TraceEvent.of(
                    "fault.degraded",
                    strategy=self.name,
                    demoted=demoted,
                    sites_skipped=",".join(sorted(skipped_sites)),
                )
            )
            if use_conditions:
                from repro.conditions.recertify import (
                    CentralizedRepairState,
                )

                repair_state = CentralizedRepairState(
                    query=query,
                    columnar=self.effective_columnar(ctx),
                    involved_classes=involved_classes,
                    exports_by_class=exports_by_class,
                    skipped_sites=tuple(sorted(skipped_sites)),
                )
                fault_events.append(
                    TraceEvent.of(
                        "conditions.attached",
                        strategy=self.name,
                        sites=",".join(sorted(skipped_sites)),
                        rows=len(results.maybe),
                    )
                )

        fault_windows = ()
        if ctx is not None:
            work.retries = ctx.retries
            work.timeouts = ctx.timeouts
            work.messages_lost = ctx.messages_lost
            fault_windows = ctx.plan.fault_windows(fed.sites)

        outcome_sim = fed.run()
        metrics = ExecutionMetrics.from_outcome(
            self.name,
            outcome_sim,
            work,
            certain_results=len(results.certain),
            maybe_results=len(results.maybe),
            events=[TraceEvent.of(
                "ca.integrate",
                classes=len(involved_classes),
                objects_shipped=work.objects_shipped,
                outerjoin_comparisons=stats.comparisons,
            )] + fault_events,
            fault_windows=fault_windows,
        )
        return StrategyResult(
            results=results.sort(),
            metrics=metrics,
            availability=(
                ctx.availability() if ctx is not None else Availability()
            ),
            repair=repair_state,
        )
