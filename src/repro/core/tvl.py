"""Kleene three-valued logic (TRUE / FALSE / UNKNOWN).

Missing data turns predicate evaluation three-valued (Codd 1979, cited by
the paper as the source of *maybe* semantics): a predicate over a missing
attribute or null value is UNKNOWN, and a conjunctive query answer whose
truth value is UNKNOWN is reported as a **maybe result** rather than being
dropped.

The truth tables are the strong Kleene ones:

===========  =======  =======  =========
``a AND b``  TRUE     FALSE    UNKNOWN
===========  =======  =======  =========
TRUE         TRUE     FALSE    UNKNOWN
FALSE        FALSE    FALSE    FALSE
UNKNOWN      UNKNOWN  FALSE    UNKNOWN
===========  =======  =======  =========

===========  =======  =======  =========
``a OR b``   TRUE     FALSE    UNKNOWN
===========  =======  =======  =========
TRUE         TRUE     TRUE     TRUE
FALSE        TRUE     FALSE    UNKNOWN
UNKNOWN      TRUE     UNKNOWN  UNKNOWN
===========  =======  =======  =========
"""

from __future__ import annotations

import enum
from typing import Iterable


class TV(enum.Enum):
    """A truth value in Kleene's strong three-valued logic."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        """Refuse implicit truthiness: 3VL must be combined explicitly.

        Allowing ``if tv:`` would silently treat UNKNOWN as falsy, which is
        exactly the bug class this module exists to prevent.
        """
        raise TypeError(
            "TV cannot be used as a bool; compare against TV.TRUE / "
            "TV.FALSE / TV.UNKNOWN explicitly"
        )

    # --- connectives ------------------------------------------------------

    def and_(self, other: "TV") -> "TV":
        """Strong-Kleene conjunction."""
        if self is TV.FALSE or other is TV.FALSE:
            return TV.FALSE
        if self is TV.TRUE and other is TV.TRUE:
            return TV.TRUE
        return TV.UNKNOWN

    def or_(self, other: "TV") -> "TV":
        """Strong-Kleene disjunction."""
        if self is TV.TRUE or other is TV.TRUE:
            return TV.TRUE
        if self is TV.FALSE and other is TV.FALSE:
            return TV.FALSE
        return TV.UNKNOWN

    def not_(self) -> "TV":
        """Strong-Kleene negation (UNKNOWN stays UNKNOWN)."""
        if self is TV.TRUE:
            return TV.FALSE
        if self is TV.FALSE:
            return TV.TRUE
        return TV.UNKNOWN

    # --- convenience ------------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self is TV.TRUE

    @property
    def is_false(self) -> bool:
        return self is TV.FALSE

    @property
    def is_unknown(self) -> bool:
        return self is TV.UNKNOWN


def from_bool(value: bool) -> TV:
    """Lift a Python bool into the three-valued domain."""
    return TV.TRUE if value else TV.FALSE


def all3(values: Iterable[TV]) -> TV:
    """Three-valued conjunction of an iterable (empty iterable is TRUE).

    Matches the semantics of a conjunctive ``Where`` clause: the answer is
    certain when every predicate is TRUE, dropped when any predicate is
    FALSE, and *maybe* otherwise.
    """
    result = TV.TRUE
    for value in values:
        result = result.and_(value)
        if result is TV.FALSE:
            return TV.FALSE
    return result


def any3(values: Iterable[TV]) -> TV:
    """Three-valued disjunction of an iterable (empty iterable is FALSE)."""
    result = TV.FALSE
    for value in values:
        result = result.or_(value)
        if result is TV.TRUE:
            return TV.TRUE
    return result
