"""The federation: component databases + integration layer + cost model.

:class:`DistributedSystem` wires everything a strategy needs:

* the component databases (one per site);
* the integrated global schema and the replicated GOid mapping catalog;
* the cost model and network configuration for the simulator;
* optionally, replicated object-signature catalogs (for the BL-S/PL-S
  variants).

Use :meth:`DistributedSystem.build` to stand a federation up from raw
databases plus class correspondences — it integrates the schemas and
discovers object isomerism.  Pre-computed mapping catalogs can be passed
instead (the paper assumes isomeric objects "have been determined").
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.faults.plan import FaultPlan

from repro.errors import SchemaError
from repro.integration.global_schema import (
    ClassCorrespondence,
    GlobalSchema,
    integrate_schemas,
)
from repro.integration.isomerism import build_catalog
from repro.integration.mapping import CacheStats, MappingCatalog
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.signatures import SignatureCatalog
from repro.sim.costs import CostModel, PAPER_COSTS
from repro.sim.taskgraph import FederationSim

#: Name of the global processing site in simulations.
GLOBAL_SITE = "GPS"


@dataclass
class DistributedSystem:
    """A running federation of heterogeneous object databases."""

    databases: Dict[str, ComponentDatabase]
    global_schema: GlobalSchema
    catalog: MappingCatalog
    cost_model: CostModel = PAPER_COSTS
    global_site: str = GLOBAL_SITE
    shared_network: bool = True
    signatures: Optional[SignatureCatalog] = None
    #: Bumped on every entity/schema mutation; keys the decomposition
    #: cache so stale local queries can never be served.
    schema_version: int = 0
    #: Federation evolution epoch: the number of evolution transitions
    #: (window opens/closes) applied.  Every query's Availability is
    #: stamped with the epoch it executed against; replaying a churned
    #: run means rebuilding the federation and stepping a fresh
    #: controller to the same epoch.
    schema_epoch: int = 0
    #: The attached :class:`~repro.evolution.controller
    #: .EvolutionController`, or None for a frozen federation.  The
    #: engine consults it per execution for flux annotations/demotion.
    evolution: Optional[object] = field(default=None, repr=False)
    _decompose_cache: Dict = field(default_factory=dict, repr=False)
    _decompose_stats: CacheStats = field(
        default_factory=CacheStats, repr=False
    )
    #: Active cache-accounting scope (the executing session's name);
    #: set by the engine around each execution via :meth:`cache_scope`.
    _cache_scope: Optional[str] = field(default=None, repr=False)
    #: Which scope paid the miss for each decomposition cache entry.
    _decompose_owner: Dict = field(default_factory=dict, repr=False)
    #: Per-scope count of *shared* hits: decomposition lookups served
    #: from an entry a different scope populated.  This is the shared
    #: federation's contention/benefit signal — work one session paid
    #: for and another reused.
    _shared_hits: Dict[str, int] = field(default_factory=dict, repr=False)
    #: Lazily created planner state (see :mod:`repro.planner`): the
    #: per-site constraint catalog and the cross-execution feedback
    #: store.  Both are derived/observational — they never change
    #: answers, only how much work a planner-enabled execution schedules
    #: and which strategy AUTO picks.
    _constraints: Optional[object] = field(default=None, repr=False)
    _planner_feedback: Optional[object] = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        databases: Sequence[ComponentDatabase],
        correspondences: Sequence[ClassCorrespondence],
        cost_model: CostModel = PAPER_COSTS,
        catalog: Optional[MappingCatalog] = None,
        shared_network: bool = True,
    ) -> "DistributedSystem":
        """Integrate schemas and (unless given) discover isomerism."""
        by_name = {db.name: db for db in databases}
        if len(by_name) != len(databases):
            raise SchemaError("duplicate component database names")
        schemas = {db.name: db.schema for db in databases}
        global_schema = integrate_schemas(schemas, correspondences)
        if catalog is None:
            catalog = build_catalog(
                {c.global_name: c.constituents for c in correspondences},
                by_name,
                {c.global_name: c.key_attribute for c in correspondences},
            )
        return cls(
            databases=by_name,
            global_schema=global_schema,
            catalog=catalog,
            cost_model=cost_model,
            shared_network=shared_network,
        )

    # --- accessors -------------------------------------------------------

    @property
    def site_names(self) -> Tuple[str, ...]:
        return tuple(self.databases)

    def db(self, name: str) -> ComponentDatabase:
        return self.databases[name]

    def simulator(self, fault_plan: Optional["FaultPlan"] = None) -> FederationSim:
        """A fresh activity-graph builder over this federation's sites."""
        return FederationSim(
            sites=self.site_names,
            global_site=self.global_site,
            cost_model=self.cost_model,
            shared_network=self.shared_network,
            fault_plan=fault_plan,
        )

    # --- hot-path caches -----------------------------------------------------

    def decompose(self, query):
        """Decompose *query* into local queries, memoized per schema version.

        Decomposition depends only on the query and the integrated
        schemas, so repeated executions of the same query reuse the
        cached :class:`~repro.core.decompose.DecomposedQuery` until
        :meth:`bump_schema_version` (any entity registration or schema
        mutation) invalidates it.
        """
        from repro.core.decompose import decompose as _decompose

        key = (query, self.schema_version)
        cached = self._decompose_cache.get(key)
        if cached is not None:
            self._decompose_stats.hits += 1
            scope = self._cache_scope
            if scope is not None and self._decompose_owner.get(key) not in (
                None, scope
            ):
                self._shared_hits[scope] = self._shared_hits.get(scope, 0) + 1
            return cached
        self._decompose_stats.misses += 1
        decomposed = _decompose(query, self.global_schema)
        self._decompose_cache[key] = decomposed
        if self._cache_scope is not None:
            self._decompose_owner[key] = self._cache_scope
        return decomposed

    def bump_schema_version(self) -> None:
        """Invalidate the decomposition cache after a mutation.

        The cache is federation-global and keyed ``(query,
        schema_version)``, so one bump invalidates *every* session's
        cached decompositions at once — a session can never be served a
        decomposition computed against a pre-mutation schema.
        """
        self.schema_version += 1
        self._decompose_cache.clear()
        self._decompose_owner.clear()

    def bump_epoch(self) -> None:
        """Advance the evolution epoch (one transition applied).

        Implies :meth:`bump_schema_version`: an epoch boundary always
        invalidates cached decompositions across all sessions.
        """
        self.schema_epoch += 1
        self.bump_schema_version()

    def cache_stats(self) -> CacheStats:
        """Combined mapping-index + decomposition cache traffic."""
        return self.catalog.cache_stats().merge(self._decompose_stats)

    @contextmanager
    def cache_scope(self, name: Optional[str]):
        """Attribute cache traffic inside the block to scope *name*.

        The engine wraps every execution in the executing session's
        scope, so shared-cache contention accounting
        (:meth:`shared_hits_of`) knows which session populated an entry
        and which sessions later reused it.  Scopes nest (restores the
        previous scope on exit); ``None`` disables attribution.
        """
        previous = self._cache_scope
        self._cache_scope = name
        try:
            yield self
        finally:
            self._cache_scope = previous

    def shared_hits_of(self, name: str) -> int:
        """Decomposition hits *name* got on entries another scope built."""
        return self._shared_hits.get(name, 0)

    @property
    def shared_hits_total(self) -> int:
        """All cross-scope decomposition hits on this federation."""
        return sum(self._shared_hits.values())

    # --- planner state -------------------------------------------------------

    @property
    def constraints(self):
        """The per-site constraint catalog (created on first use).

        Entries memoize on each database's ``data_version``, so the
        catalog itself never goes stale — mutations are picked up on the
        next consult.
        """
        if self._constraints is None:
            from repro.planner.constraints import ConstraintCatalog

            self._constraints = ConstraintCatalog()
        return self._constraints

    @property
    def planner_feedback(self):
        """The cross-execution feedback store (created on first use)."""
        if self._planner_feedback is None:
            from repro.planner.feedback import PlannerFeedback

            self._planner_feedback = PlannerFeedback()
        return self._planner_feedback

    # --- dynamic registration -----------------------------------------------

    def register_entity(
        self,
        global_class: str,
        copies: Mapping[str, Mapping[str, object]],
        goid: Optional["GOid"] = None,
    ) -> "GOid":
        """Insert one real-world entity with copies at several sites.

        Args:
            global_class: the global class the entity belongs to.
            copies: db name -> attribute values (global attribute names;
                each site stores the subset its constituent defines —
                heterogeneity by construction).  Complex attributes may
                be given as a :class:`~repro.objectdb.ids.GOid`, which is
                translated to the site's local copy of that entity (NULL
                when the site has none), or as a site-local LOid.
            goid: explicit global id; autogenerated when omitted.

        Returns:
            The entity's GOid (all copies registered in the catalog; the
            signature catalog, if built, is updated too).
        """
        from repro.objectdb.ids import GOid as _GOid
        from repro.objectdb.ids import LOid
        from repro.objectdb.objects import LocalObject
        from repro.objectdb.values import NULL

        if global_class not in self.global_schema:
            raise SchemaError(f"unknown global class {global_class!r}")
        if not copies:
            raise SchemaError("an entity needs at least one copy")
        table = self.catalog.table(global_class)
        if goid is None:
            # Probe for a free id: the table may already hold explicitly
            # registered goids ("g<cls>-rN"), so a bare counter collides.
            base = f"g{global_class.lower()}-r"
            candidate = len(table) + 1
            while table.loids_of(_GOid(f"{base}{candidate}")):
                candidate += 1
            goid = _GOid(f"{base}{candidate}")
        gdef = self.global_schema.cls(global_class)

        for db_name, values in copies.items():
            local_cls = self.global_schema.constituent_class(
                db_name, global_class
            )
            if local_cls is None:
                raise SchemaError(
                    f"{db_name!r} holds no constituent of {global_class!r}"
                )
            db = self.db(db_name)
            cdef = db.schema.cls(local_cls)
            stored = {}
            for name, value in values.items():
                if not gdef.has_attribute(name):
                    raise SchemaError(
                        f"{global_class!r} has no attribute {name!r}"
                    )
                if not cdef.has_attribute(name):
                    continue  # missing attribute at this site
                if isinstance(value, _GOid):
                    attr = gdef.attribute(name)
                    if attr.domain is None:
                        raise SchemaError(
                            f"{global_class}.{name} is primitive; cannot "
                            "hold a GOid"
                        )
                    local_ref = self.catalog.table(attr.domain).loid_in(
                        value, db_name
                    )
                    value = local_ref if local_ref is not None else NULL
                stored[name] = value
            loid = LOid(db_name, f"{local_cls.lower()}-r{goid.value}")
            obj = LocalObject(loid=loid, class_name=local_cls, values=stored)
            db.insert(obj, validate=True)
            table.add(goid, loid)
            if self.signatures is not None:
                self.signatures.index_object(obj)
        self.bump_schema_version()
        return goid

    # --- mutation hooks -------------------------------------------------

    def note_mutation(self, db_name: str, obj) -> None:
        """Propagate one in-place object mutation through every cache.

        The single hook mutating code must call after changing a stored
        object's values: it refreshes the owning database's derived
        state (secondary indexes, columnar extents — see
        :meth:`~repro.objectdb.database.ComponentDatabase.note_mutation`),
        re-signs the object in the signature catalog when one is built,
        and bumps the schema version so cached decompositions are
        dropped.  Without it, a built index keeps serving pre-mutation
        buckets (the stale-index bug) and signatures keep filtering on
        stale values.
        """
        self.db(db_name).note_mutation(obj.class_name)
        if self.signatures is not None:
            self.signatures.update_object(obj)
        self.bump_schema_version()

    # --- signatures ------------------------------------------------------

    def build_signatures(self) -> SignatureCatalog:
        """Index every stored object into a replicated signature catalog.

        Idempotent: repeated calls rebuild the catalog.  Required before
        running the BL-S/PL-S signature strategy variants.
        """
        catalog = SignatureCatalog()
        for db in self.databases.values():
            for class_name in db.schema.class_names:
                catalog.index_extent(db.extent(class_name).values())
        self.signatures = catalog
        return catalog

    def ensure_signatures(self) -> SignatureCatalog:
        """Build the signature catalog only if absent; return it.

        The explicit counterpart of the engine's on-demand build: call
        this up front to keep signature indexing out of query execution.
        """
        if self.signatures is None:
            return self.build_signatures()
        return self.signatures

    # --- query-shape helpers ------------------------------------------------

    def involved_attribute_count(self, query, global_class: str) -> int:
        """Number of this class's attributes a query projects or tests."""
        from repro.core.decompose import attributes_needed

        return len(attributes_needed(query, self.global_schema, global_class))
