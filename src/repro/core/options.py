"""Per-execution options, collapsed into one immutable value object.

:class:`ExecutionOptions` replaces the ``fault_plan`` / ``policy`` /
``fault_seed`` / ``batch_checks`` / ``failover`` override-kwarg sprawl
that :meth:`GlobalQueryEngine.execute` and ``compare`` used to thread
through every call.  An engine (and each
:class:`~repro.core.session.EngineSession`) holds one instance as its
default; callers derive variants with :meth:`ExecutionOptions.with_`::

    opts = engine.options.with_(batch_checks=False)
    engine.execute(query, "PL", options=opts)

The object is frozen, so a derived instance can never mutate the
engine-wide defaults — the property that makes concurrent sessions over
one shared federation safe.  Policies are normalized at construction
(string presets and inline specs become
:class:`~repro.faults.policy.ExecutionPolicy` objects), so two options
values compare equal iff they drive executions identically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from repro.faults.plan import FaultPlan
from repro.faults.policy import ExecutionPolicy, resolve_policy

#: Field names accepted by :meth:`ExecutionOptions.with_` (and by the
#: engine's deprecated legacy kwargs).
OPTION_FIELDS = (
    "fault_plan",
    "policy",
    "fault_seed",
    "batch_checks",
    "failover",
    "columnar",
    "planner",
    "conditions",
)

#: Valid values of :attr:`ExecutionOptions.planner` (mirrored by
#: :data:`repro.planner.PLANNER_MODES`; duplicated here to keep this
#: module import-light).
PLANNER_MODES = ("static", "feedback", "constraints", "full")


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything configurable about one execution, besides the strategy.

    Attributes:
        fault_plan: deterministic outages/link degradation to inject;
            ``None`` (or an inactive plan) keeps the execution
            byte-identical to a fault-free run.
        policy: fault-handling policy — an
            :class:`~repro.faults.policy.ExecutionPolicy`, a preset name,
            or an inline spec like ``"degrade:timeout=0.5,retries=3"``.
        fault_seed: seed for loss draws and backoff jitter.
        batch_checks: coalesce phase-O check/chase messages per
            ``(src, dst)`` link (``False`` restores the historical
            one-message-per-request wire protocol).
        failover: resilient dispatch under a fault plan — circuit
            breakers, relay rerouting and verdict-aware demotion
            (``False`` restores eager skip-and-demote).
        columnar: evaluate local queries, assistant checks, and the
            outerjoin merge over the columnar extent kernels
            (``False`` forces the per-object row path everywhere; answers
            are byte-identical either way — the transparency contract the
            difftest oracle enforces).
        planner: adaptive-planning mode — ``"static"`` (default; the
            analytic model's unmodified predictions, no pruning),
            ``"feedback"`` (AUTO's pick consults observed stalls,
            breaker history and span queue delays), ``"constraints"``
            (localized strategies prune sites/checks via the per-site
            constraint catalog), or ``"full"`` (both).  Every mode is
            answer-identical to ``static`` — the soundness contract the
            difftest oracle's ``planner`` invariant enforces.
        conditions: attach discharge conditions (``repro.conditions``
            atoms) to maybe/uncertified rows and capture the repair
            state that makes a degraded report incrementally
            re-certifiable via ``engine.recertify`` (``False`` restores
            bare notes-only degradation; such reports cannot be
            repaired).  Conditions never appear in exported answers, so
            the flag cannot change bytes on the wire.
    """

    fault_plan: Optional[FaultPlan] = None
    policy: Union[str, ExecutionPolicy, None] = None
    fault_seed: int = 0
    batch_checks: bool = True
    failover: bool = True
    columnar: bool = True
    planner: str = "static"
    conditions: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", resolve_policy(self.policy))
        if self.planner not in PLANNER_MODES:
            raise TypeError(
                f"unknown planner mode {self.planner!r}; "
                f"choose from {list(PLANNER_MODES)}"
            )

    def with_(self, **overrides: object) -> "ExecutionOptions":
        """A copy with *overrides* applied; unknown names raise."""
        unknown = set(overrides) - set(OPTION_FIELDS)
        if unknown:
            raise TypeError(
                f"unknown execution option(s): {sorted(unknown)}; "
                f"choose from {list(OPTION_FIELDS)}"
            )
        return dataclasses.replace(self, **overrides)

    @property
    def faults_active(self) -> bool:
        """Whether this options value injects any faults at all."""
        return self.fault_plan is not None and self.fault_plan.active

    def describe(self) -> str:
        """One-line summary (CLI/bench reporting)."""
        parts = [
            f"policy={self.policy.name}",
            f"fault_seed={self.fault_seed}",
            f"batch_checks={self.batch_checks}",
            f"failover={self.failover}",
            f"columnar={self.columnar}",
            f"planner={self.planner}",
            f"conditions={self.conditions}",
        ]
        if self.fault_plan is not None:
            parts.insert(0, (
                f"faults(outages={len(self.fault_plan.outages)},"
                f"links={len(self.fault_plan.links)})"
            ))
        return " ".join(parts)
