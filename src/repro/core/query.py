"""The global query model: path expressions, predicates, queries.

The paper considers queries with one *range class* whose ``Where`` clause
is a conjunction of (possibly *nested*) predicates.  A nested predicate
constrains a nested attribute reached through the class composition
hierarchy, written as a path expression such as
``X.advisor.department.name`` (query Q1, Figure 3).

The range class is the *root class* of the query; the other classes
visited by path expressions are its *branch classes*.

As the paper's announced future work, this module also models ``Where``
clauses in *disjunctive normal form* (a disjunction of conjunctions); the
classic conjunctive query is the one-disjunct special case and remains the
primary API.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple, Union

from repro.errors import QueryError
from repro.objectdb.schema import Schema
from repro.objectdb.values import Primitive


@dataclass(frozen=True, order=True)
class Path:
    """A path expression: attribute steps from the range class.

    ``Path(("advisor", "department", "name"))`` denotes
    ``X.advisor.department.name``.
    """

    steps: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise QueryError("a path expression needs at least one step")
        if not all(isinstance(step, str) and step for step in self.steps):
            raise QueryError(f"invalid path steps: {self.steps!r}")

    @classmethod
    def of(cls, *steps: str) -> "Path":
        return cls(tuple(steps))

    @classmethod
    def parse(cls, dotted: str) -> "Path":
        """Parse ``"advisor.department.name"`` into a Path."""
        return cls(tuple(part for part in dotted.split(".") if part))

    @property
    def is_nested(self) -> bool:
        """True for paths of length > 1 (the paper's nested predicates)."""
        return len(self.steps) > 1

    @property
    def first(self) -> str:
        return self.steps[0]

    @property
    def last(self) -> str:
        return self.steps[-1]

    @property
    def prefix(self) -> "Path":
        """The path without its final step (requires a nested path)."""
        if not self.is_nested:
            raise QueryError(f"path {self} has no prefix")
        return Path(self.steps[:-1])

    def __str__(self) -> str:
        return ".".join(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


class Op(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "contains"  # multi-valued attribute membership (extension)
    NOT_CONTAINS = "not contains"

    def __str__(self) -> str:
        return self.value

    def complement(self) -> "Op":
        """The operator testing the opposite condition.

        Sound under 3VL: for any stored value, ``NOT (a op v)`` and
        ``a complement(op) v`` have identical truth values (both are
        UNKNOWN on missing data), which lets ``not`` in the query
        language be rewritten away at the leaves.
        """
        return _COMPLEMENTS[self]


_COMPLEMENTS = {
    Op.EQ: Op.NE,
    Op.NE: Op.EQ,
    Op.LT: Op.GE,
    Op.GE: Op.LT,
    Op.GT: Op.LE,
    Op.LE: Op.GT,
    Op.CONTAINS: Op.NOT_CONTAINS,
    Op.NOT_CONTAINS: Op.CONTAINS,
}


Operand = Primitive


@dataclass(frozen=True, order=True)
class Predicate:
    """An atomic predicate ``path op constant``.

    The paper's queries compare nested attributes with constants (e.g.
    ``X.advisor.speciality = database``); we additionally allow ordering
    operators and the multi-valued ``contains`` operator.
    """

    path: Path
    op: Op
    operand: Operand

    @classmethod
    def of(cls, dotted_path: str, op: Union[Op, str], operand: Operand) -> "Predicate":
        if isinstance(op, str):
            try:
                op = next(member for member in Op if member.value == op)
            except StopIteration:
                raise QueryError(f"unknown operator {op!r}") from None
        return cls(path=Path.parse(dotted_path), op=op, operand=operand)

    def __str__(self) -> str:
        return f"{self.path} {self.op} {self.operand!r}"


Conjunction = Tuple[Predicate, ...]


@dataclass(frozen=True)
class Query:
    """A global query against the integrated schema.

    Attributes:
        range_class: the (global) root class the variable ranges over.
        targets: projected path expressions (the ``Select`` list).
        where: the ``Where`` clause in disjunctive normal form — a tuple of
            conjunctions.  A conjunctive query has exactly one conjunct; an
            empty ``where`` means no predicates (select all).
    """

    range_class: str
    targets: Tuple[Path, ...]
    where: Tuple[Conjunction, ...] = ()

    @classmethod
    def conjunctive(
        cls,
        range_class: str,
        targets: Iterable[Union[Path, str]],
        predicates: Iterable[Predicate] = (),
    ) -> "Query":
        """Build the paper's standard conjunctive query form."""
        target_paths = tuple(
            t if isinstance(t, Path) else Path.parse(t) for t in targets
        )
        conj = tuple(predicates)
        where = (conj,) if conj else ()
        return cls(range_class=range_class, targets=target_paths, where=where)

    @classmethod
    def disjunctive(
        cls,
        range_class: str,
        targets: Iterable[Union[Path, str]],
        disjuncts: Iterable[Iterable[Predicate]],
    ) -> "Query":
        """Build a DNF query (future-work extension)."""
        target_paths = tuple(
            t if isinstance(t, Path) else Path.parse(t) for t in targets
        )
        where = tuple(tuple(d) for d in disjuncts if tuple(d))
        return cls(range_class=range_class, targets=target_paths, where=where)

    # --- structure --------------------------------------------------------

    @property
    def is_conjunctive(self) -> bool:
        return len(self.where) <= 1

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        """The predicates of a conjunctive query (flat view).

        Raises:
            QueryError: when the query has more than one disjunct; use
                ``where`` directly for DNF queries.
        """
        if not self.is_conjunctive:
            raise QueryError(
                "query is disjunctive; access .where for the DNF structure"
            )
        return self.where[0] if self.where else ()

    def all_predicates(self) -> Tuple[Predicate, ...]:
        """Every distinct predicate mentioned in any disjunct (stable order)."""
        seen: Set[Predicate] = set()
        ordered: List[Predicate] = []
        for conj in self.where:
            for pred in conj:
                if pred not in seen:
                    seen.add(pred)
                    ordered.append(pred)
        return tuple(ordered)

    def all_paths(self) -> Tuple[Path, ...]:
        """Every path mentioned by targets or predicates (stable order)."""
        seen: Set[Path] = set()
        ordered: List[Path] = []
        for path in list(self.targets) + [p.path for p in self.all_predicates()]:
            if path not in seen:
                seen.add(path)
                ordered.append(path)
        return tuple(ordered)

    def branch_classes(self, schema: Schema) -> Tuple[str, ...]:
        """Classes other than the range class visited by any path.

        These are the paper's *branch classes*; their constituent classes
        at each site are the *local branch classes*.
        """
        visited: Set[str] = set()
        ordered: List[str] = []
        for path in self.all_paths():
            for class_name in schema.classes_on_path(self.range_class, path.steps):
                if class_name != self.range_class and class_name not in visited:
                    visited.add(class_name)
                    ordered.append(class_name)
            # the final step may itself be complex (projecting an object)
            chain = schema.resolve_path(self.range_class, path.steps)
            final = chain[-1]
            if final.is_complex and final.domain not in visited:
                if final.domain != self.range_class:
                    visited.add(final.domain)
                    ordered.append(final.domain)  # type: ignore[arg-type]
        return tuple(ordered)

    def validate(self, schema: Schema) -> None:
        """Type-check the query against *schema* (raises QueryError)."""
        if self.range_class not in schema:
            raise QueryError(f"unknown range class {self.range_class!r}")
        for path in self.all_paths():
            try:
                schema.resolve_path(self.range_class, path.steps)
            except Exception as exc:  # re-raise uniformly as QueryError
                raise QueryError(
                    f"path {path} does not type-check from "
                    f"{self.range_class!r}: {exc}"
                ) from exc
        for pred in self.all_predicates():
            chain = schema.resolve_path(self.range_class, pred.path.steps)
            final = chain[-1]
            if final.is_complex:
                raise QueryError(
                    f"predicate {pred} compares complex attribute "
                    f"{pred.path.last!r} with a constant"
                )
            if (
                pred.op in (Op.CONTAINS, Op.NOT_CONTAINS)
                and not final.multi_valued
            ):
                raise QueryError(
                    f"predicate {pred} uses {pred.op} on single-valued "
                    f"attribute {pred.path.last!r}"
                )

    def __str__(self) -> str:
        select = ", ".join(f"X.{t}" for t in self.targets)
        if not self.where:
            return f"Select {select} From {self.range_class} X"
        disjuncts = [
            " and ".join(f"X.{p}" for p in conj) for conj in self.where
        ]
        where = " or ".join(
            f"({d})" if len(self.where) > 1 else d for d in disjuncts
        )
        return f"Select {select} From {self.range_class} X Where {where}"
