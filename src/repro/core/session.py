"""Per-caller sessions over one shared federation.

An :class:`EngineSession` is a lightweight handle returned by
:meth:`~repro.core.engine.GlobalQueryEngine.session`.  Many sessions
share one engine — and therefore one federation: the same component
databases, integrated schema, replicated mapping catalog, signature
catalog and decomposition/mapping caches.  What a session owns is the
*per-caller* configuration and accounting:

* its own default strategy and :class:`~repro.core.options
  .ExecutionOptions` (including its own fault seed);
* per-session cache accounting — the hit/miss traffic its executions
  generated (session deltas always sum to the federation-wide
  :class:`~repro.integration.mapping.CacheStats` delta) and how many of
  those hits were *shared* (served from cache entries another session
  paid the miss for — the contention/benefit signal of the shared
  caches);
* an execution counter.

Sessions are cooperative, not thread-backed: the traffic engine
interleaves thousands of session executions deterministically through
the simulation kernel.  All per-execution fault/failover state lives in
an :class:`~repro.faults.injector.ExecutionContext` created per call,
so interleaved executions can never bleed into each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

from repro.core.options import ExecutionOptions
from repro.core.query import Query
from repro.core.report import ExecutionReport
from repro.integration.mapping import CacheStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import GlobalQueryEngine
    from repro.core.strategies import Strategy


class EngineSession:
    """One caller's handle over a shared :class:`GlobalQueryEngine`."""

    def __init__(
        self,
        engine: "GlobalQueryEngine",
        name: str = "main",
        strategy: Union[str, "Strategy", None] = None,
        options: Optional[ExecutionOptions] = None,
        fault_seed: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self._strategy = (
            None if strategy is None else engine._resolve(strategy)
        )
        if fault_seed is not None:
            options = (
                options if options is not None else engine.options
            ).with_(fault_seed=fault_seed)
        #: Session-default options; ``None`` inherits the engine's
        #: (live — engine-wide reconfiguration reaches such sessions).
        self._options = options
        #: Cache traffic this session's executions generated.
        self.cache = CacheStats()
        self.executions = 0

    # --- configuration -----------------------------------------------------

    @property
    def system(self):
        return self.engine.system

    @property
    def options(self) -> ExecutionOptions:
        return (
            self._options if self._options is not None else self.engine.options
        )

    @options.setter
    def options(self, value: Optional[ExecutionOptions]) -> None:
        self._options = value

    @property
    def default_strategy(self) -> "Strategy":
        return (
            self._strategy
            if self._strategy is not None
            else self.engine.default_strategy
        )

    @property
    def shared_hits(self) -> int:
        """Hits on cache entries another session paid the miss for."""
        return self.engine.system.shared_hits_of(self.name)

    def note_execution(self, cache_delta: CacheStats) -> None:
        """Engine callback: attribute one execution's cache traffic."""
        self.cache = self.cache.merge(cache_delta)
        self.executions += 1

    # --- execution ---------------------------------------------------------

    def parse(self, text: str) -> Query:
        return self.engine.parse(text)

    def execute(
        self,
        query: Union[Query, str],
        strategy: Union[str, "Strategy", None] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> ExecutionReport:
        """Run *query* once with the session's defaults.

        *strategy* and *options* override the session defaults for this
        execution only; the engine-wide defaults are never touched.
        """
        effective = options if options is not None else self.options
        if strategy is None and self._strategy is not None:
            chosen: Union[str, "Strategy", None] = self._strategy
        else:
            chosen = strategy
        return self.engine._run(query, chosen, effective, self)

    def recertify(
        self,
        report: ExecutionReport,
        options: Optional[ExecutionOptions] = None,
    ) -> ExecutionReport:
        """Incrementally repair a degraded *report* (see
        :meth:`GlobalQueryEngine.recertify`).  *options* describes the
        federation's health during the repair; the default (no fault
        plan) models a fully healed federation."""
        return self.engine.recertify(report, options=options)

    def explain(
        self,
        query: Union[Query, str, ExecutionReport],
        strategy: Union[str, "Strategy", None] = None,
        width: int = 48,
        options: Optional[ExecutionOptions] = None,
    ) -> str:
        """Render an execution's schedule as text (see engine.explain)."""
        if isinstance(query, ExecutionReport):
            return query.explain(width=width)
        return self.execute(query, strategy, options=options).explain(
            width=width
        )

    def compare(
        self,
        query: Union[Query, str],
        strategies: Optional[Sequence[Union[str, "Strategy"]]] = None,
        check_agreement: bool = True,
        options: Optional[ExecutionOptions] = None,
    ) -> Dict[str, ExecutionReport]:
        """Execute *query* under several strategies (default: CA, BL, PL).

        Same semantics as :meth:`GlobalQueryEngine.compare`, but run
        through this session (its options, its cache accounting).
        """
        engine = self.engine
        if isinstance(query, str):
            query = engine.parse(query)
        chosen = (
            [info.create() for info in engine.registry.infos(paper_only=True)]
            if strategies is None
            else [engine._resolve(s) for s in strategies]
        )
        outcomes: Dict[str, ExecutionReport] = {}
        for strategy in chosen:
            outcomes[strategy.name] = self.execute(
                query, strategy, options=options
            )
        if check_agreement and len(outcomes) > 1:
            engine._check_agreement(outcomes)
        return outcomes

    def __repr__(self) -> str:
        return (
            f"<EngineSession {self.name!r} strategy="
            f"{self.default_strategy.name} executions={self.executions}>"
        )
