"""The epoch-versioned evolution controller.

An :class:`EvolutionController` drives one :class:`~repro.evolution.plan
.EvolutionPlan` against a live :class:`~repro.core.system
.DistributedSystem`.  Every event unfolds as **two transitions** on the
simulated clock:

* **open** (at ``event.at``) — the propagation window starts.  Attribute
  changes mutate the component schemas and re-integrate the global
  schema immediately; a leaving site becomes administratively
  unreachable (breaker forced open, synthetic whole-execution outage
  merged into every in-flux query's fault plan); a join stays invisible.
* **close** (at ``open + propagation_lag_s * n_sites``) — the window
  ends: every site has learned of the change.  A departed site is
  excised from the schema, mapping tables and signature catalog; a
  joining site materializes (schema cloned from a donor, a seeded
  fraction of entities replicated); attribute changes become certified.

Each applied transition bumps the federation's ``schema_epoch`` (and
with it the ``schema_version`` that keys the decomposition cache, so no
session — current or concurrent — can ever be served a stale
decomposition).  The epoch count *is* the replay coordinate: rebuilding
a federation and stepping a fresh controller ``epoch`` times
reconstructs the exact state any query executed against, which is how
the traffic engine's serial verifier replays churned runs.

Queries that execute while any window is open are *straddling*: the
engine consults :meth:`in_flux_view` and applies the consistency
contract (see ``docs/EVOLUTION.md``) — degraded-but-sound answers,
never a wrong certain one.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import EvolutionError
from repro.evolution.events import (
    ATTR_ADD,
    ATTR_DROP,
    ATTR_RENAME,
    SITE_JOIN,
    SITE_LEAVE,
    EvolutionEvent,
)
from repro.evolution.plan import EvolutionPlan
from repro.integration.global_schema import (
    ClassCorrespondence,
    integrate_schemas,
)
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import (
    AttributeDef,
    ClassDef,
    ComponentSchema,
    primitive,
)
from repro.objectdb.values import NULL, is_null
from repro.resilience.health import SiteHealthRegistry


@dataclass(frozen=True)
class Transition:
    """One applied open/close step, for logs and trace events."""

    phase: str  # "open" | "close"
    event: EvolutionEvent
    at: float
    #: The federation's schema epoch *after* this transition applied.
    epoch: int

    @property
    def label(self) -> str:
        return f"{self.event.label}:{self.phase}"


@dataclass(frozen=True)
class InFluxView:
    """What the engine needs to know about currently-open windows."""

    #: Labels of every open window (the ``epochs_straddled`` annotation).
    labels: Tuple[str, ...] = ()
    #: Sites whose formal leave is open but not yet closed.
    departed_sites: Tuple[str, ...] = ()
    #: Attribute names touched by open drop/rename windows — certain
    #: rows of queries referencing them are demoted to maybe.
    uncertified_attrs: Tuple[str, ...] = ()
    #: label -> the open event (for per-event demotion notes).
    open_events: Tuple[Tuple[str, EvolutionEvent], ...] = ()

    @property
    def active(self) -> bool:
        return bool(self.labels)


class EvolutionController:
    """Applies one plan's transitions to a federation, epoch by epoch."""

    def __init__(
        self,
        system,
        plan: EvolutionPlan,
        health: Optional[SiteHealthRegistry] = None,
    ) -> None:
        if plan.needs_resolution:
            raise EvolutionError(
                "evolution plan has unresolved auto targets; pass it "
                "through repro.evolution.seeding.safe_plan first"
            )
        self.system = system
        self.plan = plan
        #: Persistent administrative breaker registry: a formal leave
        #: force-opens the departing site's breaker; a formal (re)join
        #: resets it so the site is contacted immediately.
        self.health = health if health is not None else SiteHealthRegistry(
            seed=plan.seed
        )
        #: Transitions applied so far == the federation's schema epoch
        #: advance attributable to evolution.
        self.applied = 0
        self.log: List[Transition] = []
        #: (label, site, learns_at) — the incremental site-by-site
        #: propagation schedule of every opened window (lag metrics).
        self.propagation: List[Tuple[str, str, float]] = []
        #: Pending opens, in (time, declaration order).
        self._opens: List[EvolutionEvent] = list(plan.ordered_events())
        #: Pending closes: heap of (time, seq, event).
        self._closes: List[Tuple[float, int, EvolutionEvent]] = []
        self._close_seq = 0
        #: label -> open event, for windows currently in flux.
        self._open_events: Dict[str, EvolutionEvent] = {}
        self._validate_targets()
        system.evolution = self

    # --- scheduling --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Transitions not yet applied."""
        return len(self._opens) + len(self._closes)

    @property
    def done(self) -> bool:
        return self.pending == 0

    def next_time(self) -> Optional[float]:
        """Simulated time of the next transition (None when done)."""
        times = []
        if self._opens:
            times.append(self._opens[0].at)
        if self._closes:
            times.append(self._closes[0][0])
        return min(times) if times else None

    def step(self) -> Transition:
        """Apply the next transition (closes win time ties) and return it."""
        if self.done:
            raise EvolutionError("evolution plan fully applied; no next step")
        close_t = self._closes[0][0] if self._closes else None
        open_t = self._opens[0].at if self._opens else None
        if close_t is not None and (open_t is None or close_t <= open_t):
            at, _seq, event = heapq.heappop(self._closes)
            transition = self._close(event, at)
        else:
            event = self._opens.pop(0)
            transition = self._open(event)
        self.log.append(transition)
        return transition

    def run_all(self) -> List[Transition]:
        """Apply every remaining transition, in order."""
        steps: List[Transition] = []
        while not self.done:
            steps.append(self.step())
        return steps

    def step_to(self, epoch: int) -> None:
        """Apply transitions until ``applied == epoch`` (replay helper)."""
        if epoch < self.applied:
            raise EvolutionError(
                f"cannot step backwards: at epoch {self.applied}, "
                f"asked for {epoch}"
            )
        while self.applied < epoch:
            self.step()

    # --- the engine's view --------------------------------------------------

    def is_settled(self, label: str) -> bool:
        """Whether the named propagation window has closed.

        This is the discharge test for a ``FluxEpoch`` condition atom
        (:mod:`repro.conditions`): a row demoted for straddling window
        *label* can be re-certified only once the window is no longer
        open.  Unknown labels count as settled — a window that never
        opened here (or was already garbage-collected) cannot block.
        """
        return label not in self._open_events

    def in_flux_view(self) -> InFluxView:
        """Snapshot of the currently-open propagation windows."""
        if not self._open_events:
            return InFluxView()
        labels = tuple(sorted(self._open_events))
        departed = tuple(sorted(
            event.site
            for event in self._open_events.values()
            if event.kind == SITE_LEAVE
        ))
        attrs: List[str] = []
        for event in self._open_events.values():
            attrs.extend(event.touched_attrs)
        return InFluxView(
            labels=labels,
            departed_sites=departed,
            uncertified_attrs=tuple(sorted(set(attrs))),
            open_events=tuple(
                (label, self._open_events[label]) for label in labels
            ),
        )

    def propagation_lag(self, label: str) -> float:
        """How long *label*'s window stayed (or will stay) open."""
        times = [t for lbl, _site, t in self.propagation if lbl == label]
        if not times:
            return 0.0
        event = None
        for transition in self.log:
            if transition.event.label == label:
                event = transition.event
                break
        start = event.at if event is not None else min(times)
        return max(times) - start

    # --- transitions --------------------------------------------------------

    def _open(self, event: EvolutionEvent) -> Transition:
        label = event.label
        if label in self._open_events:
            raise EvolutionError(f"window {label!r} already open")
        sites = sorted(self.system.databases)
        lag = self.plan.propagation_lag_s
        close_at = event.at + lag * max(1, len(sites))
        for index, site in enumerate(sites):
            self.propagation.append((label, site, event.at + lag * (index + 1)))
        self._close_seq += 1
        heapq.heappush(self._closes, (close_at, self._close_seq, event))
        self._open_events[label] = event

        if event.kind == SITE_LEAVE:
            self._require_site(event.site)
            # Administrative leave: unreachable the instant the window
            # opens, without paying a single retry ladder.
            self.health.force_open(event.site)
        elif event.kind == ATTR_ADD:
            self._apply_attr_add(event)
        elif event.kind == ATTR_DROP:
            self._apply_attr_drop(event)
        elif event.kind == ATTR_RENAME:
            self._apply_attr_rename(event)
        # site_join: nothing happens at open — invisible until close.
        self._bump()
        return Transition(
            phase="open", event=event, at=event.at, epoch=self.applied
        )

    def _close(self, event: EvolutionEvent, at: float) -> Transition:
        label = event.label
        self._open_events.pop(label, None)
        if event.kind == SITE_LEAVE:
            self._apply_site_excision(event)
        elif event.kind == SITE_JOIN:
            self._apply_site_join(event)
            # Administrative (re)join: contact the site immediately.
            self.health.reset(event.site)
        self._bump()
        return Transition(phase="close", event=event, at=at, epoch=self.applied)

    def _bump(self) -> None:
        self.applied += 1
        self.system.bump_epoch()

    # --- mutation: attribute events -----------------------------------------

    def _apply_attr_add(self, event: EvolutionEvent) -> None:
        db = self._require_site(event.site)
        local_cls = self._require_constituent(event.site, event.global_class)
        cdef = db.schema.cls(local_cls)
        if cdef.has_attribute(event.attr):
            raise EvolutionError(
                f"{event.label}: {event.site}.{local_cls} already defines "
                f"{event.attr!r}"
            )
        new_def = ClassDef.of(
            local_cls, tuple(cdef.attributes) + (primitive(event.attr),)
        )
        self._swap_class_def(db, new_def)
        # Existing objects simply lack the key; reads return NULL, which
        # is exactly the missing-data semantics the strategies expect.
        self._reintegrate()

    def _apply_attr_drop(self, event: EvolutionEvent) -> None:
        db = self._require_site(event.site)
        local_cls = self._require_constituent(event.site, event.global_class)
        cdef = db.schema.cls(local_cls)
        if not cdef.has_attribute(event.attr):
            raise EvolutionError(
                f"{event.label}: {event.site}.{local_cls} does not define "
                f"{event.attr!r}"
            )
        corr = self.system.global_schema.correspondence(event.global_class)
        if event.attr == corr.key_attribute:
            raise EvolutionError(
                f"{event.label}: cannot drop the correspondence key "
                f"attribute {event.attr!r}"
            )
        new_def = ClassDef.of(
            local_cls,
            tuple(a for a in cdef.attributes if a.name != event.attr),
        )
        self._swap_class_def(db, new_def)
        for obj in db.extent(local_cls).values():
            obj.values.pop(event.attr, None)
        db.indexes.drop(local_cls, event.attr)
        # In-place mutation: refresh the site's derived state (remaining
        # indexes, columnar extents) and re-sign the touched objects
        # instead of rebuilding the whole signature catalog.
        db.note_mutation(local_cls)
        if self.system.signatures is not None:
            for obj in db.extent(local_cls).values():
                self.system.signatures.update_object(obj)
        self._reintegrate()

    def _apply_attr_rename(self, event: EvolutionEvent) -> None:
        global_schema = self.system.global_schema
        corr = global_schema.correspondence(event.global_class)
        if event.attr == corr.key_attribute:
            raise EvolutionError(
                f"{event.label}: cannot rename the correspondence key "
                f"attribute {event.attr!r}"
            )
        touched = 0
        for ref in corr.constituents:
            db = self.system.db(ref.db_name)
            cdef = db.schema.cls(ref.class_name)
            if not cdef.has_attribute(event.attr):
                continue
            if cdef.has_attribute(event.new_name):
                raise EvolutionError(
                    f"{event.label}: {ref.db_name}.{ref.class_name} already "
                    f"defines {event.new_name!r}"
                )
            renamed = tuple(
                AttributeDef(
                    name=event.new_name,
                    kind=a.kind,
                    domain=a.domain,
                    multi_valued=a.multi_valued,
                ) if a.name == event.attr else a
                for a in cdef.attributes
            )
            self._swap_class_def(db, ClassDef.of(ref.class_name, renamed))
            for obj in db.extent(ref.class_name).values():
                if event.attr in obj.values:
                    obj.values[event.new_name] = obj.values.pop(event.attr)
            index = db.indexes._indexes.pop((ref.class_name, event.attr), None)
            if index is not None:
                db.create_index(
                    ref.class_name, event.new_name,
                    kind=getattr(index, "kind", "hash"),
                )
            # The rename mutated every stored object in place; refresh
            # the site's derived state and re-sign the class (signature
            # codes hash the attribute *name*, so a rename changes them).
            db.note_mutation(ref.class_name)
            if self.system.signatures is not None:
                for obj in db.extent(ref.class_name).values():
                    self.system.signatures.update_object(obj)
            touched += 1
        if touched == 0:
            raise EvolutionError(
                f"{event.label}: no constituent of {event.global_class!r} "
                f"defines {event.attr!r}"
            )
        multi = corr.multi_valued_attributes
        if event.attr in multi:
            new_corr = ClassCorrespondence.of(
                corr.global_name,
                [(r.db_name, r.class_name) for r in corr.constituents],
                key_attribute=corr.key_attribute,
                multi_valued_attributes=sorted(
                    (multi - {event.attr}) | {event.new_name}
                ),
            )
            self._reintegrate({corr.global_name: new_corr})
        else:
            self._reintegrate()

    # --- mutation: membership events ----------------------------------------

    def _apply_site_excision(self, event: EvolutionEvent) -> None:
        site = event.site
        self._require_site(site)
        replacements: Dict[str, Optional[ClassCorrespondence]] = {}
        for name, corr in self._correspondences().items():
            remaining = [
                (r.db_name, r.class_name)
                for r in corr.constituents
                if r.db_name != site
            ]
            if not remaining:
                raise EvolutionError(
                    f"{event.label}: {name!r} would lose its last "
                    "constituent"
                )
            if len(remaining) != len(corr.constituents):
                replacements[name] = ClassCorrespondence.of(
                    name, remaining,
                    key_attribute=corr.key_attribute,
                    multi_valued_attributes=sorted(
                        corr.multi_valued_attributes
                    ),
                )
        del self.system.databases[site]
        for table in self.system.catalog.tables():
            table.discard_db(site)
        if self.system.signatures is not None:
            self.system.signatures.drop_site(site)
        self._reintegrate(replacements)

    def _apply_site_join(self, event: EvolutionEvent) -> None:
        site = event.site
        if site in self.system.databases:
            raise EvolutionError(f"{event.label}: site {site!r} already exists")
        donor_name = sorted(self.system.databases)[0]
        donor = self.system.db(donor_name)
        schema = ComponentSchema.of(
            site, [donor.schema.cls(n) for n in donor.schema.class_names]
        )
        new_db = ComponentDatabase(schema)
        self.system.databases[site] = new_db
        replacements: Dict[str, ClassCorrespondence] = {}
        for name, corr in self._correspondences().items():
            donor_cls = None
            for ref in corr.constituents:
                if ref.db_name == donor_name:
                    donor_cls = ref.class_name
                    break
            if donor_cls is None:
                continue
            replacements[name] = ClassCorrespondence.of(
                name,
                [(r.db_name, r.class_name) for r in corr.constituents]
                + [(site, donor_cls)],
                key_attribute=corr.key_attribute,
                multi_valued_attributes=sorted(corr.multi_valued_attributes),
            )
        self._clone_entities(event, donor_name, new_db, replacements)
        self._reintegrate(replacements)

    def _clone_entities(
        self,
        event: EvolutionEvent,
        donor_name: str,
        new_db: ComponentDatabase,
        replacements: Dict[str, ClassCorrespondence],
    ) -> None:
        """Replicate a seeded fraction of every class's entities.

        First pass inserts objects with merged primitive values (first
        non-null across existing copies, in sorted site order) and NULL
        complex references; the second pass wires references to the
        local copies that now exist — mirroring how the generator keeps
        stored references site-local.
        """
        rng = random.Random(f"evolve:{self.plan.seed}:join:{event.site}")
        site = event.site
        cloned: List[Tuple[str, object, LocalObject, ClassDef]] = []
        for name in sorted(replacements):
            corr = replacements[name]
            local_cls = None
            for ref in corr.constituents:
                if ref.db_name == site:
                    local_cls = ref.class_name
            if local_cls is None:
                continue
            cdef = new_db.schema.cls(local_cls)
            table = self.system.catalog.table(name)
            goids = sorted(table.goids(), key=lambda g: g.value)
            count = int(len(goids) * self.plan.clone_fraction)
            if not goids or count == 0:
                continue
            for goid in rng.sample(goids, count):
                values: Dict[str, object] = {}
                copies = sorted(table.loids_of(goid).items())
                for attr in cdef.attributes:
                    if attr.domain is not None:
                        values[attr.name] = NULL
                        continue
                    merged = NULL
                    for _db_name, loid in copies:
                        obj = self.system.db(loid.db).get(loid)
                        if obj is None:
                            continue
                        value = obj.values.get(attr.name, NULL)
                        if not is_null(value):
                            merged = value
                            break
                    values[attr.name] = merged
                loid = LOid(site, f"{local_cls.lower()}-j{goid.value}")
                obj = LocalObject(
                    loid=loid, class_name=local_cls, values=values
                )
                new_db.insert(obj, validate=False)
                table.add(goid, loid)
                cloned.append((name, goid, obj, cdef))
        # Second pass: point complex attributes at local copies.
        mutated_classes: Dict[str, None] = {}
        for name, goid, obj, cdef in cloned:
            for attr in cdef.attributes:
                if attr.domain is None:
                    continue
                ref_goid = self._referenced_goid(name, goid, attr.name)
                if ref_goid is None:
                    continue
                local = self.system.catalog.table(
                    self._domain_global(name, attr.name, donor_name)
                ).loid_in(ref_goid, site)
                if local is not None:
                    obj.values[attr.name] = local
                    mutated_classes.setdefault(obj.class_name)
        # The reference wiring mutated freshly-inserted objects in place.
        for class_name in mutated_classes:
            new_db.note_mutation(class_name)
        if self.system.signatures is not None:
            for _name, _goid, obj, _cdef in cloned:
                self.system.signatures.index_object(obj)

    def _referenced_goid(self, global_class, goid, attr_name):
        """The GOid some existing copy's *attr_name* reference points at."""
        table = self.system.catalog.table(global_class)
        for db_name, loid in sorted(table.loids_of(goid).items()):
            if db_name not in self.system.databases:
                continue
            obj = self.system.db(db_name).get(loid)
            if obj is None:
                continue
            value = obj.values.get(attr_name, NULL)
            if is_null(value) or not isinstance(value, LOid):
                continue
            ref_cls = self.system.db(db_name).get(value)
            if ref_cls is None:
                continue
            target_global = self.system.global_schema.global_class_of(
                db_name, ref_cls.class_name
            )
            if target_global is None:
                continue
            ref_goid = self.system.catalog.table(target_global).goid_of(value)
            if ref_goid is not None:
                return ref_goid
        return None

    def _domain_global(self, global_class, attr_name, donor_name):
        """Global class a complex attribute's domain integrates into."""
        gdef = self.system.global_schema.cls(global_class)
        attr = gdef.attribute(attr_name)
        return attr.domain

    # --- shared plumbing -----------------------------------------------------

    def _correspondences(self) -> Dict[str, ClassCorrespondence]:
        return dict(self.system.global_schema._correspondences)

    def _reintegrate(
        self,
        replacements: Optional[Dict[str, ClassCorrespondence]] = None,
    ) -> None:
        corrs = self._correspondences()
        if replacements:
            corrs.update(
                {k: v for k, v in replacements.items() if v is not None}
            )
        schemas = {
            name: db.schema for name, db in self.system.databases.items()
        }
        self.system.global_schema = integrate_schemas(
            schemas, list(corrs.values())
        )
        # Signatures are maintained incrementally at each mutation site
        # (update_object / index_object / drop_site), so re-integration
        # no longer rebuilds the whole catalog per transition.

    def _swap_class_def(self, db: ComponentDatabase, new_def: ClassDef) -> None:
        defs = [
            new_def if name == new_def.name else db.schema.cls(name)
            for name in db.schema.class_names
        ]
        db.schema = ComponentSchema.of(db.name, defs)

    def _require_site(self, site: str) -> ComponentDatabase:
        db = self.system.databases.get(site)
        if db is None:
            raise EvolutionError(f"unknown site {site!r}")
        return db

    def _require_constituent(self, site: str, global_class: str) -> str:
        local_cls = self.system.global_schema.constituent_class(
            site, global_class
        )
        if local_cls is None:
            raise EvolutionError(
                f"site {site!r} holds no constituent of {global_class!r}"
            )
        return local_cls

    def _validate_targets(self) -> None:
        """Cheap static validation of site events against the current roster.

        Attribute events are validated when they apply (earlier events
        may create the classes/sites they touch).
        """
        roster = set(self.system.databases)
        for event in self.plan.ordered_events():
            if event.kind == SITE_LEAVE:
                if event.site not in roster:
                    raise EvolutionError(
                        f"{event.label}: unknown site {event.site!r}"
                    )
                roster.discard(event.site)
                if not roster:
                    raise EvolutionError(
                        f"{event.label}: cannot remove the last site"
                    )
            elif event.kind == SITE_JOIN:
                if event.site in roster:
                    raise EvolutionError(
                        f"{event.label}: site {event.site!r} already exists"
                    )
                roster.add(event.site)
