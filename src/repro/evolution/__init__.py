"""Live federation evolution: epoch-versioned membership and schema churn.

The evolution layer lets sites join/leave and component schemas change
*while queries execute*, with a defined consistency contract instead of
undefined behavior:

* an :class:`EvolutionPlan` declares the churn (seeded, deterministic,
  JSON/CLI-spec round-trippable) — see :mod:`repro.evolution.plan`;
* an :class:`EvolutionController` applies it transition-by-transition,
  bumping the federation's ``schema_epoch`` on every open/close — see
  :mod:`repro.evolution.controller`;
* :func:`safe_plan` resolves abstract churn ("a leave, a rename") into
  concrete targets that keep a workload's queries well-formed — see
  :mod:`repro.evolution.seeding`.

Consistency contract (``docs/EVOLUTION.md``): a query pinned to epoch
``E`` sees the full federation state at ``E``; a query executing while
a propagation window is open gets its answer annotated
(``Availability.epochs_straddled``) and — when the window's change
could silently alter certified rows — those rows demoted to maybe with
an ``"uncertified: schema in flux"`` note.  Never a wrong certain
answer.
"""

from repro.evolution.events import (
    ATTR_ADD,
    ATTR_DROP,
    ATTR_RENAME,
    KINDS,
    SITE_JOIN,
    SITE_LEAVE,
    EvolutionEvent,
)
from repro.evolution.plan import (
    DEFAULT_CLONE_FRACTION,
    DEFAULT_LAG_S,
    EMPTY_EVOLUTION,
    EvolutionPlan,
)
from repro.evolution.controller import EvolutionController, InFluxView, Transition
from repro.evolution.seeding import (
    mix_referenced_attributes,
    referenced_attributes,
    resolve_auto,
    safe_plan,
)

__all__ = [
    "ATTR_ADD",
    "ATTR_DROP",
    "ATTR_RENAME",
    "DEFAULT_CLONE_FRACTION",
    "DEFAULT_LAG_S",
    "EMPTY_EVOLUTION",
    "EvolutionController",
    "EvolutionEvent",
    "EvolutionPlan",
    "InFluxView",
    "KINDS",
    "SITE_JOIN",
    "SITE_LEAVE",
    "Transition",
    "mix_referenced_attributes",
    "referenced_attributes",
    "resolve_auto",
    "safe_plan",
]
