"""Deterministic safe-target resolution for evolution plans.

The fuzzer and the CLI describe churn abstractly ("a leave, then a
rename") and leave the *targets* to this module: :func:`safe_plan`
inspects the live federation plus the workload's query and picks, with
a seeded RNG over sorted candidate lists, targets that keep that query
well-formed across the whole plan:

* a leaving site never takes a global class's last constituent with it,
  nor the last definition of an attribute the query references;
* a dropped attribute is never a correspondence key, never multi-valued,
  and — when the query references it — stays defined at another site;
* a renamed attribute is never referenced by the query, never a key,
  never multi-valued, and never a complex reference;
* added attributes and joined sites get fresh, collision-free names.

Kinds with no safe candidate are *skipped* (the plan simply omits
them), so callers can request churn against arbitrary fuzzed
federations without pre-checking feasibility.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.evolution.events import (
    ATTR_ADD,
    ATTR_DROP,
    ATTR_RENAME,
    KINDS,
    SITE_JOIN,
    SITE_LEAVE,
    EvolutionEvent,
)
from repro.evolution.plan import DEFAULT_LAG_S, EvolutionPlan
from repro.errors import EvolutionError


def referenced_attributes(query) -> Set[str]:
    """Every attribute name a query's targets or predicates step through."""
    names: Set[str] = set()
    for path in query.targets:
        names.update(path.steps)
    for pred in query.predicates:
        names.update(pred.path.steps)
    return names


def mix_referenced_attributes(mix) -> Set[str]:
    """Every attribute any template of a traffic mix can reference.

    Use as ``extra_referenced`` when resolving a plan that will run
    under traffic: the workload query alone under-approximates what the
    mix touches, and a rename of (say) ``t0`` would break every ``scan``
    template instantiation mid-run.
    """
    from repro.core.query import Path

    names: Set[str] = set()
    for entry in mix.entries:
        template = entry.template
        for dotted in template.targets:
            names.update(Path.parse(dotted).steps)
        for pred in template.predicates:
            names.update(Path.parse(pred.path).steps)
    return names


def safe_plan(
    system,
    query,
    kinds: Sequence[str],
    seed: int = 0,
    times: Optional[Sequence[float]] = None,
    propagation_lag_s: float = DEFAULT_LAG_S,
    extra_referenced: Iterable[str] = (),
) -> EvolutionPlan:
    """Resolve *kinds* into a concrete, query-safe :class:`EvolutionPlan`.

    Args:
        system: the federation the plan will run against (inspected,
            not mutated).
        query: the workload query whose validity every event must
            preserve; ``None`` treats every attribute as unreferenced.
        kinds: event kinds (or their spec tags: ``leave``, ``join``,
            ``add``, ``drop``, ``rename``), one event each, in order.
        times: open time per kind; defaults to ``1.0, 2.0, ...``.
        extra_referenced: additional attribute names to protect (e.g.
            attributes other templates in a traffic mix touch).
    """
    rng = random.Random(f"evolve:{seed}")
    referenced: Set[str] = set(extra_referenced)
    if query is not None:
        referenced |= referenced_attributes(query)
    # Simulated roster/attribute state, tracked so successive events
    # stay safe with respect to *earlier* events in the same plan.
    roster = sorted(system.databases)
    dropped: Set[Tuple[str, str, str]] = set()  # (site, class, attr)
    renamed: Set[Tuple[str, str]] = set()  # (class, old attr)
    added: Set[Tuple[str, str, str]] = set()  # (site, class, new attr)
    #: site -> estimated close time of its join window.  A joined site
    #: does not exist until its window *closes*, so later events may
    #: only target it past that point (a leave of a site whose join is
    #: still propagating would hit an unknown site at runtime).
    join_close: dict = {}
    events: List[EvolutionEvent] = []
    for index, raw_kind in enumerate(kinds):
        kind = _normalize(raw_kind)
        at = float(times[index]) if times is not None else float(index + 1)
        # Joins see the full roster (fresh names must dodge pending
        # joins too); everything else only the sites live at ``at``.
        visible = roster if kind == SITE_JOIN else [
            site for site in roster if join_close.get(site, at) <= at
        ]
        event = _resolve_one(
            system, kind, at, rng, referenced, visible, dropped, renamed,
            added,
        )
        if event is None:
            continue  # no safe candidate for this kind; skip it
        events.append(event)
        if event.kind == SITE_LEAVE:
            roster.remove(event.site)
        elif event.kind == SITE_JOIN:
            roster.append(event.site)
            roster.sort()
            # Conservative close estimate: the live roster at open time
            # can exceed the simulated one by a not-yet-excised leaver.
            join_close[event.site] = at + propagation_lag_s * (
                len(roster) + 1
            )
        elif event.kind == ATTR_DROP:
            dropped.add((event.site, event.global_class, event.attr))
        elif event.kind == ATTR_RENAME:
            renamed.add((event.global_class, event.attr))
            referenced.add(event.new_name)
        elif event.kind == ATTR_ADD:
            added.add((event.site, event.global_class, event.attr))
    return EvolutionPlan(
        seed=seed,
        propagation_lag_s=propagation_lag_s,
        events=tuple(events),
    )


_TAGS = {
    "join": SITE_JOIN,
    "leave": SITE_LEAVE,
    "add": ATTR_ADD,
    "drop": ATTR_DROP,
    "rename": ATTR_RENAME,
}


def _normalize(kind: str) -> str:
    resolved = _TAGS.get(kind, kind if kind in KINDS else None)
    if resolved is None:
        raise EvolutionError(
            f"unknown evolution kind {kind!r} (choose from {sorted(_TAGS)})"
        )
    return resolved


def _resolve_one(
    system, kind, at, rng, referenced, roster, dropped, renamed, added
) -> Optional[EvolutionEvent]:
    if kind == SITE_LEAVE:
        site = _pick_leave_site(system, rng, referenced, roster, dropped)
        if site is None:
            return None
        return EvolutionEvent(kind=kind, at=at, site=site)
    if kind == SITE_JOIN:
        return EvolutionEvent(kind=kind, at=at, site=_fresh_site(roster))
    if kind == ATTR_ADD:
        target = _pick_add_target(system, rng, roster, added)
        if target is None:
            return None
        site, global_class, attr = target
        return EvolutionEvent(
            kind=kind, at=at, site=site, global_class=global_class, attr=attr
        )
    if kind == ATTR_DROP:
        target = _pick_drop_target(
            system, rng, referenced, roster, dropped, renamed
        )
        if target is None:
            return None
        site, global_class, attr = target
        return EvolutionEvent(
            kind=kind, at=at, site=site, global_class=global_class, attr=attr
        )
    target = _pick_rename_target(
        system, rng, referenced, renamed, roster, dropped
    )
    if target is None:
        return None
    global_class, attr, new_name = target
    return EvolutionEvent(
        kind=kind, at=at, global_class=global_class,
        attr=attr, new_name=new_name,
    )


def _defining_sites(system, global_class, attr, roster, dropped):
    """Sites (still on the roster) whose constituent defines *attr*."""
    sites = []
    corr = system.global_schema.correspondence(global_class)
    for ref in corr.constituents:
        if ref.db_name not in roster:
            continue
        if (ref.db_name, global_class, attr) in dropped:
            continue
        cdef = system.db(ref.db_name).schema.cls(ref.class_name)
        if cdef.has_attribute(attr):
            sites.append(ref.db_name)
    return sites


def _pick_leave_site(system, rng, referenced, roster, dropped):
    if len(roster) < 2:
        return None
    candidates = []
    for site in roster:
        ok = True
        for global_class in sorted(system.global_schema._correspondences):
            corr = system.global_schema.correspondence(global_class)
            remaining = [
                r.db_name for r in corr.constituents
                if r.db_name in roster and r.db_name != site
            ]
            if not remaining:
                ok = False
                break
            gdef = system.global_schema.cls(global_class)
            for attr in gdef.attributes:
                if attr.name not in referenced:
                    continue
                defining = _defining_sites(
                    system, global_class, attr.name, roster, dropped
                )
                if defining and all(d == site for d in defining):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            candidates.append(site)
    return rng.choice(candidates) if candidates else None


def _fresh_site(roster) -> str:
    n = 1
    while f"DBJ{n}" in roster:
        n += 1
    return f"DBJ{n}"


def _pick_add_target(system, rng, roster, added):
    candidates = []
    for site in roster:
        if site not in system.databases:
            continue  # a join not yet applied; skip
        db = system.db(site)
        for local_cls in sorted(db.schema.class_names):
            global_class = system.global_schema.global_class_of(
                site, local_cls
            )
            if global_class is not None:
                candidates.append((site, global_class))
    if not candidates:
        return None
    site, global_class = rng.choice(sorted(candidates))
    n = 1
    gdef = system.global_schema.cls(global_class)
    taken = {attr for _s, cls, attr in added if cls == global_class}
    while gdef.has_attribute(f"z{n}") or f"z{n}" in taken:
        n += 1
    return site, global_class, f"z{n}"


def _attr_candidates(system, roster, dropped):
    """(site, global class, primitive attr) triples still droppable."""
    triples = []
    for global_class in sorted(system.global_schema._correspondences):
        corr = system.global_schema.correspondence(global_class)
        multi = corr.multi_valued_attributes
        for ref in corr.constituents:
            if ref.db_name not in roster or ref.db_name not in system.databases:
                continue
            cdef = system.db(ref.db_name).schema.cls(ref.class_name)
            for attr in cdef.attributes:
                if attr.domain is not None or attr.name in multi:
                    continue
                if attr.name == corr.key_attribute:
                    continue
                if (ref.db_name, global_class, attr.name) in dropped:
                    continue
                triples.append((ref.db_name, global_class, attr.name))
    return triples


def _pick_drop_target(system, rng, referenced, roster, dropped, renamed):
    candidates = []
    for site, global_class, attr in _attr_candidates(system, roster, dropped):
        if (global_class, attr) in renamed:
            continue  # an earlier rename already moved this attribute
        if attr in referenced:
            defining = _defining_sites(
                system, global_class, attr, roster, dropped
            )
            if len(defining) < 2:
                continue  # would un-define a referenced attribute
        candidates.append((site, global_class, attr))
    return rng.choice(sorted(candidates)) if candidates else None


def _pick_rename_target(system, rng, referenced, renamed, roster, dropped):
    candidates = []
    for global_class in sorted(system.global_schema._correspondences):
        corr = system.global_schema.correspondence(global_class)
        multi = corr.multi_valued_attributes
        gdef = system.global_schema.cls(global_class)
        for attr in gdef.attributes:
            if attr.domain is not None or attr.multi_valued:
                continue
            if attr.name in multi or attr.name == corr.key_attribute:
                continue
            if attr.name in referenced:
                continue
            if (global_class, attr.name) in renamed:
                continue
            # Earlier leaves/drops may have removed every definition;
            # a rename with nothing left to rename is an error.
            if not _defining_sites(
                system, global_class, attr.name, roster, dropped
            ):
                continue
            candidates.append((global_class, attr.name))
    if not candidates:
        return None
    global_class, attr = rng.choice(sorted(candidates))
    n = 1
    gdef = system.global_schema.cls(global_class)
    while gdef.has_attribute(f"{attr}x{n}") or f"{attr}x{n}" in referenced:
        n += 1
    return global_class, attr, f"{attr}x{n}"


def resolve_auto(
    plan: EvolutionPlan, system, query, extra_referenced: Iterable[str] = ()
) -> EvolutionPlan:
    """Fill in a spec-parsed plan's auto placeholders, keeping the rest.

    Concrete entries pass through unchanged (and are validated when the
    controller applies them); each ``?auto`` placeholder is resolved by
    the same candidate logic as :func:`safe_plan`, seeded by the plan's
    seed, at the placeholder's scheduled time.
    """
    if not plan.needs_resolution:
        return plan
    auto_kinds: List[str] = []
    auto_times: List[float] = []
    for event in plan.events:
        if _is_auto(event):
            auto_kinds.append(event.kind)
            auto_times.append(event.at)
    resolved = safe_plan(
        system, query, auto_kinds, seed=plan.seed, times=auto_times,
        propagation_lag_s=plan.propagation_lag_s,
        extra_referenced=extra_referenced,
    )
    replacements = list(resolved.events)
    events: List[EvolutionEvent] = []
    for event in plan.events:
        if not _is_auto(event):
            events.append(event)
            continue
        # safe_plan may have skipped infeasible kinds; match by (kind, at).
        match = next(
            (
                r for r in replacements
                if r.kind == event.kind and r.at == event.at
            ),
            None,
        )
        if match is not None:
            replacements.remove(match)
            events.append(match)
    return EvolutionPlan(
        seed=plan.seed,
        propagation_lag_s=plan.propagation_lag_s,
        clone_fraction=plan.clone_fraction,
        events=tuple(events),
    )


def _is_auto(event: EvolutionEvent) -> bool:
    return (
        event.site.startswith("?")
        or event.global_class.startswith("?")
        or event.attr.startswith("?")
    )
