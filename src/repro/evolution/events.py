"""Evolution events: the atoms of live federation change.

An :class:`EvolutionEvent` is one scheduled change to the federation —
a site joining or leaving, or a component-schema attribute being added,
dropped or renamed.  Events are declarative and seeded (like
:class:`~repro.faults.plan.FaultPlan` windows): the event says *what*
changes and *when* its propagation window opens on the simulated clock;
the :class:`~repro.evolution.controller.EvolutionController` decides how
the change rolls out site-by-site and when the window closes.

Semantics per kind (see ``docs/EVOLUTION.md`` for the full contract):

``site_join``
    A new component database joins, cloning a donor site's component
    schema and a seeded fraction of existing entities.  The join is
    *invisible until its window closes* — queries in flight keep seeing
    the pre-join federation.
``site_leave``
    A site formally departs.  The window opening makes the site
    unreachable (an administrative breaker-open plus a synthetic
    whole-execution outage); the window closing excises the site from
    the schema, the mapping tables and the signature catalog.
``attr_add`` / ``attr_drop`` / ``attr_rename``
    Component-schema changes at one site (add/drop) or across every
    defining site (rename), applied when the window opens and
    *certified* only once it closes — queries straddling the window get
    their affected certain rows demoted to maybe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import EvolutionError

#: Event kinds.
SITE_JOIN = "site_join"
SITE_LEAVE = "site_leave"
ATTR_ADD = "attr_add"
ATTR_DROP = "attr_drop"
ATTR_RENAME = "attr_rename"

KINDS = (SITE_JOIN, SITE_LEAVE, ATTR_ADD, ATTR_DROP, ATTR_RENAME)

#: Kinds whose schema/data mutation applies when the window *opens*
#: (joins instead apply at the close — invisible until certified).
MUTATES_AT_OPEN = (ATTR_ADD, ATTR_DROP, ATTR_RENAME)


@dataclass(frozen=True)
class EvolutionEvent:
    """One scheduled federation change.

    Attributes:
        kind: one of :data:`KINDS`.
        at: simulated time the propagation window opens.
        site: the joining/leaving site, or the site whose component
            schema gains/loses an attribute (empty for ``attr_rename``,
            which applies at every defining site).
        global_class: the global class an attribute event touches.
        attr: the attribute being added/dropped/renamed.
        new_name: the post-rename attribute name (``attr_rename`` only).
    """

    kind: str
    at: float
    site: str = ""
    global_class: str = ""
    attr: str = ""
    new_name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise EvolutionError(
                f"unknown evolution event kind {self.kind!r} "
                f"(choose from {list(KINDS)})"
            )
        if self.at < 0:
            raise EvolutionError(
                f"{self.kind} event scheduled at negative time {self.at}"
            )
        if self.kind in (SITE_JOIN, SITE_LEAVE) and not self.site:
            raise EvolutionError(f"{self.kind} event needs a site name")
        if self.kind in (ATTR_ADD, ATTR_DROP):
            if not (self.site and self.global_class and self.attr):
                raise EvolutionError(
                    f"{self.kind} event needs site, global_class and attr"
                )
        if self.kind == ATTR_RENAME:
            if not (self.global_class and self.attr and self.new_name):
                raise EvolutionError(
                    "attr_rename event needs global_class, attr and new_name"
                )
            if self.new_name == self.attr:
                raise EvolutionError(
                    f"attr_rename of {self.attr!r} to itself is a no-op"
                )

    @property
    def label(self) -> str:
        """Compact identity used in notes, traces and annotations."""
        if self.kind == SITE_JOIN:
            return f"join:{self.site}"
        if self.kind == SITE_LEAVE:
            return f"leave:{self.site}"
        if self.kind == ATTR_ADD:
            return f"add:{self.site}.{self.global_class}.{self.attr}"
        if self.kind == ATTR_DROP:
            return f"drop:{self.site}.{self.global_class}.{self.attr}"
        return f"rename:{self.global_class}.{self.attr}>{self.new_name}"

    @property
    def touched_attrs(self) -> tuple:
        """Attribute names whose meaning is in flux during the window."""
        if self.kind == ATTR_DROP:
            return (self.attr,)
        if self.kind == ATTR_RENAME:
            return (self.attr, self.new_name)
        return ()

    def to_dict(self) -> Dict[str, object]:
        raw: Dict[str, object] = {"kind": self.kind, "at": self.at}
        for name in ("site", "global_class", "attr", "new_name"):
            value = getattr(self, name)
            if value:
                raw[name] = value
        return raw

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "EvolutionEvent":
        return cls(
            kind=str(raw["kind"]),
            at=float(raw["at"]),
            site=str(raw.get("site", "")),
            global_class=str(raw.get("global_class", "")),
            attr=str(raw.get("attr", "")),
            new_name=str(raw.get("new_name", "")),
        )
