"""Declarative, seeded evolution plans (mirror of ``faults.plan``).

An :class:`EvolutionPlan` is to federation churn what a
:class:`~repro.faults.plan.FaultPlan` is to failures: a fully
deterministic description of the membership and schema changes one run
should experience.  The plan holds no randomness beyond its ``seed`` —
join-entity cloning draws from ``random.Random(f"evolve:{seed}:...")``
— so the same plan against the same federation always evolves it
byte-identically.

Plans round-trip through JSON and parse from a compact CLI spec
(:meth:`EvolutionPlan.from_spec`)::

    leave:DB2@1.0              site_leave of DB2, window opens at t=1.0
    join:DBX@2.0               site_join of a new site DBX at t=2.0
    add:DB1.K1.x9@0.5          attr_add of K1.x9 at DB1
    drop:DB2.K1.p0@0.9         attr_drop of K1.p0 at DB2
    rename:K1.t1>t1r@1.5       attr_rename K1.t1 -> K1.t1r (all sites)
    leave@1.0                  *auto* target, resolved against the
                               federation by ``seeding.safe_plan``

Auto entries (bare ``kind@time``) carry no target; they are resolved
deterministically by :func:`repro.evolution.seeding.safe_plan`, which
picks targets that keep the running workload's queries well-formed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.errors import EvolutionError
from repro.evolution.events import KINDS, EvolutionEvent

#: Default per-site propagation lag: one site learns of a change every
#: ``propagation_lag_s`` simulated seconds, so a window over an N-site
#: federation stays open for ``N * propagation_lag_s``.
DEFAULT_LAG_S = 0.05

#: Fraction of each class's entities cloned onto a joining site.
DEFAULT_CLONE_FRACTION = 0.25


@dataclass(frozen=True)
class EvolutionPlan:
    """A deterministic churn scenario: who changes what, and when."""

    seed: int = 0
    propagation_lag_s: float = DEFAULT_LAG_S
    clone_fraction: float = DEFAULT_CLONE_FRACTION
    events: Tuple[EvolutionEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.propagation_lag_s <= 0:
            raise EvolutionError(
                f"propagation lag {self.propagation_lag_s} must be positive"
            )
        if not 0.0 <= self.clone_fraction <= 1.0:
            raise EvolutionError(
                f"clone fraction {self.clone_fraction} outside [0, 1]"
            )

    @property
    def active(self) -> bool:
        return bool(self.events)

    def ordered_events(self) -> Tuple[EvolutionEvent, ...]:
        """Events by (open time, declaration order) — the rollout order."""
        indexed = list(enumerate(self.events))
        indexed.sort(key=lambda pair: (pair[1].at, pair[0]))
        return tuple(event for _index, event in indexed)

    def describe(self) -> str:
        if not self.events:
            return "evolve(off)"
        labels = ",".join(e.label for e in self.ordered_events())
        return f"evolve({labels})"

    # --- construction -----------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec: str,
        seed: int = 0,
        propagation_lag_s: float = DEFAULT_LAG_S,
    ) -> "EvolutionPlan":
        """Parse the compact CLI form (see module docstring).

        Auto entries (bare ``kind@time``) become placeholder events with
        empty targets — callers must resolve them through
        :func:`repro.evolution.seeding.safe_plan` before attaching the
        plan to a controller (:meth:`needs_resolution` says whether any
        remain).
        """
        events: List[EvolutionEvent] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            events.append(_parse_entry(part))
        return cls(
            seed=seed,
            propagation_lag_s=propagation_lag_s,
            events=tuple(events),
        )

    @property
    def needs_resolution(self) -> bool:
        """Whether any event still lacks a concrete target (auto entry).

        Auto entries carry ``?``-prefixed sentinel targets (see
        ``_parse_entry``); an empty field counts as unresolved too.
        """
        def unresolved(value: str) -> bool:
            return not value or value.startswith("?")

        for event in self.events:
            if event.kind in ("site_join", "site_leave"):
                if unresolved(event.site):
                    return True
            elif unresolved(event.global_class) or unresolved(event.attr):
                return True
        return False

    # --- (de)serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "propagation_lag_s": self.propagation_lag_s,
            "clone_fraction": self.clone_fraction,
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "EvolutionPlan":
        return cls(
            seed=int(raw.get("seed", 0)),
            propagation_lag_s=float(
                raw.get("propagation_lag_s", DEFAULT_LAG_S)
            ),
            clone_fraction=float(
                raw.get("clone_fraction", DEFAULT_CLONE_FRACTION)
            ),
            events=tuple(
                EvolutionEvent.from_dict(e) for e in raw.get("events", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "EvolutionPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise EvolutionError(
                f"evolution plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(raw, dict):
            raise EvolutionError("evolution plan JSON must be an object")
        return cls.from_dict(raw)


def _parse_entry(part: str) -> EvolutionEvent:
    """One spec entry -> event (possibly an unresolved auto placeholder)."""
    try:
        head, at_text = part.rsplit("@", 1)
        at = float(at_text)
    except ValueError as exc:
        raise EvolutionError(
            f"bad evolution spec entry {part!r} (want KIND[:TARGET]@TIME)"
        ) from exc
    if ":" not in head:
        kind = _auto_kind(head, part)
        # Auto placeholder: targets filled in by seeding.safe_plan.  A
        # synthetic site name keeps join/leave events constructible.
        if kind in ("site_join", "site_leave"):
            return EvolutionEvent(kind=kind, at=at, site="?auto")
        if kind == "attr_rename":
            return EvolutionEvent(
                kind=kind, at=at, global_class="?", attr="?", new_name="?r"
            )
        return EvolutionEvent(
            kind=kind, at=at, site="?", global_class="?", attr="?"
        )
    tag, target = head.split(":", 1)
    kind = _auto_kind(tag, part)
    if kind == "site_join" or kind == "site_leave":
        return EvolutionEvent(kind=kind, at=at, site=target)
    if kind == "attr_rename":
        try:
            dotted, new_name = target.split(">", 1)
            global_class, attr = dotted.split(".", 1)
        except ValueError as exc:
            raise EvolutionError(
                f"bad rename entry {part!r} (want rename:CLS.ATTR>NEW@TIME)"
            ) from exc
        return EvolutionEvent(
            kind=kind, at=at, global_class=global_class,
            attr=attr, new_name=new_name,
        )
    try:
        site, global_class, attr = target.split(".", 2)
    except ValueError as exc:
        raise EvolutionError(
            f"bad {tag} entry {part!r} (want {tag}:DB.CLS.ATTR@TIME)"
        ) from exc
    return EvolutionEvent(
        kind=kind, at=at, site=site, global_class=global_class, attr=attr
    )


#: Spec tags -> event kinds.
_TAGS = {
    "join": "site_join",
    "leave": "site_leave",
    "add": "attr_add",
    "drop": "attr_drop",
    "rename": "attr_rename",
}


def _auto_kind(tag: str, part: str) -> str:
    tag = tag.strip()
    kind = _TAGS.get(tag, tag if tag in KINDS else None)
    if kind is None:
        raise EvolutionError(
            f"unknown evolution kind {tag!r} in {part!r} "
            f"(choose from {sorted(_TAGS)})"
        )
    return kind


#: The do-nothing plan.
EMPTY_EVOLUTION = EvolutionPlan()
