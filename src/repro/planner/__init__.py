"""Adaptive planning: constraint pruning + trace-fed cost feedback.

The planner layer gives the engine two optional, answer-preserving
inputs (selected by ``ExecutionOptions.planner``):

``constraints``
    A per-site :class:`~repro.planner.constraints.ConstraintCatalog`
    (class presence, attribute coverage, value ranges) that the
    localized strategies consult to prune whole site blocks and skip
    assistant checks that provably cannot change the answer.

``feedback``
    A cross-execution :class:`~repro.planner.feedback.PlannerFeedback`
    store (observed negotiation stalls, breaker opens, span queue
    delays) that replaces the static cost-model assumptions in AUTO's
    CA/BL/PL prediction with measured conditions.

``full`` enables both; ``static`` (the default) disables both and is
byte-identical to the pre-planner behavior.  The soundness contract —
every planner mode returns the same answer as ``static`` — is enforced
by the difftest oracle's ``planner`` invariant.
"""

from repro.planner.constraints import (
    AttributeStats,
    ClassStats,
    ConstraintCatalog,
)
from repro.planner.feedback import PlannerFeedback, SiteObservation

#: Valid values of ``ExecutionOptions.planner``.
PLANNER_MODES = ("static", "feedback", "constraints", "full")


def uses_constraints(mode: str) -> bool:
    """Whether *mode* enables constraint-catalog pruning."""
    return mode in ("constraints", "full")


def uses_feedback(mode: str) -> bool:
    """Whether *mode* enables the trace-fed cost feedback."""
    return mode in ("feedback", "full")


__all__ = [
    "AttributeStats",
    "ClassStats",
    "ConstraintCatalog",
    "PlannerFeedback",
    "SiteObservation",
    "PLANNER_MODES",
    "uses_constraints",
    "uses_feedback",
]
