"""Per-site constraint catalog: class presence, coverage, value ranges.

Following Malik et al.'s constraint-based query distribution, each site
advertises cheap integrity summaries of its extents — how many objects a
class holds, how completely each attribute is populated, and the value
range of homogeneous scalar columns.  Decomposition-time planning uses
them for two *sound* prunes:

* **site prune** — skip a site's whole local-query block when the
  catalog proves every root object would be eliminated locally (empty
  extent, or some fully-populated local predicate whose value range is
  disjoint from the accept region, in every disjunct);
* **check prune** — skip an assistant check when the catalog proves the
  verdict is UNKNOWN (the checked attribute is null for every object of
  the assistant's class at that site), which certification ignores.

Soundness contract: pruning never demotes a certain row and never drops
a maybe row.  Both prunes only remove work whose outcome is *provable*
from the catalog under the exact 3VL semantics of
:func:`repro.core.predicates.compare_values`:

* a row is eliminated only when a conjunct predicate is FALSE for every
  object — nulls yield UNKNOWN (keeps the row maybe), so a column with
  any null is never range-pruned; multi-values satisfy existentially,
  so a column with any multi-value is never range-pruned; order
  comparisons raise on mixed types, so ranges only apply to columns
  whose scalar kind matches the operand's (equality, which never
  raises, may additionally prune on a kind mismatch);
* a check verdict is UNKNOWN only when the stored value is null, and an
  UNKNOWN verdict is certification-equivalent to no verdict at all
  (only SATISFIED/VIOLATED change an entity's status), so an all-null
  column makes the check unable to change the answer.

The catalog is derived state: per-(site, class) statistics are memoized
on the component database's ``data_version`` and rebuilt lazily after
mutations, so a stale range can never mask a fresh value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.query import Op, Predicate
from repro.objectdb.values import MultiValue, is_null

#: Scalar kind labels of a homogeneous column.
KIND_NUMBER = "number"
KIND_STRING = "string"


@dataclass(frozen=True)
class AttributeStats:
    """Constraint summary of one attribute column at one site."""

    #: Objects carrying the attribute slot (the class extent size).
    values: int
    #: How many of those values are null.
    nulls: int
    #: How many are multi-values (existential comparison semantics).
    multi: int
    #: ``"number"`` / ``"string"`` when every non-null value is a scalar
    #: of that one orderable kind (bool counts as number, NaN excluded);
    #: ``None`` for mixed, reference-valued, or multi-valued columns.
    kind: Optional[str] = None
    #: Range of the non-null values when :attr:`kind` is set.
    lo: object = None
    hi: object = None

    @property
    def coverage(self) -> float:
        """Fraction of objects with a non-null value."""
        if self.values == 0:
            return 0.0
        return (self.values - self.nulls) / self.values

    @property
    def all_null(self) -> bool:
        return self.values > 0 and self.nulls == self.values

    @property
    def range_usable(self) -> bool:
        """Whether [lo, hi] soundly bounds every comparison outcome."""
        return (
            self.kind is not None
            and self.nulls == 0
            and self.multi == 0
            and self.values > 0
        )


@dataclass(frozen=True)
class ClassStats:
    """Constraint summary of one class extent at one site."""

    db_name: str
    class_name: str
    count: int
    attributes: Dict[str, AttributeStats] = field(default_factory=dict)


def _operand_kind(operand: object) -> Optional[str]:
    if isinstance(operand, bool) or isinstance(operand, (int, float)):
        return KIND_NUMBER
    if isinstance(operand, str):
        return KIND_STRING
    return None


class ConstraintCatalog:
    """Lazily built, version-invalidated constraint summaries per site.

    The catalog holds no database references of its own; callers pass
    the live :class:`~repro.objectdb.database.ComponentDatabase` and the
    catalog keys its memo on ``(db.name, class_name)`` with the entry
    invalidated whenever ``db.data_version`` moves.
    """

    def __init__(self) -> None:
        self._memo: Dict[Tuple[str, str], Tuple[int, ClassStats]] = {}
        #: Build/consult accounting (observability; never answers).
        self.builds = 0
        self.hits = 0

    # --- statistics ---------------------------------------------------------

    def class_stats(self, db, class_name: str) -> ClassStats:
        """Summarize *class_name*'s extent at *db* (memoized)."""
        key = (db.name, class_name)
        cached = self._memo.get(key)
        if cached is not None and cached[0] == db.data_version:
            self.hits += 1
            return cached[1]
        stats = self._build(db, class_name)
        self._memo[key] = (db.data_version, stats)
        self.builds += 1
        return stats

    def _build(self, db, class_name: str) -> ClassStats:
        extent = db.extent(class_name)
        cdef = db.schema.cls(class_name)
        attr_names = tuple(a.name for a in cdef.attributes)
        per_attr: Dict[str, dict] = {
            name: {"nulls": 0, "multi": 0, "kind": None,
                   "mixed": False, "lo": None, "hi": None}
            for name in attr_names
        }
        count = 0
        for obj in extent.values():
            count += 1
            for name in attr_names:
                value = obj.get(name)
                acc = per_attr[name]
                if is_null(value):
                    acc["nulls"] += 1
                    continue
                if isinstance(value, MultiValue):
                    acc["multi"] += 1
                    acc["mixed"] = True
                    continue
                if isinstance(value, bool) or isinstance(value, (int, float)):
                    kind = KIND_NUMBER
                    if value != value:  # NaN defeats range reasoning
                        acc["mixed"] = True
                        continue
                elif isinstance(value, str):
                    kind = KIND_STRING
                else:
                    acc["mixed"] = True
                    continue
                if acc["kind"] is None:
                    acc["kind"] = kind
                elif acc["kind"] != kind:
                    acc["mixed"] = True
                    continue
                if acc["lo"] is None or value < acc["lo"]:
                    acc["lo"] = value
                if acc["hi"] is None or value > acc["hi"]:
                    acc["hi"] = value
        attributes = {}
        for name, acc in per_attr.items():
            mixed = acc["mixed"] or acc["kind"] is None
            attributes[name] = AttributeStats(
                values=count,
                nulls=acc["nulls"],
                multi=acc["multi"],
                kind=None if mixed else acc["kind"],
                lo=None if mixed else acc["lo"],
                hi=None if mixed else acc["hi"],
            )
        return ClassStats(
            db_name=db.name,
            class_name=class_name,
            count=count,
            attributes=attributes,
        )

    # --- the two sound prunes ----------------------------------------------

    def predicate_all_false(
        self, db, class_name: str, predicate: Predicate
    ) -> bool:
        """Prove ``predicate`` FALSE for *every* object of the extent.

        Only single-step paths qualify (the attribute lives on the class
        itself).  Requires full coverage (a null makes the predicate
        UNKNOWN, not FALSE), no multi-values, and — for order operators,
        which raise on mixed types — an operand of the column's own
        scalar kind.
        """
        if len(predicate.path) != 1:
            return False
        stats = self.class_stats(db, class_name)
        if stats.count == 0:
            return False  # vacuous; the empty-extent prune handles it
        attr = stats.attributes.get(predicate.path.last)
        if attr is None or not attr.range_usable:
            return False
        op = predicate.op
        operand = predicate.operand
        okind = _operand_kind(operand)
        if op is Op.EQ:
            if okind != attr.kind:
                # Equality never raises; across kinds it is plain False.
                return okind is not None
            return bool(operand < attr.lo or operand > attr.hi)
        if op is Op.NE:
            # All-false iff every value equals the operand.
            return (
                okind == attr.kind
                and attr.lo == attr.hi
                and attr.lo == operand
            )
        if okind != attr.kind or okind is None:
            return False  # order comparison could raise; never prune
        if op is Op.LT:
            return bool(attr.lo >= operand)
        if op is Op.LE:
            return bool(attr.lo > operand)
        if op is Op.GT:
            return bool(attr.hi <= operand)
        if op is Op.GE:
            return bool(attr.hi < operand)
        return False  # CONTAINS/NOT_CONTAINS: no range semantics

    def check_provably_unknown(
        self, db, class_name: str, predicate: Predicate
    ) -> bool:
        """Prove an assistant check of ``predicate`` returns UNKNOWN.

        Sound for single-step relative paths only: the checked attribute
        sits on the assistant object itself, so an all-null column makes
        every verdict UNKNOWN — which certification treats exactly like
        an unasked check.  Nested paths may block-and-chase; never prune
        those.
        """
        if len(predicate.path) != 1:
            return False
        stats = self.class_stats(db, class_name)
        if stats.count == 0:
            return False
        attr = stats.attributes.get(predicate.path.last)
        return attr is not None and attr.all_null

    def site_prune_reason(self, db, local_query) -> Optional[str]:
        """Why *db*'s local block provably contributes nothing, or None.

        A site block may be skipped when the root extent is empty, or
        when **every** disjunct of the local query contains a local
        root-class predicate that is FALSE for every object (a FALSE
        conjunct member makes the conjunct FALSE regardless of the
        predicates removed as unsolvable, so every row is eliminated
        locally).  The pruned site still serves incoming assistant
        checks — only its own local query is skipped.
        """
        stats = self.class_stats(db, local_query.range_class)
        if stats.count == 0:
            return "empty-extent"
        if not local_query.where:
            return None
        pruned_by: list = []
        for conjunct in local_query.where:
            witness = None
            for predicate in conjunct:
                if self.predicate_all_false(
                    db, local_query.range_class, predicate
                ):
                    witness = predicate
                    break
            if witness is None:
                return None
            pruned_by.append(witness)
        return "all-false:" + ";".join(str(p) for p in pruned_by)
