"""Trace-fed planner feedback: observed stalls, breakers, queue delays.

AUTO's analytic model assumes the static Table 1 cost constants and a
fault-free network.  Real executions record what actually happened —
negotiation retry ladders (:class:`~repro.faults.injector.Negotiation`
waits), circuit-breaker opens
(:class:`~repro.resilience.health.SiteHealthRegistry` transitions), and
device queueing (span ``queue_delay``).  A :class:`PlannerFeedback`
store folds those observations across a federation's executions so the
``feedback`` / ``full`` planner modes can replace the static
assumptions with measured per-site conditions:

* **entry stalls** — EWMA of the fault wait paid negotiating
  ``global -> site`` links.  Every strategy pays these once per queried
  site, so they shift all predictions consistently (and keep relative
  ranks honest when only some sites stall).
* **peer stalls** — EWMA of the fault wait on ``site -> site`` links.
  Only the localized strategies pay these (assistant-check exchanges);
  a storm on peer links is exactly the signal that should flip AUTO
  toward CA, which never touches them.
* **site slowdown** — ratio of span wall time to busy time per site
  (device queueing under concurrent traffic), applied as a work
  multiplier.
* **observed-unreachable sites** — entry links that have only ever
  failed, extending the plan-derived CA penalty to failures the static
  plan peek cannot see (e.g. partial loss below the 0.99 threshold).

Feedback never touches answers: it only reorders AUTO's prediction
ranking.  The difftest oracle's ``planner`` invariant proves every mode
answer-identical to ``static``.

All folding follows the first-sample-seeded, success-aware EWMA
discipline fixed in ``repro.resilience.health`` — zero-wait synthetic
negotiations (open-circuit suppressions) are counted as failures but
never dilute the stall EWMAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.resilience.health import OPEN

#: Default EWMA smoothing factor for observed stalls/slowdowns.
FEEDBACK_ALPHA = 0.3

#: Cap on the slowdown multiplier handed to the analytic model.  The
#: raw wall/busy EWMA is kept un-capped in the store (it is a real
#: congestion measurement); the cap only bounds how hard one congested
#: execution can skew predictions.
SLOWDOWN_CAP = 8.0


@dataclass
class SiteObservation:
    """Accumulated observations about one destination site."""

    site: str
    #: EWMA of fault waits negotiating global -> site (seconds).
    entry_stall_ewma_s: float = 0.0
    entry_stall_samples: int = 0
    entry_successes: int = 0
    entry_failures: int = 0
    #: EWMA of fault waits negotiating peer -> site (seconds).
    peer_stall_ewma_s: float = 0.0
    peer_stall_samples: int = 0
    peer_successes: int = 0
    peer_failures: int = 0
    #: Times this site's breaker opened (failure-driven or formal leave).
    breaker_opens: int = 0
    #: EWMA of span wall-time / busy-time at this site (>= 1.0).
    slowdown_ewma: float = 1.0
    slowdown_samples: int = 0

    def _fold(self, current: float, samples: int, value: float, alpha: float):
        if samples == 0:
            return value
        return current + alpha * (value - current)


class PlannerFeedback:
    """Cross-execution feedback store attached to a federation."""

    def __init__(self, alpha: float = FEEDBACK_ALPHA) -> None:
        self.alpha = alpha
        self._sites: Dict[str, SiteObservation] = {}
        #: Executions folded so far (0 means "no data: behave static").
        self.executions_observed = 0

    def site(self, name: str) -> SiteObservation:
        record = self._sites.get(name)
        if record is None:
            record = self._sites[name] = SiteObservation(site=name)
        return record

    # --- folding ------------------------------------------------------------

    def observe_execution(self, ctx, metrics, global_site: str) -> None:
        """Fold one finished execution's fault context + metrics.

        Called by the engine after every faulted execution (the fault
        context is where negotiations and breaker transitions live);
        cheap — a handful of dict folds per contacted site.
        """
        self.executions_observed += 1
        for (src, dst), negotiation in sorted(ctx.injector._memo.items()):
            record = self.site(dst)
            entry = src == global_site
            if entry:
                if negotiation.ok:
                    record.entry_successes += 1
                else:
                    record.entry_failures += 1
            else:
                if negotiation.ok:
                    record.peer_successes += 1
                else:
                    record.peer_failures += 1
            wait = negotiation.wait_s
            if not negotiation.ok and wait <= 0.0:
                # Synthetic open-circuit suppression: a real failure
                # signal, but folding its zero wait would dilute the
                # stall EWMA exactly like the pre-fix health bug.
                continue
            if entry:
                record.entry_stall_ewma_s = record._fold(
                    record.entry_stall_ewma_s,
                    record.entry_stall_samples,
                    wait,
                    self.alpha,
                )
                record.entry_stall_samples += 1
            else:
                record.peer_stall_ewma_s = record._fold(
                    record.peer_stall_ewma_s,
                    record.peer_stall_samples,
                    wait,
                    self.alpha,
                )
                record.peer_stall_samples += 1
        if ctx.health is not None:
            for site, _from, to_state in ctx.health.transitions:
                if to_state == OPEN:
                    self.site(site).breaker_opens += 1
        if metrics is not None:
            self._fold_spans(metrics)

    def _fold_spans(self, metrics) -> None:
        wall: Dict[str, float] = {}
        busy: Dict[str, float] = {}
        for span in getattr(metrics, "spans", ()):
            duration = span.duration
            if duration <= 0.0:
                continue
            wall[span.site] = wall.get(span.site, 0.0) + duration
            busy[span.site] = busy.get(span.site, 0.0) + max(
                duration - span.queue_delay, 0.0
            )
        for site in sorted(wall):
            if busy.get(site, 0.0) <= 0.0:
                continue
            record = self.site(site)
            record.slowdown_ewma = record._fold(
                record.slowdown_ewma,
                record.slowdown_samples,
                wall[site] / busy[site],
                self.alpha,
            )
            record.slowdown_samples += 1

    # --- planner queries ----------------------------------------------------

    @property
    def has_data(self) -> bool:
        return self.executions_observed > 0

    def entry_stalls(self) -> Dict[str, float]:
        """Observed global->site stall seconds per site (EWMA)."""
        return {
            name: record.entry_stall_ewma_s
            for name, record in sorted(self._sites.items())
            if record.entry_stall_samples and record.entry_stall_ewma_s > 0.0
        }

    def peer_stalls(self) -> Dict[str, float]:
        """Observed peer->site stall seconds per site (EWMA)."""
        return {
            name: record.peer_stall_ewma_s
            for name, record in sorted(self._sites.items())
            if record.peer_stall_samples and record.peer_stall_ewma_s > 0.0
        }

    def site_multipliers(self) -> Dict[str, float]:
        """Observed per-site work slowdown (span wall/busy EWMA).

        Capped at :data:`SLOWDOWN_CAP` — see its docstring.
        """
        return {
            name: min(record.slowdown_ewma, SLOWDOWN_CAP)
            for name, record in sorted(self._sites.items())
            if record.slowdown_samples and record.slowdown_ewma > 1.0
        }

    def unreliable_sites(self) -> Tuple[str, ...]:
        """Sites whose entry link has only ever failed.

        These extend AUTO's plan-derived CA penalty: a centralized
        collection stalls on (and then loses) every such site's export,
        while the localized strategies degrade it to a partial answer.
        """
        return tuple(
            name
            for name, record in sorted(self._sites.items())
            if record.entry_failures and not record.entry_successes
        )

    def describe(self) -> str:
        """One deterministic line per observed site (tracing/debug)."""
        parts: List[str] = []
        for name, r in sorted(self._sites.items()):
            parts.append(
                f"{name}: entry={r.entry_stall_ewma_s:.6f}s"
                f"/{r.entry_stall_samples}"
                f" peer={r.peer_stall_ewma_s:.6f}s/{r.peer_stall_samples}"
                f" opens={r.breaker_opens}"
                f" slowdown={r.slowdown_ewma:.4f}/{r.slowdown_samples}"
            )
        return "; ".join(parts) if parts else "no observations"
