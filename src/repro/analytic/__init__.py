"""Parameter-driven (analytic) simulation — the paper's own methodology."""

from repro.analytic.model import GLOBAL_SITE, REACH, AnalyticModel, AnalyticOutcome, SiteLoad

__all__ = ["AnalyticModel", "AnalyticOutcome", "GLOBAL_SITE", "REACH", "SiteLoad"]
