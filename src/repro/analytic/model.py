"""Parameter-driven (analytic) simulation of the three strategies.

The paper's own performance study never materializes databases: it draws
Table 2 parameter sets and estimates total execution time and response
time from expected object counts and the Table 1 costs.  This module
reproduces that methodology.  For each strategy it computes the expected
work at every site — objects scanned, predicates evaluated, mapping
lookups, assistants dispatched and checked, bytes shipped — and schedules
the same activity-graph topology the concrete strategies build, on the
same :class:`~repro.sim.taskgraph.FederationSim`.  Total time and
response time therefore come out of one consistent cost model, and the
analytic predictions can be cross-validated against concrete executions
(see ``benchmarks/bench_ablation_model_vs_des.py``).

Modelling choices (documented deviations are calibration, not shape):

* every strategy-relevant count is an expectation (continuous, not
  sampled);
* reference chains are walkable per hop with probability ``REACH``
  (matching the generator's co-location bias);
* an unanswerable unsolved predicate leaves a maybe result, an assistant
  verdict resolves it; chase rounds are second-order and ignored;
* each object has ``0.1 * (N_db - 1)`` assistants on average, the
  placement model behind Table 2's ``R_iso = 1 - 0.9^(N_db-1)`` law;
* assistant retrievals are random fetches and pay the seek overhead
  (``CostModel.disk_seek_s``), while extent scans are sequential.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.sim.costs import CostModel, PAPER_COSTS
from repro.sim.metrics import WorkCounters
from repro.sim.taskgraph import (
    FederationSim,
    PHASE_FAULT,
    PHASE_I,
    PHASE_O,
    PHASE_P,
    PHASE_SCAN,
)
from repro.workload.params import WorkloadParams

#: Per-hop probability that a reference chain step is locally walkable
#: (mirrors the generator's CO_LOCATION_BIAS).
REACH = 0.85

#: Name of the simulated global processing site.
GLOBAL_SITE = "GPS"


@dataclass
class SiteLoad:
    """Expected per-site work of one localized strategy execution."""

    scan_bytes: float = 0.0
    eval_comparisons: float = 0.0
    probe_comparisons: float = 0.0      # PL's missing-data probes
    mapping_lookups: float = 0.0
    survivors: float = 0.0
    maybe_rows: float = 0.0
    result_bytes: float = 0.0
    checks_dispatched: float = 0.0      # assistants this site asks others about
    eval_extra_bytes: float = 0.0       # PL's marginal evaluation reads


@dataclass
class AnalyticOutcome:
    """Expected metrics of one strategy on one parameter set."""

    strategy: str
    total_time: float
    response_time: float
    work: WorkCounters = field(default_factory=WorkCounters)


class AnalyticModel:
    """Expected-cost evaluation of CA/BL/PL for a Table 2 parameter set."""

    def __init__(
        self,
        params: WorkloadParams,
        cost_model: CostModel = PAPER_COSTS,
        shared_network: bool = True,
        root_selectivity: Optional[float] = None,
        site_entry_stall_s: Optional[Mapping[str, float]] = None,
        site_peer_stall_s: Optional[Mapping[str, float]] = None,
        site_multipliers: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.params = params
        self.cost = cost_model
        self.shared_network = shared_network
        #: Optional override of the local predicates' selectivity on the
        #: root class (the paper's Figure 11 sweeps it).
        self.root_selectivity = root_selectivity
        #: Trace-fed feedback (see repro.planner.feedback): observed
        #: stall seconds negotiating global->site links — paid once at
        #: every strategy's entry to that site, including CA's export.
        self.site_entry_stall_s = dict(site_entry_stall_s or {})
        #: Observed stall seconds negotiating peer->site links — paid by
        #: the localized strategies' check exchanges only; CA never
        #: touches peer links.
        self.site_peer_stall_s = dict(site_peer_stall_s or {})
        #: Observed per-site work slowdown (span wall/busy ratio) that
        #: scales the scheduled device seconds at that site.
        self.site_multipliers = dict(site_multipliers or {})

    # --- shared shape quantities ------------------------------------------

    def _attrs_involved(self, k: int, db_name: Optional[str] = None) -> float:
        """Attributes of class k the query touches at one site.

        A site stores (and exports) only the predicate attributes its own
        constituent defines — N_pa^{i,k} of them — plus the key, one
        target, and the reference.  With ``db_name=None`` the N_db
        average is used (for work executed at assistants' sites).
        """
        cls = self.params.classes[k]
        if db_name is None:
            pred_attrs = sum(
                cls.per_db[db].n_local_pred_attrs for db in self.params.db_names
            ) / len(self.params.db_names)
        else:
            pred_attrs = float(cls.per_db[db_name].n_local_pred_attrs)
        n = 1.0 + 1.0 + pred_attrs  # key + t0 + local predicate attributes
        if k < self.params.n_classes - 1:
            n += 1.0  # ref
        return n

    def _object_bytes(self, k: int, db_name: Optional[str] = None) -> float:
        return self.cost.object_bytes(self._attrs_involved(k, db_name))

    def _branch_bytes(self) -> float:
        if self.params.n_classes <= 1:
            return 0.0
        sizes = [self._object_bytes(k) for k in range(1, self.params.n_classes)]
        return sum(sizes) / len(sizes)

    def _reach(self, k: int) -> float:
        return REACH ** k

    def _local_combined_selectivity(self, db_name: str, k: int) -> float:
        sel = self.params.classes[k].local_selectivity(db_name)
        if k == 0 and self.root_selectivity is not None:
            n_pa = self.params.classes[0].per_db[db_name].n_local_pred_attrs
            if n_pa > 0:
                sel = self.root_selectivity
        return sel

    def _null_prob(self, db_name: str, k: int) -> float:
        return self.params.classes[k].per_db[db_name].r_missing

    def _survive_prob(self, db_name: str) -> float:
        """P(no local predicate FALSE) for one root object at db_name."""
        prob = 1.0
        for k, cls in enumerate(self.params.classes):
            q = cls.per_db[db_name].n_local_pred_attrs
            if q == 0:
                continue
            sel_combined = self._local_combined_selectivity(db_name, k)
            per_pred = sel_combined ** (1.0 / q)
            m = self._null_prob(db_name, k)
            false_prob = self._reach(k) * (1.0 - m) * (1.0 - per_pred)
            prob *= (1.0 - false_prob) ** q
        return prob

    def _certain_prob(self, db_name: str) -> float:
        """P(every predicate TRUE locally) for one root object."""
        prob = 1.0
        for k, cls in enumerate(self.params.classes):
            q = cls.per_db[db_name].n_local_pred_attrs
            if cls.n_predicates > q:
                return 0.0  # removed predicates keep every row maybe
            if q == 0:
                continue
            sel_combined = self._local_combined_selectivity(db_name, k)
            per_pred = sel_combined ** (1.0 / q)
            m = self._null_prob(db_name, k)
            prob *= (self._reach(k) * (1.0 - m) * per_pred) ** q
        return prob

    def _item_rate(self, db_name: str, k: int) -> float:
        """Expected unsolved items on class k per root object (k >= 1)."""
        cls = self.params.classes[k]
        removed = cls.n_predicates - cls.per_db[db_name].n_local_pred_attrs
        local = cls.per_db[db_name].n_local_pred_attrs
        m = self._null_prob(db_name, k)
        rate = 0.0
        if removed > 0:
            rate += 1.0
        elif local > 0:
            rate += min(1.0, local * m)
        return rate * self._reach(k)

    def _root_unsolved_rate(self, db_name: str) -> float:
        """Expected unsolved predicates sitting on the root object."""
        cls = self.params.classes[0]
        removed = cls.n_predicates - cls.per_db[db_name].n_local_pred_attrs
        local = cls.per_db[db_name].n_local_pred_attrs
        rate = float(removed) + local * self._null_prob(db_name, 0)
        # Blocked references also park nested predicates on the root.
        for k in range(1, self.params.n_classes):
            nested = self.params.classes[k].n_predicates
            rate += nested * (1.0 - self._reach(k))
        return rate

    def _answer_fraction(self, k: int) -> float:
        """Fraction of assistants whose site can advance a class-k check."""
        cls = self.params.classes[k]
        if cls.n_predicates == 0:
            return 0.0
        total = sum(
            cls.per_db[db].n_local_pred_attrs for db in self.params.db_names
        )
        frac = total / (len(self.params.db_names) * cls.n_predicates)
        return max(frac, 1.0 / len(self.params.db_names))

    def _assistants_per_object(self) -> float:
        """Expected isomeric copies of one object at other sites.

        Table 2's R_iso law corresponds to per-site replica probability
        0.1 (see the generator), so an object has ``0.1 * (N_db - 1)``
        assistants on average — the count that "will increase as the
        number of component databases increases" (Section 4.2).
        """
        return 0.1 * (self.params.n_dbs - 1)

    def _branch_read_bytes(self, db_name: str, probe_only: bool) -> float:
        """Expected branch-object disk bytes of one site's pass.

        Reads are capped at each branch extent's size: walks revisit
        objects, but a buffered extent is read from disk once (the same
        one-pass charge CA's export pays).
        """
        n_root = self.params.classes[0].per_db[db_name].n_objects
        total = 0.0
        for k in range(1, self.params.n_classes):
            cls = self.params.classes[k]
            if probe_only:
                walks = float(cls.n_predicates)
            else:
                walks = cls.per_db[db_name].n_local_pred_attrs + 1.0  # + target
            reads = min(
                n_root * walks * self._reach(k),
                float(cls.per_db[db_name].n_objects),
            )
            total += reads * self._object_bytes(k, db_name)
        return total

    # --- strategies -----------------------------------------------------------

    def evaluate(self, strategy: str) -> AnalyticOutcome:
        """Expected metrics for one strategy.

        Knows "CA", "BL", "PL" and the signature variants "BL-S"/"PL-S"
        (assistant checks pre-filtered by replicated signatures: only the
        R_ss fraction passes and is transferred/checked; the rest resolve
        locally at one signature comparison each — Table 2's R_ss).
        """
        strategy = strategy.upper()
        if strategy == "CA":
            return self._evaluate_ca()
        if strategy in ("BL", "PL"):
            return self._evaluate_localized(strategy)
        if strategy in ("BL-S", "PL-S"):
            return self._evaluate_localized(strategy[:2], use_signatures=True)
        raise ValueError(
            f"analytic model knows CA/BL/PL/BL-S/PL-S, not {strategy!r}"
        )

    def evaluate_all(
        self, include_signatures: bool = False
    ) -> Dict[str, AnalyticOutcome]:
        """Expected metrics for every strategy the model can rank.

        ``include_signatures`` adds BL-S/PL-S — only meaningful when the
        federation has actually built its signature catalogs, so callers
        (the adaptive selector) gate it on that.
        """
        names = ("CA", "BL", "PL")
        if include_signatures:
            names = names + ("BL-S", "PL-S")
        return {name: self.evaluate(name) for name in names}

    def _signature_pass_rate(self) -> float:
        """Average fraction of assistants the signature filter passes.

        Table 2 models the signature filter's selectivity as R_ss^{i,k};
        we average it over the sites and classes that actually produce
        unsolved predicates.
        """
        rates = []
        for k, cls in enumerate(self.params.classes):
            for db_name in self.params.db_names:
                if cls.unsolved_count(db_name) > 0:
                    rates.append(cls.signature_selectivity(db_name))
        return sum(rates) / len(rates) if rates else 1.0

    def _fed(self) -> FederationSim:
        return FederationSim(
            sites=self.params.db_names,
            global_site=GLOBAL_SITE,
            cost_model=self.cost,
            shared_network=self.shared_network,
        )

    # --- trace-fed feedback hooks -----------------------------------------

    def _mult(self, site: str) -> float:
        """Observed work slowdown at *site* (1.0 without feedback)."""
        return max(self.site_multipliers.get(site, 1.0), 1.0)

    def _entry_gate(self, fed: FederationSim, site: str):
        """Schedule the observed global->site entry stall, if any.

        Returns the dependency list downstream site work should wait on
        (empty without feedback — identical schedule to the static
        model).
        """
        stall = self.site_entry_stall_s.get(site, 0.0)
        if stall <= 0.0:
            return []
        return [
            fed.delay(site, stall, f"observed entry stall {site}", PHASE_FAULT)
        ]

    def _peer_gate(self, fed: FederationSim, src: str, dst: str, deps):
        """Gate a check exchange on the observed peer->dst stall."""
        stall = self.site_peer_stall_s.get(dst, 0.0)
        if stall <= 0.0:
            return deps
        return [
            fed.delay(
                src, stall, f"observed peer stall {src}->{dst}", PHASE_FAULT,
                deps,
            )
        ]

    def _evaluate_ca(self) -> AnalyticOutcome:
        fed = self._fed()
        work = WorkCounters()
        ship_nodes = []
        total_objects = 0.0
        for db_name in self.params.db_names:
            site_bytes = 0.0
            site_objects = 0.0
            for k, cls in enumerate(self.params.classes):
                n = cls.per_db[db_name].n_objects
                site_objects += n
                site_bytes += n * self._object_bytes(k, db_name)
            total_objects += site_objects
            work.objects_scanned += int(site_objects)
            work.objects_shipped += int(site_objects)
            work.bytes_disk += int(site_bytes)
            work.bytes_network += int(site_bytes)
            mult = self._mult(db_name)
            scan = fed.disk(
                db_name, site_bytes * mult, "scan", PHASE_SCAN,
                self._entry_gate(fed, db_name),
            )
            project = fed.cpu(
                db_name, site_objects * mult, "project", PHASE_SCAN, [scan]
            )
            ship_nodes.append(
                fed.transfer(db_name, GLOBAL_SITE, site_bytes, "ship", [project])
            )
        # Outerjoin: one hash probe per shipped object + one mapping-table
        # probe per stored reference.
        references = sum(
            cls.per_db[db].n_objects
            for k, cls in enumerate(self.params.classes)
            if k < self.params.n_classes - 1
            for db in self.params.db_names
        )
        join_cmp = total_objects + references
        # Root entities after integration.
        copies = self.params.r_iso * 2.0 + (1.0 - self.params.r_iso)
        root_entities = (
            sum(
                self.params.classes[0].per_db[db].n_objects
                for db in self.params.db_names
            )
            / copies
        )
        eval_cmp = root_entities * max(1, self.params.total_predicates())
        work.comparisons += int(join_cmp + eval_cmp)
        gps_mult = self._mult(GLOBAL_SITE)
        integrate = fed.cpu(
            GLOBAL_SITE, join_cmp * gps_mult, "outerjoin", PHASE_I, ship_nodes
        )
        fed.cpu(GLOBAL_SITE, eval_cmp * gps_mult, "evaluate", PHASE_P, [integrate])
        outcome = fed.run()
        return AnalyticOutcome(
            strategy="CA",
            total_time=outcome.total_time,
            response_time=outcome.response_time,
            work=work,
        )

    def _site_load(self, db_name: str, strategy: str) -> SiteLoad:
        load = SiteLoad()
        cls0 = self.params.classes[0]
        n = cls0.per_db[db_name].n_objects
        root_bytes = self._object_bytes(0, db_name)

        eval_read_bytes = self._branch_read_bytes(db_name, probe_only=False)
        local_preds = sum(
            self.params.classes[k].per_db[db_name].n_local_pred_attrs
            for k in range(self.params.n_classes)
        )
        load.eval_comparisons = n * max(local_preds, 1)
        load.survivors = n * self._survive_prob(db_name)
        certain = n * self._certain_prob(db_name)
        load.maybe_rows = max(load.survivors - certain, 0.0)

        assistants = self._assistants_per_object()
        if strategy == "BL":
            load.scan_bytes = n * root_bytes + eval_read_bytes
            base = load.maybe_rows
        else:  # PL
            probe_read_bytes = self._branch_read_bytes(db_name, probe_only=True)
            load.scan_bytes = n * root_bytes + probe_read_bytes
            load.eval_extra_bytes = max(eval_read_bytes - probe_read_bytes, 0.0)
            load.probe_comparisons = n * max(self.params.total_predicates(), 1)
            base = n  # every object's missing data is probed

        checks = 0.0
        lookups = 0.0
        for k in range(1, self.params.n_classes):
            rate = self._item_rate(db_name, k)
            items = base * rate
            lookups += items * (1.0 + assistants)
            checks += items * assistants * self._answer_fraction(k)
        load.mapping_lookups = lookups
        load.checks_dispatched = checks

        # Result shipment: every surviving row ships bindings; maybe rows
        # add unsolved metadata.
        targets = self.params.n_classes + 1
        unsolved_meta = self._root_unsolved_rate(db_name) + sum(
            self._item_rate(db_name, k) for k in range(1, self.params.n_classes)
        )
        load.result_bytes = load.survivors * self.cost.row_bytes(targets) + (
            load.maybe_rows * unsolved_meta * self.cost.attribute_bytes
        )
        return load

    def _evaluate_localized(
        self, strategy: str, use_signatures: bool = False
    ) -> AnalyticOutcome:
        fed = self._fed()
        work = WorkCounters()
        certify_deps = []
        branch_bytes = self._branch_bytes()
        n_dbs = self.params.n_dbs
        sig_pass = self._signature_pass_rate() if use_signatures else 1.0
        unsolved_per_check = max(
            1.0,
            sum(
                max(
                    self.params.classes[k].n_predicates
                    - self.params.classes[k].per_db[db].n_local_pred_attrs
                    for db in self.params.db_names
                )
                for k in range(1, self.params.n_classes)
            )
            / max(1, self.params.n_classes - 1),
        ) if self.params.n_classes > 1 else 1.0

        total_survivors = 0.0
        incoming_checks: Dict[str, float] = {db: 0.0 for db in self.params.db_names}
        loads: Dict[str, SiteLoad] = {}
        for db_name in self.params.db_names:
            load = self._site_load(db_name, strategy)
            if use_signatures:
                # Pre-filter assistants against replicated signatures:
                # one comparison per candidate; only R_ss pass and ship.
                sig_comparisons = load.checks_dispatched
                load.mapping_lookups += sig_comparisons
                work.signature_comparisons += int(sig_comparisons)
                load.checks_dispatched *= sig_pass
            loads[db_name] = load
            total_survivors += load.survivors
            if n_dbs > 1:
                share = load.checks_dispatched / (n_dbs - 1)
                for other in self.params.db_names:
                    if other != db_name:
                        incoming_checks[other] += share

        for db_name in self.params.db_names:
            load = loads[db_name]
            work.objects_scanned += int(
                self.params.classes[0].per_db[db_name].n_objects
            )
            work.bytes_disk += int(load.scan_bytes + load.eval_extra_bytes)
            work.comparisons += int(
                load.eval_comparisons
                + load.probe_comparisons
                + load.mapping_lookups
            )
            work.assistants_looked_up += int(load.checks_dispatched)

            mult = self._mult(db_name)
            entry = self._entry_gate(fed, db_name)
            if strategy == "BL":
                scan = fed.disk(
                    db_name, load.scan_bytes * mult, "BL_C1 scan", PHASE_SCAN,
                    entry,
                )
                evaluate = fed.cpu(
                    db_name, load.eval_comparisons * mult, "BL_C1 eval",
                    PHASE_P, [scan],
                )
                dispatch = fed.cpu(
                    db_name, load.mapping_lookups * mult, "BL_C2 lookup",
                    PHASE_O, [evaluate],
                )
                ship_from = dispatch
            else:
                scan = fed.disk(
                    db_name, load.scan_bytes * mult, "PL_C1 scan", PHASE_SCAN,
                    entry,
                )
                dispatch = fed.cpu(
                    db_name,
                    (load.probe_comparisons + load.mapping_lookups) * mult,
                    "PL_C1 lookup",
                    PHASE_O,
                    [scan],
                )
                eval_read = fed.disk(
                    db_name, load.eval_extra_bytes * mult, "PL_C2 read",
                    PHASE_SCAN, [dispatch],
                )
                ship_from = fed.cpu(
                    db_name, load.eval_comparisons * mult, "PL_C2 eval",
                    PHASE_P, [eval_read],
                )

            work.bytes_network += int(load.result_bytes)
            certify_deps.append(
                fed.transfer(
                    db_name, GLOBAL_SITE, load.result_bytes, "results",
                    [ship_from],
                )
            )

            # One aggregated check exchange per peer site.
            if n_dbs > 1 and load.checks_dispatched > 0:
                share = load.checks_dispatched / (n_dbs - 1)
                for other in self.params.db_names:
                    if other == db_name:
                        continue
                    request_bytes = self.cost.check_request_bytes(
                        max(1, int(math.ceil(share))), int(unsolved_per_check)
                    )
                    reply_bytes = self.cost.check_reply_bytes(
                        max(1, int(math.ceil(share)))
                    )
                    work.bytes_network += request_bytes + reply_bytes
                    work.assistants_checked += int(share)
                    check_cmp = share * unsolved_per_check
                    work.comparisons += int(check_cmp)
                    check_bytes = share * branch_bytes
                    work.bytes_disk += int(check_bytes)
                    other_mult = self._mult(other)
                    send = fed.transfer(
                        db_name, other, request_bytes, "check-req",
                        self._peer_gate(fed, db_name, other, [dispatch]),
                    )
                    read = fed.disk(
                        other, check_bytes * other_mult, "check read", PHASE_O,
                        [send], seeks=share,
                    )
                    evaluated = fed.cpu(
                        other, check_cmp * other_mult, "check eval", PHASE_O,
                        [read],
                    )
                    certify_deps.append(
                        fed.transfer(
                            other, GLOBAL_SITE, reply_bytes, "check-reply",
                            [evaluated],
                        )
                    )

        certify_cmp = total_survivors * max(1, self.params.total_predicates())
        work.comparisons += int(certify_cmp)
        fed.cpu(
            GLOBAL_SITE, certify_cmp * self._mult(GLOBAL_SITE), "certify",
            PHASE_I, certify_deps,
        )
        outcome = fed.run()
        return AnalyticOutcome(
            strategy=strategy,
            total_time=outcome.total_time,
            response_time=outcome.response_time,
            work=work,
        )
