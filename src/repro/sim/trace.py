"""Execution traces: inspecting a strategy's simulated schedule.

The task graphs the strategies build are normally discarded after the
timings are extracted; with tracing enabled the scheduled nodes (start /
finish / resource / phase) are kept and can be rendered as a text
timeline — a poor man's Gantt chart:

    0.000s |##########                              | DB1:disk  BL_C1 scan
    0.150s |          ####                          | DB1:cpu   BL_C1 evaluate
    ...

Used by :meth:`repro.core.engine.GlobalQueryEngine.explain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.taskgraph import Node


@dataclass(frozen=True)
class TraceEntry:
    """One scheduled node, flattened for reporting."""

    label: str
    resource: str
    phase: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


def entries_from_nodes(nodes: Sequence[Node]) -> List[TraceEntry]:
    """Flatten scheduled nodes into trace entries, by start time."""
    entries = [
        TraceEntry(
            label=node.label,
            resource=node.resource_name,
            phase=node.phase,
            start=node.start or 0.0,
            finish=node.finish or 0.0,
        )
        for node in nodes
        if node.finish is not None
    ]
    entries.sort(key=lambda e: (e.start, e.finish, e.resource))
    return entries


def format_timeline(
    entries: Sequence[TraceEntry],
    width: int = 48,
    min_duration: float = 0.0,
) -> str:
    """Render entries as a text timeline (one row per node).

    Args:
        width: characters of the bar area.
        min_duration: hide nodes shorter than this (zero-cost barriers
            clutter the picture).
    """
    if not entries:
        return "(empty schedule)"
    horizon = max(e.finish for e in entries) or 1.0
    lines = []
    label_width = min(36, max(len(e.label) for e in entries))
    resource_width = max(len(e.resource) for e in entries)
    for entry in entries:
        if entry.duration < min_duration and entry.duration > 0:
            continue
        begin = int(entry.start / horizon * width)
        length = max(1, int(round(entry.duration / horizon * width)))
        length = min(length, width - begin)
        bar = " " * begin + "#" * length
        lines.append(
            f"{entry.start * 1000:9.3f}ms |{bar.ljust(width)}| "
            f"{entry.resource.ljust(resource_width)}  "
            f"{entry.label[:label_width]}"
        )
    return "\n".join(lines)


def phase_summary(entries: Sequence[TraceEntry]) -> str:
    """Total busy time per phase, as a short table."""
    totals = {}
    for entry in entries:
        totals[entry.phase] = totals.get(entry.phase, 0.0) + entry.duration
    lines = ["phase     busy time"]
    for phase in sorted(totals):
        lines.append(f"{phase:<9} {totals[phase] * 1000:9.3f} ms")
    return "\n".join(lines)
