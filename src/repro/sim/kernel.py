"""A small discrete-event simulation kernel (generator-based processes).

The performance study runs the query strategies against a simulated
federation: each site has a CPU and a disk, the network is a shared
channel, and concurrent work queues on those resources.  This module
provides the simulation substrate:

* :class:`Simulator` — the event loop (a time-ordered heap of callbacks);
* :class:`Event` — a one-shot occurrence processes can wait on;
* :class:`Resource` — a FIFO server pool (capacity 1 models a CPU, a
  disk arm, or a half-duplex network channel);
* :class:`Process` — a generator wrapped into the event loop.  A process
  body ``yield``s *directives*:

  - ``Timeout(dt)`` — advance this process by ``dt`` simulated seconds;
  - ``Acquire(resource)`` — wait for and hold one server of a resource
    (release with ``Release(resource)``);
  - an :class:`Event` — wait until it is triggered;
  - ``AllOf([events...])`` — wait for several events.

Determinism: simultaneous events fire in scheduling order (a monotone
sequence number breaks ties), so repeated runs of the same strategy over
the same data produce identical timings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Tuple

from collections import deque

from repro.errors import SimulationError


class Event:
    """A one-shot event; processes wait on it, someone triggers it."""

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Callable[["Event"], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event (idempotent triggering is an error by design)."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.call_soon(lambda w=waiter: w(self))

    def on_trigger(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim.call_soon(lambda: callback(self))
        else:
            self._waiters.append(callback)


@dataclass(frozen=True)
class Timeout:
    """Directive: advance the yielding process by *seconds*."""

    seconds: float


@dataclass(frozen=True)
class Acquire:
    """Directive: wait for one server of *resource* and hold it."""

    resource: "Resource"


@dataclass(frozen=True)
class Release:
    """Directive: release one previously acquired server of *resource*."""

    resource: "Resource"


@dataclass(frozen=True)
class AllOf:
    """Directive: wait until every event in *events* has triggered."""

    events: tuple


class Resource:
    """A FIFO pool of identical servers (capacity 1 = serial device).

    A resource can carry *downtime windows* (fault injection: the device
    is crashed during ``[start, end)``).  A down resource grants nothing;
    acquires issued during a window queue and are served, FIFO, when the
    window closes.  Work already holding a server is not preempted —
    crashes take effect at operation granularity.
    """

    def __init__(self, sim: "Simulator", name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Tuple[Event, float]] = deque()
        #: Crash windows (start, end), sorted; grants stall while inside.
        self._downtimes: List[Tuple[float, float]] = []
        # Utilization accounting.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        # Queueing accounting (observability): total time grants spent
        # waiting in the FIFO, and how many had to wait at all.
        self.wait_time = 0.0
        self.grants = 0
        self.grants_queued = 0
        #: Admission-control refusals (see :meth:`admit`).
        self.rejected = 0

    def add_downtime(self, start: float, end: float) -> None:
        """Declare the resource down (no grants) during ``[start, end)``."""
        if end <= start:
            raise SimulationError(
                f"resource {self.name!r}: empty downtime [{start}, {end})"
            )
        if start < 0:
            raise SimulationError(
                f"resource {self.name!r}: downtime starts in the past"
            )
        self._downtimes.append((start, end))
        self._downtimes.sort()

    def down_until(self, t: float) -> Optional[float]:
        """End of the downtime window covering *t* (None when up)."""
        for start, end in self._downtimes:
            if start <= t < end:
                return end
            if start > t:
                break
        return None

    def acquire(self) -> Event:
        """Return an event that triggers when a server is granted."""
        grant = Event(self.sim, name=f"grant:{self.name}")
        down = self.down_until(self.sim.now)
        if down is not None:
            self._queue.append((grant, self.sim.now))
            self.sim.schedule(down - self.sim.now, self._drain)
        elif self._in_use < self.capacity:
            self._grant(grant)
        else:
            self._queue.append((grant, self.sim.now))
        return grant

    def _grant(self, grant: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        self.grants += 1
        grant.trigger(self)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"resource {self.name!r} released when idle")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        self._drain()

    def _drain(self) -> None:
        """Serve queued grants, FIFO, while capacity is free and the
        resource is up; re-arm at the window end when down."""
        while self._queue and self._in_use < self.capacity:
            down = self.down_until(self.sim.now)
            if down is not None:
                self.sim.schedule(down - self.sim.now, self._drain)
                return
            grant, enqueued = self._queue.popleft()
            self.wait_time += self.sim.now - enqueued
            self.grants_queued += 1
            self._grant(grant)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def admit(self, depth: int) -> bool:
        """Admission control: is there room for one more acquire?

        Admits while a server is free or fewer than *depth* grants are
        waiting; otherwise counts a rejection and returns False.
        Callers use this to shed load before calling :meth:`acquire`
        instead of letting queues grow without bound; the decision is a
        pure function of current occupancy, so admission stays
        deterministic under the (time, seq) event ordering.
        """
        if self._in_use < self.capacity or self.queued < depth:
            return True
        self.rejected += 1
        return False


class Process:
    """A generator coroutine driven by the simulator."""

    def __init__(
        self,
        sim: "Simulator",
        body: Generator,
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.body = body
        self.name = name
        self.done = Event(sim, name=f"done:{name}")
        self._held: Dict[Resource, int] = {}
        sim.call_soon(lambda: self._step(None))

    def _step(self, sent: Any) -> None:
        try:
            directive = self.body.send(sent)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle(directive)

    def _finish(self, value: Any) -> None:
        if any(count > 0 for count in self._held.values()):
            held = [r.name for r, c in self._held.items() if c > 0]
            raise SimulationError(
                f"process {self.name!r} finished holding resources: {held}"
            )
        self.done.trigger(value)

    def _handle(self, directive: Any) -> None:
        if isinstance(directive, Timeout):
            if directive.seconds < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative timeout"
                )
            self.sim.schedule(directive.seconds, lambda: self._step(None))
        elif isinstance(directive, Acquire):
            resource = directive.resource
            grant = resource.acquire()
            self._held[resource] = self._held.get(resource, 0) + 1
            grant.on_trigger(lambda _evt: self._step(resource))
        elif isinstance(directive, Release):
            resource = directive.resource
            if self._held.get(resource, 0) <= 0:
                raise SimulationError(
                    f"process {self.name!r} released {resource.name!r} "
                    "it does not hold"
                )
            self._held[resource] -= 1
            resource.release()
            self.sim.call_soon(lambda: self._step(None))
        elif isinstance(directive, Event):
            directive.on_trigger(lambda evt: self._step(evt.value))
        elif isinstance(directive, AllOf):
            self._wait_all(list(directive.events))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unknown directive "
                f"{directive!r}"
            )

    def _wait_all(self, events: List[Event]) -> None:
        remaining = [evt for evt in events if not evt.triggered]
        if not remaining:
            self.sim.call_soon(lambda: self._step(None))
            return
        counter = {"left": len(remaining)}

        def on_one(_evt: Event) -> None:
            counter["left"] -= 1
            if counter["left"] == 0:
                self._step(None)

        for evt in remaining:
            evt.on_trigger(on_one)


class Simulator:
    """The discrete-event loop: a heap of (time, seq, callback)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def call_soon(self, callback: Callable[[], None]) -> None:
        self.schedule(0.0, callback)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def resource(self, name: str, capacity: int = 1) -> Resource:
        return Resource(self, name=name, capacity=capacity)

    def process(self, body: Generator, name: str = "process") -> Process:
        return Process(self, body, name=name)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event heap; return the final simulated time."""
        while self._heap:
            time, _seq, callback = heapq.heappop(self._heap)
            if until is not None and time > until:
                self.now = until
                return self.now
            if time < self.now:
                raise SimulationError("time went backwards")  # pragma: no cover
            self.now = time
            callback()
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    "simulation exceeded max_events; likely a livelock"
                )
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed
